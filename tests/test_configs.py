"""Tests that the packaged utility configurations match the paper."""

import pytest

from repro.exceptions import UtilityModelError
from repro.utility.configs import (
    HARDNESS_UTILITIES,
    LASTFM_PROBABILITIES,
    LASTFM_UTILITIES,
    blocking_config,
    hardness_config,
    lastfm_config,
    multi_item_config,
    single_item_config,
    theorem1_config,
    two_item_config,
)
from repro.utility.noise import GaussianNoise, TruncatedGaussianNoise, ZeroNoise
from repro.utility.valuation import is_monotone, is_submodular


class TestTwoItemConfigs:
    """Table 3: prices P(i)=3, P(j)=4 and per-configuration values."""

    @pytest.mark.parametrize("name,ui,uj,uij", [
        ("C1", 1.0, 0.9, -2.1),
        ("C2", 1.0, 0.1, -2.9),
        ("C3", 1.0, 0.9, 1.7),
        ("C4", 1.0, 0.9, 1.7),
    ])
    def test_deterministic_utilities(self, name, ui, uj, uij):
        model = two_item_config(name)
        assert model.deterministic_utility("i") == pytest.approx(ui)
        assert model.deterministic_utility("j") == pytest.approx(uj)
        assert model.deterministic_utility(["i", "j"]) == pytest.approx(uij)

    @pytest.mark.parametrize("name", ["C1", "C2", "C3", "C4"])
    def test_prices(self, name):
        model = two_item_config(name)
        assert model.price("i") == 3.0
        assert model.price("j") == 4.0
        assert model.price(["i", "j"]) == 7.0

    @pytest.mark.parametrize("name", ["C1", "C2", "C3", "C4"])
    def test_valuation_is_monotone_submodular(self, name):
        model = two_item_config(name)
        assert is_monotone(model.valuation)
        assert is_submodular(model.valuation)

    @pytest.mark.parametrize("name", ["C1", "C2"])
    def test_pure_competition(self, name):
        assert two_item_config(name).is_pure_competition()

    @pytest.mark.parametrize("name", ["C3", "C4"])
    def test_soft_competition(self, name):
        assert not two_item_config(name).is_pure_competition()

    def test_default_noise_is_standard_gaussian(self):
        model = two_item_config("C1")
        assert isinstance(model.noise("i"), GaussianNoise)
        assert model.noise("i").sigma == 1.0

    def test_zero_noise_option(self):
        model = two_item_config("C1", noise_sigma=0.0)
        assert isinstance(model.noise("i"), ZeroNoise)

    def test_c5_c6_have_bounded_noise_and_superior_item(self):
        for name in ("C5", "C6"):
            model = two_item_config(name)
            assert isinstance(model.noise("i"), TruncatedGaussianNoise)
            assert model.superior_item() == "i"

    def test_c2_utility_ratio_is_ten(self):
        model = two_item_config("C2")
        ratio = (model.deterministic_utility("i")
                 / model.deterministic_utility("j"))
        assert ratio == pytest.approx(10.0)

    def test_unknown_configuration(self):
        with pytest.raises(UtilityModelError):
            two_item_config("C9")


class TestBlockingConfig:
    """Table 4: U(i)=2, U(j)=0.11, U(k)=0.1, U({i,k})=2.1, rest negative."""

    def test_expected_utilities(self):
        model = blocking_config()
        assert model.deterministic_utility("i") == pytest.approx(2.0)
        assert model.deterministic_utility("j") == pytest.approx(0.11)
        assert model.deterministic_utility("k") == pytest.approx(0.1)
        assert model.deterministic_utility(["i", "k"]) == pytest.approx(2.1)

    def test_other_bundles_negative(self):
        model = blocking_config()
        assert model.deterministic_utility(["i", "j"]) < 0
        assert model.deterministic_utility(["j", "k"]) < 0
        assert model.deterministic_utility(["i", "j", "k"]) < 0

    def test_valuation_monotone_submodular(self):
        model = blocking_config()
        assert is_monotone(model.valuation)
        assert is_submodular(model.valuation)

    def test_superior_item(self):
        assert blocking_config().superior_item() == "i"


class TestMultiItemConfig:
    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_every_item_has_unit_utility(self, m):
        model = multi_item_config(m)
        assert model.num_items == m
        for item in model.items:
            assert model.deterministic_utility(item) == pytest.approx(1.0)

    def test_pure_competition(self):
        assert multi_item_config(4).is_pure_competition()

    def test_custom_utility(self):
        model = multi_item_config(2, expected_utility=3.0)
        assert model.deterministic_utility("item1") == pytest.approx(3.0)

    def test_monotone_submodular(self):
        model = multi_item_config(4)
        assert is_monotone(model.valuation)
        assert is_submodular(model.valuation)

    def test_invalid_count(self):
        with pytest.raises(UtilityModelError):
            multi_item_config(0)


class TestLastfmConfig:
    def test_published_utilities(self):
        model = lastfm_config()
        for item, utility in LASTFM_UTILITIES.items():
            assert model.deterministic_utility(item) == pytest.approx(utility)

    def test_pure_competition(self):
        assert lastfm_config().is_pure_competition()

    def test_monotone_submodular(self):
        model = lastfm_config()
        assert is_monotone(model.valuation)
        assert is_submodular(model.valuation)

    def test_custom_utilities(self):
        model = lastfm_config({"pop": 3.0, "jazz": 2.0})
        assert set(model.items) == {"pop", "jazz"}
        assert model.deterministic_utility("pop") == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(UtilityModelError):
            lastfm_config({})

    def test_probabilities_constant_matches_utilities(self):
        # U(i) = ln(10000 * p_i) must link the two published tables
        import math
        for item, prob in LASTFM_PROBABILITIES.items():
            assert math.log(10_000 * prob) == pytest.approx(
                LASTFM_UTILITIES[item], abs=0.05)


class TestHardnessConfig:
    """Table 1: the exact value/price/utility table of the reduction."""

    def test_single_item_utilities(self):
        model = hardness_config()
        for item, utility in HARDNESS_UTILITIES.items():
            assert model.deterministic_utility(item) == pytest.approx(utility)

    def test_key_bundle_utilities(self):
        model = hardness_config()
        assert model.deterministic_utility(["i2", "i3"]) == pytest.approx(10.0)
        assert model.deterministic_utility(["i1", "i4"]) == pytest.approx(105.1)
        assert model.deterministic_utility(["i1", "i2"]) == pytest.approx(4.9)
        assert model.deterministic_utility(["i2", "i3", "i4"]) == pytest.approx(9.5)
        assert model.deterministic_utility(["i1", "i2", "i3", "i4"]) == \
            pytest.approx(3.6)

    def test_reduction_gap_constraints(self):
        """The constraints the reduction needs for c = 0.4 hold."""
        model = hardness_config()
        c = 0.4
        u_i23 = model.deterministic_utility(["i2", "i3"])
        u_i14 = model.deterministic_utility(["i1", "i4"])
        u_i4 = model.deterministic_utility("i4")
        u_i1 = model.deterministic_utility("i1")
        # i1 beats i2 and i3 individually, but {i2, i3} beats i1
        assert u_i1 > model.deterministic_utility("i2")
        assert u_i1 > model.deterministic_utility("i3")
        assert u_i23 > u_i1
        # c * U(i4) > U({i2, i3}) and U({i2, i3}) < c/4 * U({i1, i4})
        assert c * u_i4 > u_i23
        assert u_i23 < (c / 4.0) * u_i14 + 1e-9

    def test_valuation_monotone_submodular(self):
        model = hardness_config()
        assert is_monotone(model.valuation)
        assert is_submodular(model.valuation)


class TestTheorem1Config:
    def test_utilities_match_counterexample(self):
        model = theorem1_config()
        assert model.deterministic_utility("i1") == pytest.approx(4.0)
        assert model.deterministic_utility("i2") == pytest.approx(3.0)
        assert model.deterministic_utility("i3") == pytest.approx(3.5)
        assert model.deterministic_utility(["i1", "i3"]) == pytest.approx(4.5)
        # bundles that must lose to their best member
        assert model.deterministic_utility(["i1", "i2"]) < 3.0
        assert model.deterministic_utility(["i2", "i3"]) < 3.5


class TestSingleItemConfig:
    def test_welfare_equals_spread_setup(self):
        model = single_item_config()
        assert model.num_items == 1
        assert model.deterministic_utility("item") == pytest.approx(1.0)
        assert model.expected_truncated_utility("item") == pytest.approx(1.0)

    def test_custom_name_and_utility(self):
        model = single_item_config(utility=2.5, name="gadget")
        assert model.items == ("gadget",)
        assert model.deterministic_utility("gadget") == pytest.approx(2.5)
