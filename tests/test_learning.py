"""Tests for the discrete-choice utility learning (§6.4.1 / Table 5)."""

import math

import pytest

from repro.exceptions import UtilityModelError
from repro.utility.configs import LASTFM_PROBABILITIES, LASTFM_UTILITIES
from repro.utility.learning import (
    learn_choice_model,
    learn_utilities,
    synthetic_lastfm_logs,
    utilities_from_probabilities,
    utility_model_from_logs,
)


class TestChoiceModel:
    def test_singleton_probabilities(self):
        logs = [{"a"}, {"a"}, {"b"}, {"c"}]
        model = learn_choice_model(logs)
        assert model.item_probabilities["a"] == pytest.approx(0.5)
        assert model.item_probabilities["b"] == pytest.approx(0.25)
        assert model.total_selections == 4

    def test_restricted_items(self):
        logs = [{"a"}, {"a"}, {"b"}, {"other"}]
        model = learn_choice_model(logs, items=["a", "b"])
        # probabilities stay relative to the full log
        assert model.item_probabilities["a"] == pytest.approx(0.5)
        assert model.item_probabilities["b"] == pytest.approx(0.25)
        assert "other" not in model.item_probabilities

    def test_pair_correction_negative_for_rare_pairs(self):
        # items co-selected far less often than independence predicts
        logs = [{"a"}] * 45 + [{"b"}] * 45 + [{"a", "b"}] * 10
        model = learn_choice_model(logs)
        prob = model.bundle_probability({"a", "b"})
        assert prob == pytest.approx(0.1, abs=1e-9)
        assert 2 in model.size_discounts

    def test_bundle_probability_of_unseen_pair(self):
        logs = [{"a"}] * 5 + [{"b"}] * 5
        model = learn_choice_model(logs)
        assert model.bundle_probability({"a", "b"}) >= 0.0
        assert model.bundle_probability(set()) == 0.0

    def test_empty_logs_rejected(self):
        with pytest.raises(UtilityModelError):
            learn_choice_model([])
        with pytest.raises(UtilityModelError):
            learn_choice_model([set()])

    def test_no_matching_items_rejected(self):
        with pytest.raises(UtilityModelError):
            learn_choice_model([{"a"}], items=["zzz"])


class TestUtilityConversion:
    def test_formula(self):
        utilities = utilities_from_probabilities({"a": 0.1, "b": 0.01})
        assert utilities["a"] == pytest.approx(math.log(1000))
        assert utilities["b"] == pytest.approx(math.log(100))

    def test_zero_probability_dropped(self):
        utilities = utilities_from_probabilities({"a": 0.1, "b": 0.0})
        assert "b" not in utilities

    def test_all_zero_rejected(self):
        with pytest.raises(UtilityModelError):
            utilities_from_probabilities({"a": 0.0})

    def test_custom_scale(self):
        utilities = utilities_from_probabilities({"a": 0.5}, scale=2.0)
        assert utilities["a"] == pytest.approx(0.0)


class TestSyntheticLogs:
    def test_learned_utilities_match_table5(self):
        logs = synthetic_lastfm_logs(60_000, rng=5)
        learned = learn_utilities(logs, items=list(LASTFM_UTILITIES))
        for item, published in LASTFM_UTILITIES.items():
            assert learned[item] == pytest.approx(published, abs=0.15)

    def test_log_size(self):
        logs = synthetic_lastfm_logs(1_000, rng=1)
        assert len(logs) == 1_000

    def test_pairs_present(self):
        logs = synthetic_lastfm_logs(5_000, pair_fraction=0.01, rng=2)
        assert any(len(entry) == 2 for entry in logs)

    def test_custom_probabilities(self):
        logs = synthetic_lastfm_logs(
            5_000, probabilities={"x": 0.3, "y": 0.1}, rng=3)
        learned = learn_choice_model(logs, items=["x", "y"])
        assert learned.item_probabilities["x"] == pytest.approx(0.3, abs=0.03)

    def test_invalid_probability_mass(self):
        with pytest.raises(UtilityModelError):
            synthetic_lastfm_logs(100, probabilities={"x": 0.9, "y": 0.3})


class TestUtilityModelFromLogs:
    def test_end_to_end_model(self):
        logs = synthetic_lastfm_logs(30_000, rng=7)
        model = utility_model_from_logs(logs, items=list(LASTFM_UTILITIES))
        assert set(model.items) == set(LASTFM_UTILITIES)
        for item, published in LASTFM_UTILITIES.items():
            assert model.deterministic_utility(item) == pytest.approx(
                published, abs=0.2)

    def test_learned_model_is_behaviourally_competitive(self):
        logs = synthetic_lastfm_logs(30_000, rng=7)
        model = utility_model_from_logs(logs, items=list(LASTFM_UTILITIES))
        assert model.is_pure_competition()

    def test_bundles_never_beat_best_member(self):
        logs = synthetic_lastfm_logs(30_000, rng=9)
        model = utility_model_from_logs(logs, items=list(LASTFM_UTILITIES))
        catalog = model.catalog
        for mask in catalog.iter_masks(include_empty=False):
            if catalog.bundle_size(mask) < 2:
                continue
            best_member = max(model.deterministic_utility(item)
                              for item in catalog.items_of(mask))
            assert model.deterministic_utility(mask) <= best_member + 1e-9
