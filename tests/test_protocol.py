"""Tests for the versioned serve protocol (:mod:`repro.api.protocol`).

Covers v1 request → response → ``RunSpec.from_dict`` round-trips, the
error envelopes (unknown version, malformed request, invalid spec,
incompatible spec, unsupported algorithm), fingerprint-keyed response
caching, and the acceptance property that a ``repro run`` and an
equivalent ``repro serve`` request produce bit-identical allocations.
"""

import io
import json

import pytest

from repro.api import (
    EngineConfig,
    PROTOCOL_VERSION,
    RunSpec,
    WorkloadSpec,
    make_request,
)
from repro.cli import main
from repro.index import AllocationService, build_index
from repro.utility.configs import configuration_model


@pytest.fixture(scope="module")
def instance():
    from repro.graphs.datasets import load_network

    graph = load_network("nethept", scale=0.01, rng=4)
    model = configuration_model("C1")
    return graph, model


@pytest.fixture(scope="module")
def spec():
    return RunSpec(
        algorithm="SeqGRD-NM",
        workload=WorkloadSpec(network="nethept", scale=0.01,
                              configuration="C1",
                              budgets={"i": 2, "j": 2}),
        engine=EngineConfig(seed=4, samples=10, max_rr_sets=2000))


@pytest.fixture(scope="module")
def service(instance, spec):
    graph, model = instance
    index = build_index(
        graph, model, sampler="marginal",
        budgets=dict(spec.workload.budgets),
        options=spec.engine.imm_options(), seed=spec.engine.seed,
        meta_extra={"network": "nethept", "scale": 0.01,
                    "configuration": "C1", "graph_seed": 4,
                    "fixed_imm_item": None, "fixed_imm_budget": 50})
    return AllocationService(index, graph=graph, model=model)


class TestVersionedRequests:
    def test_round_trip_spec_equality(self, service, spec):
        response = service.handle_request(make_request(spec, request_id=7))
        assert response["ok"] is True
        assert response["v"] == PROTOCOL_VERSION
        assert response["id"] == 7
        assert RunSpec.from_dict(response["spec"]) == spec
        assert response["fingerprint"] == spec.fingerprint()
        assert set(response["allocation"]) == {"i", "j"}
        assert response["welfare"] >= 0
        assert "latency_ms" in response["timings"]

    def test_fingerprint_keyed_cache(self, service, spec):
        first = service.handle_request(make_request(spec))
        second = service.handle_request(make_request(spec))
        assert second["cached"] is True
        assert second["allocation"] == first["allocation"]

    def test_unknown_version_envelope(self, service):
        response = service.handle_request({"v": 99, "spec": {}})
        assert response["ok"] is False
        assert response["error"]["code"] == "unsupported-version"
        assert "99" in response["error"]["message"]

    def test_missing_spec_envelope(self, service):
        response = service.handle_request({"v": 1, "id": "x"})
        assert response["ok"] is False
        assert response["error"]["code"] == "malformed-request"
        assert response["id"] == "x"

    def test_malformed_spec_envelope(self, service):
        response = service.handle_request(
            {"v": 1, "spec": {"algorithm": "SeqGRD-NM",
                              "workload": {"bogus": 1}}})
        assert response["ok"] is False
        assert response["error"]["code"] == "invalid-spec"
        assert "bogus" in response["error"]["message"]

    def test_unknown_algorithm_envelope(self, service):
        response = service.handle_request(
            {"v": 1, "spec": {"algorithm": "Mystery"}})
        assert response["ok"] is False
        assert response["error"]["code"] == "unsupported-algorithm"

    def test_unsupported_algorithm_envelope(self, service, spec):
        request = make_request(RunSpec("TCIM", spec.workload, spec.engine))
        response = service.handle_request(request)
        assert response["ok"] is False
        assert response["error"]["code"] == "unsupported-algorithm"

    def test_incompatible_seed_envelope(self, service, spec):
        import dataclasses

        other = dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, seed=99))
        response = service.handle_request(make_request(other))
        assert response["ok"] is False
        assert response["error"]["code"] == "incompatible-spec"
        assert "seed" in response["error"]["message"]

    def test_incompatible_fixed_allocation_envelope(self, service, spec):
        import dataclasses

        other = dataclasses.replace(
            spec, workload=dataclasses.replace(
                spec.workload, budgets={"i": 2},
                fixed_allocation={"j": (5,)}))
        response = service.handle_request(make_request(other))
        assert response["ok"] is False
        assert response["error"]["code"] == "incompatible-spec"
        assert "fixed_allocation" in response["error"]["message"]

    def test_incompatible_epsilon_envelope(self, service, spec):
        import dataclasses

        other = dataclasses.replace(
            spec, engine=dataclasses.replace(spec.engine, epsilon=0.1))
        response = service.handle_request(make_request(other))
        assert response["ok"] is False
        assert response["error"]["code"] == "incompatible-spec"

    def test_legacy_dialect_still_served(self, service):
        response = service.handle_request(
            {"op": "query", "budgets": {"i": 2, "j": 2}})
        assert response["ok"] is True
        assert "allocation" in response


class TestServeMatchesRun:
    """Acceptance: `repro run` and an equivalent serve request produce
    bit-identical allocations."""

    RUN = ["run", "--network", "nethept", "--scale", "0.01", "--budget", "2",
           "--samples", "10", "--max-rr-sets", "2000", "--seed", "4"]
    BUILD = ["index", "build", "--network", "nethept", "--scale", "0.01",
             "--budget", "2", "--max-rr-sets", "2000", "--seed", "4"]

    def test_serve_request_reproduces_run(self, tmp_path, capsys,
                                          monkeypatch):
        assert main(self.RUN + ["--json"]) == 0
        run_payload = json.loads(capsys.readouterr().out)

        out = tmp_path / "idx"
        assert main(self.BUILD + ["--out", str(out)]) == 0
        capsys.readouterr()

        spec = RunSpec(
            algorithm="SeqGRD-NM",
            workload=WorkloadSpec(network="nethept", scale=0.01,
                                  configuration="C1", budget=2),
            engine=EngineConfig(seed=4, samples=10, max_rr_sets=2000))
        requests = json.dumps(make_request(spec, request_id=1)) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(["serve", "--index", str(out)]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert len(lines) == 1
        response = lines[0]
        assert response["ok"] is True, response
        assert response["allocation"] == run_payload["allocation"]
        assert response["fingerprint"] == run_payload["spec_fingerprint"]

    def test_mixed_dialects_in_one_session(self, tmp_path, capsys,
                                           monkeypatch):
        out = tmp_path / "idx"
        assert main(self.BUILD + ["--out", str(out)]) == 0
        capsys.readouterr()
        spec = RunSpec(
            algorithm="SeqGRD-NM",
            workload=WorkloadSpec(network="nethept", scale=0.01,
                                  configuration="C1", budget=2),
            engine=EngineConfig(seed=4, samples=10, max_rr_sets=2000))
        requests = "\n".join([
            '{"op": "ping"}',
            json.dumps(make_request(spec)),
            '{"v": 2, "spec": {}}',
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(["serve", "--index", str(out)]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert lines[0]["pong"] is True
        assert lines[1]["ok"] is True
        assert lines[2]["error"]["code"] == "unsupported-version"
