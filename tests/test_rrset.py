"""Tests for RR-set sampling: standard, marginal and weighted."""

import numpy as np
import pytest

from repro.allocation import Allocation
from repro.diffusion.estimators import estimate_spread
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.rrsets.rrset import (
    WeightedRRSampler,
    marginal_rr_set,
    random_rr_set,
)
from repro.utility.configs import two_item_config
from repro.utils.rng import ensure_rng


class TestRandomRRSet:
    def test_contains_root(self, line4, rng):
        rr = random_rr_set(line4, rng, root=2)
        assert 2 in rr.tolist()

    def test_deterministic_line_reaches_all_ancestors(self, line4, rng):
        rr = random_rr_set(line4, rng, root=3)
        assert sorted(rr.tolist()) == [0, 1, 2, 3]
        rr0 = random_rr_set(line4, rng, root=0)
        assert rr0.tolist() == [0]

    def test_zero_probability_graph(self, rng):
        g = generators.line_graph(5, prob=0.0)
        rr = random_rr_set(g, rng, root=4)
        assert rr.tolist() == [4]

    def test_only_nodes_that_reach_root(self, rng):
        g = generators.erdos_renyi(60, 3.0, rng=1)
        root = 7
        rr = set(random_rr_set(g, rng, root=root).tolist())
        # every RR-set member must have a directed path to the root in the
        # full graph (a necessary condition, since the RR set uses a subset
        # of the edges)
        reachable_to_root = _nodes_reaching(g, root)
        assert rr <= reachable_to_root

    def test_borgs_identity(self):
        """n · Pr[S ∩ R ≠ ∅] ≈ σ(S) for a random root RR set."""
        g = weighting.weighted_cascade(
            generators.erdos_renyi(100, 4.0, rng=3))
        seeds = [0, 1, 2]
        rng = ensure_rng(5)
        hits = sum(1 for _ in range(4000)
                   if set(seeds) & set(random_rr_set(g, rng).tolist()))
        rr_estimate = g.num_nodes * hits / 4000
        mc_estimate = estimate_spread(g, seeds, n_samples=2000, rng=6)
        assert rr_estimate == pytest.approx(mc_estimate, rel=0.2)


class TestMarginalRRSet:
    def test_discarded_when_hitting_blocked(self, line4, rng):
        # every RR set rooted downstream of node 0 contains node 0, so
        # blocking node 0 empties them
        rr = marginal_rr_set(line4, {0}, rng, root=3)
        assert rr.tolist() == []

    def test_blocked_root_discarded(self, line4, rng):
        assert marginal_rr_set(line4, {2}, rng, root=2).tolist() == []

    def test_survives_when_not_hitting_blocked(self, line4, rng):
        rr = marginal_rr_set(line4, {3}, rng, root=1)
        assert sorted(rr.tolist()) == [0, 1]

    def test_empty_blocked_equals_standard(self, line4, rng):
        rr = marginal_rr_set(line4, set(), rng, root=3)
        assert sorted(rr.tolist()) == [0, 1, 2, 3]


class TestWeightedRRSampler:
    @pytest.fixture
    def setup(self):
        # path 0 -> 1 -> 2 -> 3 with the C6 utilities (superior item i)
        graph = generators.line_graph(4)
        model = two_item_config("C6", bounded_noise=True)
        fixed = Allocation({"j": [1]})
        sampler = WeightedRRSampler(graph, model, "i", fixed, rng=1)
        return graph, model, fixed, sampler

    def test_max_weight_is_superior_truncated_utility(self, setup):
        _, model, _, sampler = setup
        assert sampler.max_weight == pytest.approx(
            model.expected_truncated_utility("i"), rel=0.05)

    def test_weight_when_no_fixed_seed_reaches_root(self, setup):
        _, _, _, sampler = setup
        rr = sampler.sample(rng=ensure_rng(2), root=0)
        # node 0 has no ancestors; j's seed (node 1) cannot reach it
        assert rr.weight == pytest.approx(sampler.superior_utility)
        assert rr.nodes.tolist() == [0]

    def test_weight_discounted_when_fixed_seed_in_set(self, setup):
        _, model, _, sampler = setup
        rr = sampler.sample(rng=ensure_rng(2), root=3)
        # the reverse BFS from node 3 hits node 1 (j's seed): the weight is
        # U+(i) - U+(j)
        expected = (model.expected_truncated_utility("i")
                    - model.expected_truncated_utility("j"))
        assert rr.weight == pytest.approx(expected, rel=0.1)
        assert 1 in rr.nodes.tolist()

    def test_bfs_stops_at_fixed_seed_level(self, setup):
        _, _, _, sampler = setup
        rr = sampler.sample(rng=ensure_rng(2), root=3)
        # the BFS stops after the level that contains node 1, so node 0
        # (one level further) is not explored
        assert 0 not in rr.nodes.tolist()

    def test_weight_never_negative(self):
        graph = generators.erdos_renyi(40, 3.0, rng=2)
        model = two_item_config("C6", bounded_noise=True)
        fixed = Allocation({"j": [0, 1, 2, 3]})
        sampler = WeightedRRSampler(graph, model, "i", fixed, rng=3)
        rng = ensure_rng(4)
        for _ in range(50):
            assert sampler.sample(rng).weight >= 0.0


def _nodes_reaching(graph: DirectedGraph, target: int) -> set:
    """All nodes with a directed path to ``target`` (ignoring probabilities)."""
    from collections import deque
    seen = {target}
    queue = deque([target])
    while queue:
        node = queue.popleft()
        sources, _ = graph.in_neighbors(node)
        for s in sources:
            s = int(s)
            if s not in seen:
                seen.add(s)
                queue.append(s)
    return seen
