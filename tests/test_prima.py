"""Tests for PRIMA+ (prefix-preserving seed selection on marginals)."""

import pytest

from repro.diffusion.estimators import estimate_marginal_spread, estimate_spread
from repro.exceptions import AlgorithmError
from repro.core.prima import prima_plus
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions, imm

FAST = IMMOptions(max_rr_sets=8_000)


class TestPrimaPlus:
    def test_returns_requested_number_of_seeds(self, small_er_graph):
        result = prima_plus(small_er_graph, [], [3, 3], 6, options=FAST, rng=1)
        assert len(result.seeds) == 6
        assert len(set(result.seeds)) == 6

    def test_excludes_fixed_seeds(self, small_er_graph):
        fixed = [0, 1, 2, 3, 4]
        result = prima_plus(small_er_graph, fixed, [5], 5, options=FAST, rng=2)
        assert not set(result.seeds) & set(fixed)

    def test_zero_seeds(self, small_er_graph):
        result = prima_plus(small_er_graph, [], [0], 0, options=FAST, rng=1)
        assert result.seeds == []
        assert result.num_rr_sets == 0

    def test_empty_graph_rejected(self):
        empty = DirectedGraph.from_edges(0, [])
        with pytest.raises(AlgorithmError):
            prima_plus(empty, [], [1], 1, options=FAST)

    def test_no_fixed_seeds_matches_imm_prefix(self, small_er_graph):
        """With S_P = ∅ the PRIMA+ order behaves like plain IMM."""
        prima = prima_plus(small_er_graph, [], [4], 4, options=FAST, rng=7)
        plain = imm(small_er_graph, 4, options=FAST, rng=7)
        prima_spread = estimate_spread(small_er_graph, prima.seeds,
                                       n_samples=500, rng=8)
        imm_spread = estimate_spread(small_er_graph, plain.seeds,
                                     n_samples=500, rng=8)
        assert prima_spread >= 0.8 * imm_spread

    def test_prefix_spreads_non_decreasing(self, medium_graph):
        result = prima_plus(medium_graph, [], [2, 3, 5], 10, options=FAST,
                            rng=3)
        spreads = result.prefix_marginal_spreads
        assert all(a <= b + 1e-9 for a, b in zip(spreads, spreads[1:]))
        assert result.prefix_spread(0) == 0.0
        assert result.prefix_spread(2) <= result.prefix_spread(10) + 1e-9

    def test_prefix_quality_for_smaller_budget(self, medium_graph):
        """The length-k prefix is a good seed set for budget k (Definition 1)."""
        result = prima_plus(medium_graph, [], [2, 6], 6, options=FAST, rng=5)
        prefix2 = result.prefix(2)
        dedicated = imm(medium_graph, 2, options=FAST, rng=5).seeds
        prefix_spread = estimate_spread(medium_graph, prefix2, n_samples=500,
                                        rng=6)
        dedicated_spread = estimate_spread(medium_graph, dedicated,
                                           n_samples=500, rng=6)
        assert prefix_spread >= 0.7 * dedicated_spread

    def test_marginality_on_disjoint_components(self):
        """Marginal seed selection ignores the component already covered."""
        # component A: star around 0 (6 nodes); component B: star around 10
        edges = [(0, v, 1.0) for v in range(1, 6)]
        edges += [(10, v, 1.0) for v in range(11, 16)]
        graph = DirectedGraph.from_edges(16, edges)
        result = prima_plus(graph, [0], [1], 1, options=FAST, rng=4)
        assert result.seeds == [10]

    def test_lower_bounds_recorded_per_budget(self, small_er_graph):
        result = prima_plus(small_er_graph, [], [2, 4], 4, options=FAST, rng=9)
        assert set(result.lower_bounds) == {2, 4}
        assert all(lb >= 1.0 for lb in result.lower_bounds.values())

    def test_num_seeds_capped_by_available_nodes(self):
        graph = generators.line_graph(4)
        result = prima_plus(graph, [0, 1], [5], 5, options=FAST, rng=1)
        assert len(result.seeds) <= 2
