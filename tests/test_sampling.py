"""Unit tests for BFS / random subgraph sampling (Figure 6(d) substrate)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.sampling import bfs_sample, random_node_sample


class TestBfsSample:
    def test_target_size(self):
        g = generators.erdos_renyi(200, 4.0, rng=1)
        sub = bfs_sample(g, 0.5, rng=2)
        assert sub.num_nodes == 100

    def test_full_fraction_returns_same_graph(self):
        g = generators.erdos_renyi(50, 3.0, rng=1)
        assert bfs_sample(g, 1.0, rng=2) is g

    def test_connected_prefix_from_start(self):
        g = generators.line_graph(10)
        sub = bfs_sample(g, 0.5, rng=3, start=0)
        # BFS from node 0 on a path visits a prefix of the path
        assert sub.num_nodes == 5
        assert sub.num_edges == 4

    def test_handles_disconnected_graphs(self):
        # two disjoint paths; BFS must restart to reach the target size
        edges = [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]
        from repro.graphs.graph import DirectedGraph
        g = DirectedGraph.from_edges(6, edges)
        sub = bfs_sample(g, 0.99, rng=4)
        assert sub.num_nodes == 6

    def test_invalid_fraction(self):
        g = generators.line_graph(5)
        with pytest.raises(GraphError):
            bfs_sample(g, 0.0)
        with pytest.raises(GraphError):
            bfs_sample(g, 1.5)

    def test_deterministic_with_seed(self):
        g = generators.erdos_renyi(120, 4.0, rng=7)
        s1 = bfs_sample(g, 0.4, rng=9)
        s2 = bfs_sample(g, 0.4, rng=9)
        assert set(s1.edges()) == set(s2.edges())


class TestRandomNodeSample:
    def test_target_size(self):
        g = generators.erdos_renyi(200, 4.0, rng=1)
        sub = random_node_sample(g, 0.25, rng=2)
        assert sub.num_nodes == 50

    def test_full_fraction_returns_same_graph(self):
        g = generators.erdos_renyi(40, 3.0, rng=1)
        assert random_node_sample(g, 1.0, rng=2) is g

    def test_invalid_fraction(self):
        g = generators.line_graph(5)
        with pytest.raises(GraphError):
            random_node_sample(g, -0.1)
