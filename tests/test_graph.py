"""Unit tests for the CSR-backed directed graph."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import DirectedGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = DirectedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.25)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = DirectedGraph.from_edges(0, [])
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.average_degree() == 0.0

    def test_nodes_array(self):
        g = DirectedGraph.from_edges(4, [(0, 1, 1.0)])
        assert list(g.nodes) == [0, 1, 2, 3]

    def test_from_adjacency(self):
        g = DirectedGraph.from_adjacency([[(1, 0.3)], [(0, 0.7)], []])
        assert g.num_nodes == 3
        assert g.edge_probability(0, 1) == pytest.approx(0.3)
        assert g.edge_probability(1, 0) == pytest.approx(0.7)

    def test_isolated_nodes_allowed(self):
        g = DirectedGraph.from_edges(10, [(0, 1, 1.0)])
        assert g.num_nodes == 10
        assert g.out_degree(5) == 0

    def test_rejects_negative_node_count(self):
        with pytest.raises(GraphError):
            DirectedGraph(-1, [], [], [])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self loop"):
            DirectedGraph.from_edges(2, [(1, 1, 0.5)])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(GraphError):
            DirectedGraph.from_edges(2, [(0, 2, 0.5)])
        with pytest.raises(GraphError):
            DirectedGraph.from_edges(2, [(-1, 0, 0.5)])

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphError):
            DirectedGraph.from_edges(2, [(0, 1, 1.5)])
        with pytest.raises(GraphError):
            DirectedGraph.from_edges(2, [(0, 1, -0.1)])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(GraphError, match="equal length"):
            DirectedGraph(2, [0], [1, 0], [0.5, 0.5])

    def test_duplicate_edges_keep_max_probability(self):
        g = DirectedGraph.from_edges(2, [(0, 1, 0.2), (0, 1, 0.8), (0, 1, 0.5)])
        assert g.num_edges == 1
        assert g.edge_probability(0, 1) == pytest.approx(0.8)

    def test_name(self):
        g = DirectedGraph.from_edges(1, [], name="mygraph")
        assert g.name == "mygraph"
        assert "mygraph" in repr(g)


class TestAccessors:
    @pytest.fixture
    def diamond(self):
        # 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        return DirectedGraph.from_edges(
            4, [(0, 1, 0.1), (0, 2, 0.2), (1, 3, 0.3), (2, 3, 0.4)])

    def test_out_neighbors(self, diamond):
        nbrs, probs = diamond.out_neighbors(0)
        assert sorted(nbrs.tolist()) == [1, 2]
        assert sorted(probs.tolist()) == [0.1, 0.2]

    def test_in_neighbors(self, diamond):
        nbrs, probs = diamond.in_neighbors(3)
        assert sorted(nbrs.tolist()) == [1, 2]
        assert sorted(probs.tolist()) == [0.3, 0.4]

    def test_degrees(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(0) == 0
        assert diamond.in_degree(3) == 2
        assert diamond.out_degrees().tolist() == [2, 1, 1, 0]
        assert diamond.in_degrees().tolist() == [0, 1, 1, 2]

    def test_has_edge(self, diamond):
        assert diamond.has_edge(0, 1)
        assert not diamond.has_edge(1, 0)
        assert not diamond.has_edge(0, 3)

    def test_edge_probability_missing_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.edge_probability(3, 0)

    def test_edges_iteration(self, diamond):
        edges = set(diamond.edges())
        assert (0, 1, 0.1) in edges
        assert len(edges) == 4

    def test_edge_arrays_are_copies(self, diamond):
        sources, targets, probs = diamond.edge_arrays()
        probs[:] = 0.0
        assert diamond.edge_probability(0, 1) == pytest.approx(0.1)

    def test_average_degree(self, diamond):
        assert diamond.average_degree() == pytest.approx(1.0)

    def test_len(self, diamond):
        assert len(diamond) == 4

    def test_node_out_of_range(self, diamond):
        with pytest.raises(GraphError):
            diamond.out_neighbors(4)
        with pytest.raises(GraphError):
            diamond.in_degree(-1)


class TestDerivedGraphs:
    def test_with_probabilities(self):
        g = DirectedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)])
        sources, targets, _ = g.edge_arrays()
        g2 = g.with_probabilities(np.full(2, 0.9))
        assert g2.edge_probability(0, 1) == pytest.approx(0.9)
        # the original is unchanged
        assert g.edge_probability(0, 1) == pytest.approx(0.5)

    def test_with_probabilities_wrong_length(self):
        g = DirectedGraph.from_edges(3, [(0, 1, 0.5)])
        with pytest.raises(GraphError):
            g.with_probabilities([0.1, 0.2])

    def test_reverse(self):
        g = DirectedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.25)])
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)
        assert r.edge_probability(1, 0) == pytest.approx(0.5)

    def test_reverse_twice_is_identity(self):
        g = DirectedGraph.from_edges(4, [(0, 1, 0.5), (2, 3, 0.7), (1, 3, 0.2)])
        rr = g.reverse().reverse()
        assert set(rr.edges()) == set(g.edges())

    def test_subgraph_relabels(self):
        g = DirectedGraph.from_edges(5, [(0, 1, 1.0), (1, 4, 0.5), (2, 3, 0.2)])
        sub = g.subgraph([1, 4])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.edge_probability(0, 1) == pytest.approx(0.5)

    def test_subgraph_drops_external_edges(self):
        g = DirectedGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        sub = g.subgraph([0, 1, 3])
        assert sub.num_edges == 1  # only 0 -> 1 survives

    def test_subgraph_invalid_node(self):
        g = DirectedGraph.from_edges(3, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            g.subgraph([0, 5])
