"""Smoke tests for the experiment harness (figures, tables, reporting)."""

import pytest

from repro.exceptions import AlgorithmError
from repro.experiments import (
    ALGORITHMS,
    SMOKE,
    benchmark_network,
    figure3,
    figure4,
    figure5,
    figure6_blocking,
    figure6_items,
    figure6_scalability,
    figure7,
    format_table,
    get_scale,
    run_algorithm,
    summarize_by,
    table2,
    table5,
    table6,
)
from repro.experiments.config import ExperimentScale
from repro.utility.configs import two_item_config


class TestScalePresets:
    def test_get_scale_by_name(self):
        assert get_scale("smoke").name == "smoke"
        assert get_scale(None).name == "default"
        assert get_scale(SMOKE) is SMOKE

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_scale("enormous")

    def test_with_seed(self):
        scaled = SMOKE.with_seed(99)
        assert scaled.seed == 99
        assert scaled.name == SMOKE.name

    def test_network_fraction_lookup(self):
        assert SMOKE.network_fraction("nethept") == pytest.approx(0.015)
        assert SMOKE.network_fraction("unknown") is None


class TestNetworks:
    def test_benchmark_network_cached(self):
        g1 = benchmark_network("nethept", SMOKE)
        g2 = benchmark_network("nethept", SMOKE)
        assert g1 is g2

    def test_table2_rows(self):
        rows = table2(SMOKE)
        assert len(rows) == 5
        assert {row["name"] for row in rows} == {
            "nethept", "douban-book", "douban-movie", "orkut", "twitter"}
        assert all(row["nodes"] > 0 for row in rows)


class TestRunAlgorithm:
    def test_dispatch_and_record(self):
        graph = benchmark_network("nethept", SMOKE)
        model = two_item_config("C1")
        record = run_algorithm("SeqGRD-NM", graph, model,
                               budgets={"i": 2, "j": 2}, scale=SMOKE,
                               configuration="C1", rng=1)
        assert record.algorithm == "SeqGRD-NM"
        assert record.welfare > 0
        assert record.runtime_seconds > 0
        row = record.as_row()
        assert row["configuration"] == "C1"
        assert "adopt[i]" in row

    def test_unknown_algorithm(self):
        graph = benchmark_network("nethept", SMOKE)
        model = two_item_config("C1")
        with pytest.raises(AlgorithmError):
            run_algorithm("Mystery", graph, model, budgets={"i": 1},
                          scale=SMOKE)

    def test_algorithm_roster(self):
        assert "SeqGRD" in ALGORITHMS and "TCIM" in ALGORITHMS


class TestFigureWorkloads:
    def test_figure3_rows(self):
        rows = figure3(SMOKE, networks=["nethept"], budgets=[2],
                       algorithms=["SeqGRD-NM", "MaxGRD"])
        assert len(rows) == 2
        assert {row["algorithm"] for row in rows} == {"SeqGRD-NM", "MaxGRD"}
        assert all(row["runtime_s"] >= 0 for row in rows)

    def test_figure4_rows(self):
        rows = figure4(SMOKE, network="nethept", configurations=["C1", "C4"],
                       algorithms=["SeqGRD-NM"], budgets=[2])
        assert len(rows) == 2
        assert {row["configuration"] for row in rows} == {"C1", "C4"}

    def test_figure5_rows(self):
        rows = figure5(SMOKE, networks=["nethept"], configurations=["C6"],
                       budgets=[2], inferior_budget=3)
        assert len(rows) == 2
        assert {row["algorithm"] for row in rows} == {"SupGRD", "SeqGRD-NM"}

    def test_figure6_items_rows(self):
        rows = figure6_items(SMOKE, network="nethept", item_counts=[1, 2],
                             algorithms=["SeqGRD-NM"], budget=2)
        assert [row["num_items"] for row in rows] == [1, 2]

    def test_figure6_blocking_rows(self):
        rows = figure6_blocking(SMOKE, network="nethept", superior_budget=4,
                                inferior_budgets=[2])
        assert len(rows) == 2
        assert {row["algorithm"] for row in rows} == {"SeqGRD", "SeqGRD-NM"}

    def test_figure6_scalability_rows(self):
        rows = figure6_scalability(SMOKE, network="nethept",
                                   fractions=[0.5, 1.0], num_items=2,
                                   budget=2)
        assert len(rows) == 4  # two fractions x two probability settings
        assert {row["configuration"] for row in rows} == {
            "weighted-cascade", "uniform-0.01"}

    def test_figure7_rows(self):
        rows = figure7(SMOKE, networks=["nethept"], algorithms=["SeqGRD-NM"],
                       budgets=[2])
        assert len(rows) == 1
        assert rows[0]["configuration"] == "lastfm"


class TestTableWorkloads:
    def test_table5(self):
        rows = table5(10_000, rng=1)
        assert len(rows) == 4
        for row in rows:
            assert abs(row["learned_utility"] - row["published_utility"]) < 0.5

    def test_table6(self):
        rows = table6(SMOKE, networks=["nethept"], budgets=[2],
                      algorithms=["Round-robin", "SeqGRD-NM"])
        assert len(rows) == 4  # 2 algorithms x 2 configurations
        seqgrd_rows = [r for r in rows if r["algorithm"] == "SeqGRD-NM"]
        assert all("welfare_change" in row for row in seqgrd_rows)


class TestReporting:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125, "c": "x"}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text and "c" in text
        assert "10" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_summarize_by(self):
        rows = [{"algo": "x", "t": 1.0}, {"algo": "x", "t": 3.0},
                {"algo": "y", "t": 10.0}]
        summary = summarize_by(rows, "algo", "t")
        assert summary == {"x": 2.0, "y": 10.0}
