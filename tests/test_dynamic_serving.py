"""apply-delta through the serving stack: service, registry, server, CLI.

A hosted repairable index must be repairable without a restart: the
legacy ``{"op": "apply-delta"}`` request repairs it, persists the new
artifact atomically, and rescans the registry (the same hot-swap path a
SIGHUP takes).  Staleness must be auditable end to end — in the
manifest, in ``IndexRegistry.stats()`` (with the stale-beyond-bound
flag) and in ``repro index info``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import WorkloadSpec
from repro.api.runner import load_graph
from repro.cli import main
from repro.dynamic import GraphDelta, build_repairable_index
from repro.dynamic.replay import random_edge_delta
from repro.serve import IndexRegistry, load_service
from repro.utility.configs import configuration_model

NETWORK, SCALE, CONFIGURATION, SEED = "nethept", 0.01, "C1", 2020
RR_SETS = 1500


def build_hosted_index(directory, name="dyn-idx"):
    workload = WorkloadSpec(network=NETWORK, scale=SCALE,
                            configuration=CONFIGURATION, budgets={"i": 5})
    graph = load_graph(workload, SEED)
    model = configuration_model(CONFIGURATION)
    index = build_repairable_index(
        graph, model, rr_sets=RR_SETS, base_seed=SEED,
        meta_extra={"network": NETWORK, "scale": SCALE,
                    "configuration": CONFIGURATION, "graph_seed": SEED})
    index.save(directory / name)
    return graph, model, index


@pytest.fixture
def hosted(tmp_path):
    graph, model, index = build_hosted_index(tmp_path)
    return tmp_path, graph, model, index


class TestServiceOp:
    def test_apply_delta_repairs_in_memory(self, hosted):
        directory, graph, _, _ = hosted
        loaded = load_service(directory / "dyn-idx")
        before = loaded.service.index.num_sets
        delta = random_edge_delta(graph, 0.01, seed=3)
        response = loaded.service.handle_request(
            {"op": "apply-delta", "delta": delta.to_dict()})
        assert response["ok"]
        assert response["repair"]["epoch"] == 1
        assert 0 < response["repair"]["repaired_fraction"] < 0.5
        assert loaded.service.index.num_sets == before
        assert loaded.service.index.meta["dynamic"]["epoch"] == 1
        # the swapped index serves queries immediately
        query = loaded.service.handle_request(
            {"op": "query", "algorithm": "select", "k": 5})
        assert query["ok"] and len(query["allocation"]) >= 1

    def test_malformed_delta_is_a_typed_error(self, hosted):
        directory, _, _, _ = hosted
        loaded = load_service(directory / "dyn-idx")
        response = loaded.service.handle_request(
            {"op": "apply-delta", "delta": {"bogus": 1}})
        assert response["ok"] is False
        assert "bogus" in response["error"]


class TestRegistryOp:
    def test_apply_delta_persists_and_rescans(self, hosted):
        directory, graph, _, index = hosted
        registry = IndexRegistry(directory=directory, capacity=2)
        delta = random_edge_delta(graph, 0.01, seed=7)
        summary = registry.apply_delta("dyn-idx", delta.to_dict())
        assert summary["repair"]["epoch"] == 1
        assert "scan" in summary
        # the on-disk artifact advanced (a cold registry sees epoch 1
        # and its fingerprint verification passes on the drifted graph)
        fresh = IndexRegistry(directory=directory, capacity=2)
        loaded = fresh.get("dyn-idx")
        assert loaded.service.index.meta["dynamic"]["epoch"] == 1
        assert loaded.service.index.fingerprint != index.fingerprint
        row = fresh.stats()["indexes"]["dyn-idx"]
        assert row["staleness"]["epoch"] == 1
        assert row["staleness"]["repaired_fraction"] > 0

    def test_zero_delta_skips_persistence(self, hosted):
        directory, _, _, _ = hosted
        npz = directory / "dyn-idx.npz"
        before = (npz.stat().st_mtime_ns, npz.read_bytes())
        registry = IndexRegistry(directory=directory, capacity=2)
        summary = registry.apply_delta("dyn-idx", {})
        assert summary["repair"]["zero_delta"]
        assert "scan" not in summary
        assert (npz.stat().st_mtime_ns, npz.read_bytes()) == before

    def test_stale_beyond_bound_is_flagged(self, hosted):
        directory, graph, _, _ = hosted
        registry = IndexRegistry(directory=directory, capacity=2,
                                 staleness_bound=0.01)
        delta = random_edge_delta(graph, 0.05, seed=5)
        registry.apply_delta("dyn-idx", delta.to_dict())
        stats = registry.stats()
        assert stats["staleness_bound"] == 0.01
        assert stats["stale"] == ["dyn-idx"]
        assert stats["indexes"]["dyn-idx"]["stale"] is True
        # a lenient registry over the same directory does not flag it
        lenient = IndexRegistry(directory=directory, capacity=2,
                                staleness_bound=0.9)
        assert lenient.stats()["stale"] == []


class TestServerOp:
    def test_dispatch_apply_delta_hot_swaps(self, hosted):
        from repro.serve import AllocationServer

        directory, graph, _, _ = hosted
        registry = IndexRegistry(directory=directory, capacity=2)
        server = AllocationServer(registry)
        delta = random_edge_delta(graph, 0.01, seed=9)
        response = server.dispatch_line(json.dumps(
            {"op": "apply-delta", "index": "dyn-idx",
             "delta": delta.to_dict()}))
        assert response["ok"], response
        assert response["repair"]["epoch"] == 1
        assert response["latency_ms"] >= 0
        # served queries continue against the repaired index
        query = server.dispatch_line(json.dumps(
            {"op": "query", "index": "dyn-idx", "algorithm": "select",
             "k": 5}))
        assert query["ok"]
        stats = server.dispatch_line(json.dumps({"op": "stats"}))
        assert stats["registry"]["indexes"]["dyn-idx"][
            "staleness"]["epoch"] == 1

    def test_unknown_index_is_an_error(self, hosted):
        from repro.serve import AllocationServer

        directory, _, _, _ = hosted
        server = AllocationServer(
            IndexRegistry(directory=directory, capacity=2))
        response = server.dispatch_line(json.dumps(
            {"op": "apply-delta", "index": "nope", "delta": {}}))
        assert response["ok"] is False


class TestCli:
    def test_build_repairable_requires_rr_sets(self, tmp_path, capsys):
        code = main(["index", "build", "--out", str(tmp_path / "x"),
                     "--sampler", "standard", "--repairable",
                     "--network", NETWORK, "--scale", str(SCALE),
                     "--configuration", CONFIGURATION,
                     "--budgets", "i=5"])
        assert code == 2
        assert "--rr-sets" in capsys.readouterr().err

    def test_repair_and_info_round_trip(self, tmp_path, capsys):
        assert main(["index", "build", "--out", str(tmp_path / "dyn"),
                     "--sampler", "standard", "--repairable",
                     "--rr-sets", str(RR_SETS),
                     "--network", NETWORK, "--scale", str(SCALE),
                     "--configuration", CONFIGURATION,
                     "--budgets", "i=5", "--json"]) == 0
        built = json.loads(capsys.readouterr().out)
        assert built["repairable"] is True

        workload = WorkloadSpec(network=NETWORK, scale=SCALE,
                                configuration=CONFIGURATION,
                                budgets={"i": 5})
        graph = load_graph(workload, SEED)
        delta_file = tmp_path / "delta.json"
        delta_file.write_text(json.dumps(
            random_edge_delta(graph, 0.01, seed=4).to_dict()))
        assert main(["index", "repair", "--index", str(tmp_path / "dyn"),
                     "--delta", str(delta_file), "--json"]) == 0
        repaired = json.loads(capsys.readouterr().out)
        assert repaired["epoch"] == 1
        assert repaired["fingerprint"] != built["fingerprint"]
        assert repaired["staleness"]["cumulative_repaired_fraction"] > 0

        assert main(["index", "info", str(tmp_path / "dyn"),
                     "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["repairable"] is True
        assert info["epoch"] == 1
        assert info["staleness"] == repaired["staleness"]

        # zero-op delta: fingerprint (and the artifact) unchanged
        zero = tmp_path / "zero.json"
        zero.write_text("{}")
        assert main(["index", "repair", "--index", str(tmp_path / "dyn"),
                     "--delta", str(zero), "--json"]) == 0
        untouched = json.loads(capsys.readouterr().out)
        assert untouched["zero_delta"] is True
        assert untouched["fingerprint"] == repaired["fingerprint"]

    def test_replay_verb(self, tmp_path, capsys):
        build_hosted_index(tmp_path, name="dyn")
        out = tmp_path / "replay.json"
        assert main(["replay", "--index", str(tmp_path / "dyn"),
                     "--queries", "10", "--deltas", "2",
                     "--fraction", "0.01", "--seed", "1",
                     "--out", str(out), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["queries"] == 10 and summary["deltas"] == 2
        assert summary["errors"] == 0
        assert len(summary["staleness_over_time"]) == 2
        assert summary["staleness_over_time"][-1][
            "cumulative_repaired_fraction"] > 0
        assert json.loads(out.read_text()) == summary
        # default replay runs against a scratch copy: source untouched
        manifest = json.loads(
            (tmp_path / "dyn.manifest.json").read_text())
        assert manifest["meta"]["dynamic"]["epoch"] == 0
