"""Unit tests for edge-list reading and writing."""

import gzip

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.datasets import load_edge_list_network
from repro.graphs.loaders import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = generators.erdos_renyi(40, 3.0, rng=1)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path, num_nodes=40)
        assert loaded.num_nodes == 40
        assert set(loaded.edges()) == set(g.edges())

    def test_write_without_probabilities(self, tmp_path):
        g = generators.line_graph(5, prob=0.3)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, include_probabilities=False)
        loaded = read_edge_list(path)
        # probabilities default to 1.0
        assert loaded.edge_probability(0, 1) == pytest.approx(1.0)


class TestReading:
    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1 0.5\n1 2\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.edge_probability(1, 2) == pytest.approx(1.0)

    def test_undirected_adds_reverse_edges(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.4\n")
        g = read_edge_list(path, directed=False)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.edge_probability(1, 0) == pytest.approx(0.4)

    def test_explicit_num_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_nodes=10)
        assert g.num_nodes == 10

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mynet.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mynet"

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5 extra stuff\n")
        with pytest.raises(GraphError, match="expected"):
            read_edge_list(path)


class TestSnapDialect:
    """Real published snapshots: gzip, comments, dupes, loops, 1-based."""

    def test_gzip_round_trip(self, tmp_path):
        g = generators.erdos_renyi(30, 3.0, rng=2)
        path = tmp_path / "graph.txt.gz"
        write_edge_list(g, path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert handle.readline().startswith("#")
        loaded = read_edge_list(path, num_nodes=30)
        assert set(loaded.edges()) == set(g.edges())
        assert loaded.name == "graph"

    def test_percent_comments_and_trailing_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("% KONECT-style header\n0 1 0.5\n"
                        "# mid-file comment\n1 2\n\n   \n\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_self_loops_skipped_by_default(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n1 1 0.9\n")
        g = read_edge_list(path)
        assert g.num_edges == 1
        assert g.has_edge(0, 1)
        with pytest.raises(GraphError, match="self loops"):
            read_edge_list(path, skip_self_loops=False)

    def test_duplicate_edges_collapse_to_max_probability(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.2\n0 1 0.7\n0 1 0.4\n")
        g = read_edge_list(path)
        assert g.num_edges == 1
        assert g.edge_probability(0, 1) == pytest.approx(0.7)

    def test_one_based_ids_shift_down(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n2 3\n")
        g = read_edge_list(path, one_based=True)
        assert g.num_nodes == 3
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_one_based_with_zero_id_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError, match="one_based"):
            read_edge_list(path, one_based=True)

    def test_mixed_column_counts_fall_back_to_line_parser(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n1 2\n2 3 0.25\n")
        g = read_edge_list(path)
        assert g.num_edges == 3
        assert g.edge_probability(1, 2) == pytest.approx(1.0)
        assert g.edge_probability(2, 3) == pytest.approx(0.25)

    def test_malformed_gzip_line_reports_lineno(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("# header\n0 1\nnot numbers\n")
        with pytest.raises(GraphError, match=r"expected"):
            read_edge_list(path)

    def test_non_numeric_tokens_report_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n2 x\n")
        with pytest.raises(GraphError, match=r"g\.txt:2"):
            read_edge_list(path)


class TestLoadEdgeListNetwork:
    def test_applies_weighted_cascade(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("0 2\n1 2\n2 0\n")
        g = load_edge_list_network(path)
        # p = 1/d_in: node 2 has two in-edges
        assert g.edge_probability(0, 2) == pytest.approx(0.5)
        assert g.edge_probability(1, 2) == pytest.approx(0.5)
        assert g.edge_probability(2, 0) == pytest.approx(1.0)

    def test_none_scheme_preserves_file_probabilities(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("0 1 0.125\n1 0\n")
        g = load_edge_list_network(path, weighting_scheme="none")
        assert g.edge_probability(0, 1) == pytest.approx(0.125)
        assert g.edge_probability(1, 0) == pytest.approx(1.0)

    def test_unknown_scheme_raises(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError, match="weighting"):
            load_edge_list_network(path, weighting_scheme="bogus")
