"""Unit tests for edge-list reading and writing."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import generators
from repro.graphs.loaders import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = generators.erdos_renyi(40, 3.0, rng=1)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path, num_nodes=40)
        assert loaded.num_nodes == 40
        assert set(loaded.edges()) == set(g.edges())

    def test_write_without_probabilities(self, tmp_path):
        g = generators.line_graph(5, prob=0.3)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, include_probabilities=False)
        loaded = read_edge_list(path)
        # probabilities default to 1.0
        assert loaded.edge_probability(0, 1) == pytest.approx(1.0)


class TestReading:
    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1 0.5\n1 2\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.edge_probability(1, 2) == pytest.approx(1.0)

    def test_undirected_adds_reverse_edges(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.4\n")
        g = read_edge_list(path, directed=False)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.edge_probability(1, 0) == pytest.approx(0.4)

    def test_explicit_num_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_nodes=10)
        assert g.num_nodes == 10

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mynet.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mynet"

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5 extra stuff\n")
        with pytest.raises(GraphError, match="expected"):
            read_edge_list(path)
