"""Unit and property tests for the UIC utility model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import UtilityModelError
from repro.utility.items import ItemCatalog
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise, TruncatedGaussianNoise, UniformNoise, ZeroNoise
from repro.utility.valuation import AdditiveValuation, TableValuation


@pytest.fixture
def simple_model():
    catalog = ItemCatalog(["a", "b"])
    valuation = TableValuation(catalog, {"a": 5.0, "b": 3.0, ("a", "b"): 6.0})
    return UtilityModel(valuation, {"a": 1.0, "b": 2.0}, ZeroNoise())


class TestConstruction:
    def test_missing_price_rejected(self):
        catalog = ItemCatalog(["a", "b"])
        valuation = TableValuation(catalog, {"a": 1.0, "b": 1.0})
        with pytest.raises(UtilityModelError, match="missing prices"):
            UtilityModel(valuation, {"a": 1.0})

    def test_negative_price_rejected(self):
        catalog = ItemCatalog(["a"])
        valuation = TableValuation(catalog, {"a": 1.0})
        with pytest.raises(UtilityModelError):
            UtilityModel(valuation, {"a": -1.0})

    def test_bad_noise_type_rejected(self):
        catalog = ItemCatalog(["a"])
        valuation = TableValuation(catalog, {"a": 1.0})
        with pytest.raises(UtilityModelError):
            UtilityModel(valuation, {"a": 0.0}, {"a": "not a distribution"})

    def test_shared_noise_distribution(self):
        catalog = ItemCatalog(["a", "b"])
        valuation = TableValuation(catalog, {"a": 1.0, "b": 1.0})
        noise = GaussianNoise(2.0)
        model = UtilityModel(valuation, {"a": 0.0, "b": 0.0}, noise)
        assert model.noise("a") is noise
        assert model.noise("b") is noise

    def test_per_item_noise(self):
        catalog = ItemCatalog(["a", "b"])
        valuation = TableValuation(catalog, {"a": 1.0, "b": 1.0})
        model = UtilityModel(valuation, {"a": 0.0, "b": 0.0},
                             {"a": GaussianNoise(1.0)})
        assert isinstance(model.noise("a"), GaussianNoise)
        assert isinstance(model.noise("b"), ZeroNoise)

    def test_items_accessor(self, simple_model):
        assert simple_model.items == ("a", "b")
        assert simple_model.num_items == 2


class TestUtilities:
    def test_price_additive(self, simple_model):
        assert simple_model.price("a") == 1.0
        assert simple_model.price(["a", "b"]) == 3.0
        assert simple_model.price([]) == 0.0

    def test_deterministic_utility(self, simple_model):
        assert simple_model.deterministic_utility("a") == 4.0
        assert simple_model.deterministic_utility("b") == 1.0
        assert simple_model.deterministic_utility(["a", "b"]) == 3.0
        assert simple_model.deterministic_utility([]) == 0.0

    def test_deterministic_utility_table(self, simple_model):
        table = simple_model.deterministic_utility_table()
        assert table[0] == 0.0
        assert table[0b01] == 4.0
        assert table[0b10] == 1.0
        assert table[0b11] == 3.0

    def test_bundle_as_mask(self, simple_model):
        assert simple_model.deterministic_utility(0b11) == 3.0

    def test_utility_with_noise_world(self, simple_model):
        noise = np.array([0.5, -0.25])
        assert simple_model.utility("a", noise) == pytest.approx(4.5)
        assert simple_model.utility(["a", "b"], noise) == pytest.approx(3.25)
        assert simple_model.utility([], noise) == 0.0

    def test_utility_table_with_noise(self, simple_model):
        noise = np.array([1.0, 2.0])
        table = simple_model.utility_table(noise)
        assert table[0b01] == pytest.approx(5.0)
        assert table[0b10] == pytest.approx(3.0)
        assert table[0b11] == pytest.approx(6.0)

    def test_utility_table_wrong_shape(self, simple_model):
        with pytest.raises(UtilityModelError):
            simple_model.utility_table(np.zeros(3))

    def test_value_accessor(self, simple_model):
        assert simple_model.value(["a", "b"]) == 6.0


class TestNoiseWorlds:
    def test_sample_shape(self, simple_model, rng):
        world = simple_model.sample_noise_world(rng)
        assert world.shape == (2,)
        assert np.all(world == 0.0)  # ZeroNoise

    def test_sample_respects_distribution(self, rng):
        catalog = ItemCatalog(["a", "b"])
        valuation = TableValuation(catalog, {"a": 1.0, "b": 1.0})
        model = UtilityModel(valuation, {"a": 0.0, "b": 0.0},
                             {"a": UniformNoise(0.5), "b": ZeroNoise()})
        worlds = np.array([model.sample_noise_world(rng) for _ in range(200)])
        assert np.all(np.abs(worlds[:, 0]) <= 0.5)
        assert np.all(worlds[:, 1] == 0.0)


class TestTruncatedUtilities:
    def test_no_noise_truncation(self, simple_model):
        assert simple_model.expected_truncated_utility("a") == 4.0
        negative_catalog = ItemCatalog(["x"])
        model = UtilityModel(TableValuation(negative_catalog, {"x": 1.0}),
                             {"x": 5.0}, ZeroNoise())
        assert model.expected_truncated_utility("x") == 0.0

    def test_single_item_uses_analytic_formula(self):
        catalog = ItemCatalog(["a"])
        model = UtilityModel(TableValuation(catalog, {"a": 1.0}),
                             {"a": 1.0}, GaussianNoise(1.0))
        # deterministic utility 0, Gaussian noise: E[U+] = 1/sqrt(2 pi)
        assert model.expected_truncated_utility("a") == \
            pytest.approx(1.0 / np.sqrt(2 * np.pi))

    def test_multi_item_bundle_monte_carlo(self):
        catalog = ItemCatalog(["a", "b"])
        valuation = TableValuation(catalog, {"a": 1.0, "b": 1.0,
                                             ("a", "b"): 2.0})
        model = UtilityModel(valuation, {"a": 1.0, "b": 1.0},
                             GaussianNoise(1.0))
        value = model.expected_truncated_utility(["a", "b"], n_samples=50_000,
                                                 rng=1)
        # bundle det utility 0, noise variance 2: E[U+] = sqrt(2)/sqrt(2 pi)
        assert value == pytest.approx(np.sqrt(2) / np.sqrt(2 * np.pi), abs=0.02)

    def test_u_min_is_min_over_singletons(self, c1_model):
        utilities = c1_model.expected_truncated_utilities()
        assert c1_model.u_min() == pytest.approx(min(utilities.values()))

    def test_u_max_no_noise(self, simple_model):
        assert simple_model.u_max() == 4.0

    def test_u_max_at_least_u_min(self, c1_model):
        assert c1_model.u_max(500, rng=1) >= c1_model.u_min() - 1e-9

    def test_expected_truncated_utilities_keys(self, c1_model):
        assert set(c1_model.expected_truncated_utilities()) == {"i", "j"}


class TestSuperiorItem:
    def test_no_superior_with_unbounded_noise(self, c1_model):
        assert c1_model.superior_item() is None

    def test_superior_with_bounded_noise(self):
        catalog = ItemCatalog(["strong", "weak"])
        valuation = TableValuation(catalog, {"strong": 10.0, "weak": 2.0,
                                             ("strong", "weak"): 10.5})
        model = UtilityModel(valuation, {"strong": 1.0, "weak": 1.0},
                             TruncatedGaussianNoise(sigma=1.0, bound=2.0))
        assert model.superior_item() == "strong"

    def test_no_superior_when_gap_smaller_than_noise(self):
        catalog = ItemCatalog(["a", "b"])
        valuation = TableValuation(catalog, {"a": 3.0, "b": 2.9})
        model = UtilityModel(valuation, {"a": 0.0, "b": 0.0},
                             UniformNoise(1.0))
        assert model.superior_item() is None

    def test_single_item_is_trivially_superior(self, single_model):
        assert single_model.superior_item() == "item"

    def test_zero_noise_superior(self, blocking_model):
        assert blocking_model.superior_item() == "i"


class TestPureCompetition:
    def test_c1_is_pure_competition(self, c1_model):
        assert c1_model.is_pure_competition()

    def test_c3_is_not_pure_competition(self, c3_model):
        assert not c3_model.is_pure_competition()

    def test_noise_bounds_mode_requires_bounded_noise(self, c1_model):
        # Gaussian noise is unbounded -> cannot certify under noise bounds
        assert not c1_model.is_pure_competition(use_noise_bounds=True)

    def test_noise_bounds_mode_with_bounded_noise(self):
        catalog = ItemCatalog(["a", "b"])
        valuation = TableValuation(catalog, {"a": 10.0, "b": 8.0,
                                             ("a", "b"): 10.5})
        model = UtilityModel(valuation, {"a": 4.0, "b": 4.0},
                             UniformNoise(0.5))
        # bundle utility 2.5 vs singleton 6/4 -> bundle never preferred
        assert model.is_pure_competition(use_noise_bounds=True)

    def test_bundle_better_than_member_is_not_pure(self):
        catalog = ItemCatalog(["a", "b"])
        valuation = TableValuation(catalog, {"a": 5.0, "b": 4.0,
                                             ("a", "b"): 9.0})
        model = UtilityModel(valuation, {"a": 1.0, "b": 1.0}, ZeroNoise())
        assert not model.is_pure_competition()


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=50.0),
                       min_size=2, max_size=4),
       prices=st.lists(st.floats(min_value=0.0, max_value=50.0),
                       min_size=4, max_size=4),
       noise=st.lists(st.floats(min_value=-5.0, max_value=5.0),
                      min_size=4, max_size=4))
def test_utility_table_equals_value_minus_price_plus_noise(values, prices, noise):
    names = [f"x{k}" for k in range(len(values))]
    catalog = ItemCatalog(names)
    valuation = AdditiveValuation(catalog,
                                  {n: v for n, v in zip(names, values)})
    model = UtilityModel(valuation,
                         {n: p for n, p in zip(names, prices[:len(names)])})
    world = np.array(noise[:len(names)])
    table = model.utility_table(world)
    for mask in catalog.iter_masks():
        indices = catalog.indices_of(mask)
        expected = (sum(values[i] for i in indices)
                    - sum(prices[i] for i in indices)
                    + sum(world[i] for i in indices))
        assert table[mask] == pytest.approx(expected, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(shift=st.floats(min_value=-10.0, max_value=10.0),
       sigma=st.floats(min_value=0.0, max_value=5.0))
def test_truncated_utility_is_nonnegative_and_above_mean(shift, sigma):
    catalog = ItemCatalog(["x"])
    valuation = TableValuation(catalog, {"x": max(shift, 0.0)})
    price = max(-shift, 0.0)
    model = UtilityModel(valuation, {"x": price}, GaussianNoise(sigma))
    truncated = model.expected_truncated_utility("x")
    assert truncated >= 0.0
    # E[max(0, U)] >= E[U]
    assert truncated >= model.deterministic_utility("x") - 1e-9
