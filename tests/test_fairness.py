"""Tests for the fairness-aware extension (paper future work, §7)."""

import pytest

from repro.allocation import Allocation
from repro.core.fairness import exposure_report, fair_seqgrd
from repro.exceptions import AlgorithmError
from repro.graphs import generators, weighting
from repro.rrsets.imm import IMMOptions
from repro.utility.configs import lastfm_config, two_item_config

FAST = IMMOptions(max_rr_sets=5_000)


class TestExposureReport:
    def test_report_on_deterministic_line(self, line4, c1_model_no_noise):
        allocation = Allocation({"i": [0], "j": [2]})
        report = exposure_report(line4, c1_model_no_noise, allocation,
                                 n_samples=20, rng=1)
        assert report.expected_adopters["i"] == pytest.approx(2.0)
        assert report.expected_adopters["j"] == pytest.approx(2.0)
        assert report.total_adoptions == pytest.approx(4.0)
        assert report.adoption_share["i"] == pytest.approx(0.5)

    def test_worst_item(self, line4, c1_model_no_noise):
        allocation = Allocation({"i": [0], "j": [3]})
        report = exposure_report(line4, c1_model_no_noise, allocation,
                                 n_samples=20, rng=1)
        item, value = report.worst_item()
        assert item == "j"
        assert value == pytest.approx(1.0)

    def test_satisfies(self, line4, c1_model_no_noise):
        allocation = Allocation({"i": [0], "j": [2]})
        report = exposure_report(line4, c1_model_no_noise, allocation,
                                 n_samples=20, rng=1)
        assert report.satisfies({"i": 1.5, "j": 1.5})
        assert not report.satisfies({"j": 3.0})


class TestFairSeqGRD:
    @pytest.fixture(scope="class")
    def graph(self):
        base = generators.preferential_attachment(250, 3, rng=19,
                                                  directed=False)
        return weighting.weighted_cascade(base)

    def test_no_floors_behaves_like_seqgrd(self, graph, c1_model):
        result = fair_seqgrd(graph, c1_model, {"i": 4, "j": 4},
                             min_adoptions={}, n_evaluation_samples=60,
                             options=FAST, rng=1)
        assert result.details["swaps"] == []
        assert result.allocation.seed_count("i") == 4
        assert result.allocation.seed_count("j") == 4

    def test_floor_forces_reassignment_towards_weak_item(self, graph):
        """With the Last.fm utilities the weakest genre loses seats under
        plain SeqGRD-NM; a floor on its expected adoption forces seed
        reassignments that raise its exposure."""
        model = lastfm_config()
        budgets = {item: 4 for item in model.items}
        unconstrained = fair_seqgrd(graph, model, budgets, min_adoptions={},
                                    n_evaluation_samples=100, options=FAST,
                                    rng=3)
        weak = "progressive metal"
        baseline_exposure = unconstrained.details["exposure"][weak]
        floor = baseline_exposure * 1.3
        constrained = fair_seqgrd(graph, model, budgets,
                                  min_adoptions={weak: floor},
                                  n_evaluation_samples=100, options=FAST,
                                  rng=3)
        assert constrained.details["exposure"][weak] > baseline_exposure
        # fairness never comes for free but the budget vector is respected
        total = sum(constrained.allocation.seed_count(item)
                    for item in model.items)
        assert total == sum(budgets.values())

    def test_swaps_are_recorded_with_welfare(self, graph):
        model = lastfm_config()
        budgets = {item: 3 for item in model.items}
        result = fair_seqgrd(graph, model, budgets,
                             min_adoptions={"progressive metal": 1000.0},
                             max_swaps=2, n_evaluation_samples=60,
                             options=FAST, rng=5)
        assert len(result.details["swaps"]) <= 2
        for swap in result.details["swaps"]:
            assert swap["to_item"] == "progressive metal"
            assert "welfare_after" in swap

    def test_unreachable_floor_reported(self, graph, c1_model):
        result = fair_seqgrd(graph, c1_model, {"i": 2, "j": 2},
                             min_adoptions={"j": 10_000.0},
                             n_evaluation_samples=40, options=FAST, rng=7)
        assert "j" in result.details["unmet_floors"]

    def test_unknown_item_floor_rejected(self, graph, c1_model):
        with pytest.raises(AlgorithmError):
            fair_seqgrd(graph, c1_model, {"i": 2, "j": 2},
                        min_adoptions={"zzz": 1.0}, options=FAST)

    def test_negative_floor_rejected(self, graph, c1_model):
        with pytest.raises(AlgorithmError):
            fair_seqgrd(graph, c1_model, {"i": 2, "j": 2},
                        min_adoptions={"i": -1.0}, options=FAST)

    def test_welfare_cost_of_fairness_reported(self, graph):
        model = two_item_config("C2", noise_sigma=0.0)
        budgets = {"i": 4, "j": 2}
        result = fair_seqgrd(graph, model, budgets,
                             min_adoptions={"j": 5.0},
                             n_evaluation_samples=80, options=FAST, rng=9)
        details = result.details
        assert details["welfare_cost_of_fairness"] == pytest.approx(
            details["initial_welfare"] - details["final_welfare"], abs=1e-6)
