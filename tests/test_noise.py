"""Unit tests for the zero-mean noise distributions."""

import math

import numpy as np
import pytest

from repro.exceptions import UtilityModelError
from repro.utility.noise import (
    GaussianNoise,
    TruncatedGaussianNoise,
    UniformNoise,
    ZeroNoise,
)


class TestZeroNoise:
    def test_samples_are_zero(self, rng):
        dist = ZeroNoise()
        assert dist.sample(rng) == 0.0
        assert np.all(dist.sample(rng, size=5) == 0.0)

    def test_support(self):
        assert ZeroNoise().support() == (0.0, 0.0)
        assert ZeroNoise().is_bounded

    def test_expected_positive_part(self):
        dist = ZeroNoise()
        assert dist.expected_positive_part(2.5) == 2.5
        assert dist.expected_positive_part(-1.0) == 0.0


class TestGaussianNoise:
    def test_zero_mean(self, rng):
        dist = GaussianNoise(sigma=2.0)
        samples = dist.sample(rng, size=20_000)
        assert abs(samples.mean()) < 0.1
        assert abs(samples.std() - 2.0) < 0.1

    def test_unbounded_support(self):
        assert not GaussianNoise(1.0).is_bounded

    def test_sigma_zero_degenerates(self, rng):
        dist = GaussianNoise(0.0)
        assert dist.sample(rng) == 0.0
        assert dist.support() == (0.0, 0.0)
        assert dist.expected_positive_part(-3.0) == 0.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(UtilityModelError):
            GaussianNoise(-1.0)

    def test_expected_positive_part_analytic_vs_monte_carlo(self, rng):
        dist = GaussianNoise(sigma=1.5)
        for shift in (-2.0, -0.5, 0.0, 0.7, 3.0):
            analytic = dist.expected_positive_part(shift)
            samples = dist.sample(rng, size=100_000)
            empirical = np.maximum(0.0, shift + samples).mean()
            assert analytic == pytest.approx(empirical, abs=0.03)

    def test_expected_positive_part_known_value(self):
        # E[max(0, N(0,1))] = 1/sqrt(2*pi)
        assert GaussianNoise(1.0).expected_positive_part(0.0) == \
            pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_expected_positive_part_large_shift(self):
        assert GaussianNoise(1.0).expected_positive_part(50.0) == \
            pytest.approx(50.0, rel=1e-6)


class TestUniformNoise:
    def test_zero_mean_and_bounds(self, rng):
        dist = UniformNoise(half_width=3.0)
        samples = dist.sample(rng, size=20_000)
        assert abs(samples.mean()) < 0.1
        assert samples.min() >= -3.0
        assert samples.max() <= 3.0
        assert dist.support() == (-3.0, 3.0)
        assert dist.is_bounded

    def test_expected_positive_part_analytic_vs_monte_carlo(self, rng):
        dist = UniformNoise(half_width=2.0)
        for shift in (-3.0, -1.0, 0.0, 1.0, 3.0):
            analytic = dist.expected_positive_part(shift)
            samples = dist.sample(rng, size=100_000)
            empirical = np.maximum(0.0, shift + samples).mean()
            assert analytic == pytest.approx(empirical, abs=0.02)

    def test_expected_positive_part_entirely_positive(self):
        assert UniformNoise(1.0).expected_positive_part(5.0) == 5.0

    def test_expected_positive_part_entirely_negative(self):
        assert UniformNoise(1.0).expected_positive_part(-5.0) == 0.0

    def test_zero_width(self, rng):
        dist = UniformNoise(0.0)
        assert dist.sample(rng) == 0.0
        assert dist.expected_positive_part(1.5) == 1.5

    def test_negative_width_rejected(self):
        with pytest.raises(UtilityModelError):
            UniformNoise(-1.0)


class TestTruncatedGaussianNoise:
    def test_samples_within_bound(self, rng):
        dist = TruncatedGaussianNoise(sigma=2.0, bound=1.5)
        samples = dist.sample(rng, size=5_000)
        assert np.all(np.abs(samples) <= 1.5)

    def test_zero_mean_by_symmetry(self, rng):
        dist = TruncatedGaussianNoise(sigma=1.0, bound=2.0)
        samples = dist.sample(rng, size=30_000)
        assert abs(samples.mean()) < 0.05

    def test_bounded_support(self):
        dist = TruncatedGaussianNoise(sigma=1.0, bound=2.5)
        assert dist.support() == (-2.5, 2.5)
        assert dist.is_bounded

    def test_single_sample_is_float(self, rng):
        assert isinstance(TruncatedGaussianNoise(1.0, 1.0).sample(rng), float)

    def test_sigma_zero(self, rng):
        dist = TruncatedGaussianNoise(sigma=0.0, bound=1.0)
        assert dist.sample(rng) == 0.0
        assert dist.support() == (0.0, 0.0)

    def test_invalid_parameters(self):
        with pytest.raises(UtilityModelError):
            TruncatedGaussianNoise(sigma=-1.0)
        with pytest.raises(UtilityModelError):
            TruncatedGaussianNoise(sigma=1.0, bound=0.0)

    def test_monte_carlo_expected_positive_part(self, rng):
        dist = TruncatedGaussianNoise(sigma=1.0, bound=2.0)
        value = dist.expected_positive_part(0.5, n_samples=50_000, rng=3)
        assert 0.5 < value < 1.2
