"""Unit tests for the item catalog and bundle bitmasks."""

import pytest

from repro.exceptions import UtilityModelError
from repro.utility.items import ItemCatalog


class TestConstruction:
    def test_basic(self):
        catalog = ItemCatalog(["a", "b", "c"])
        assert catalog.num_items == 3
        assert catalog.num_bundles == 8
        assert catalog.full_mask == 0b111
        assert catalog.names == ("a", "b", "c")

    def test_rejects_empty(self):
        with pytest.raises(UtilityModelError):
            ItemCatalog([])

    def test_rejects_duplicates(self):
        with pytest.raises(UtilityModelError):
            ItemCatalog(["a", "a"])

    def test_rejects_too_many_items(self):
        with pytest.raises(UtilityModelError):
            ItemCatalog([f"i{k}" for k in range(ItemCatalog.MAX_ITEMS + 1)])

    def test_equality_and_hash(self):
        assert ItemCatalog(["a", "b"]) == ItemCatalog(["a", "b"])
        assert ItemCatalog(["a", "b"]) != ItemCatalog(["b", "a"])
        assert hash(ItemCatalog(["x"])) == hash(ItemCatalog(["x"]))


class TestIndexing:
    @pytest.fixture
    def catalog(self):
        return ItemCatalog(["i", "j", "k"])

    def test_index_by_name_and_int(self, catalog):
        assert catalog.index("j") == 1
        assert catalog.index(2) == 2

    def test_index_unknown_name(self, catalog):
        with pytest.raises(UtilityModelError, match="unknown item"):
            catalog.index("zzz")

    def test_index_out_of_range(self, catalog):
        with pytest.raises(UtilityModelError):
            catalog.index(3)

    def test_name_roundtrip(self, catalog):
        for i, name in enumerate(catalog.names):
            assert catalog.name(i) == name

    def test_contains(self, catalog):
        assert "i" in catalog
        assert "zzz" not in catalog
        assert 0 not in catalog  # only string membership

    def test_iteration_and_len(self, catalog):
        assert list(catalog) == ["i", "j", "k"]
        assert len(catalog) == 3


class TestMasks:
    @pytest.fixture
    def catalog(self):
        return ItemCatalog(["i", "j", "k"])

    def test_singleton_mask(self, catalog):
        assert catalog.singleton_mask("i") == 0b001
        assert catalog.singleton_mask("k") == 0b100

    def test_mask_of(self, catalog):
        assert catalog.mask_of(["i", "k"]) == 0b101
        assert catalog.mask_of([]) == 0
        assert catalog.mask_of(["j", "j"]) == 0b010

    def test_items_of(self, catalog):
        assert catalog.items_of(0b101) == ("i", "k")
        assert catalog.items_of(0) == ()

    def test_indices_of(self, catalog):
        assert catalog.indices_of(0b110) == (1, 2)

    def test_bundle_size(self, catalog):
        assert catalog.bundle_size(0) == 0
        assert catalog.bundle_size(0b111) == 3

    def test_mask_out_of_range(self, catalog):
        with pytest.raises(UtilityModelError):
            catalog.items_of(8)
        with pytest.raises(UtilityModelError):
            catalog.bundle_size(-1)

    def test_iter_masks(self, catalog):
        assert list(catalog.iter_masks()) == list(range(8))
        assert list(catalog.iter_masks(include_empty=False)) == list(range(1, 8))

    def test_iter_singletons(self, catalog):
        assert list(catalog.iter_singletons()) == [("i", 1), ("j", 2), ("k", 4)]

    def test_subsets_of(self, catalog):
        subs = catalog.subsets_of(0b101)
        assert subs == [0, 1, 4, 5]
        assert catalog.subsets_of(0b101, include_empty=False) == [1, 4, 5]

    def test_subsets_of_full(self, catalog):
        assert len(catalog.subsets_of(catalog.full_mask)) == 8
