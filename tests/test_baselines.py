"""Tests for the baseline algorithms: greedyWM, TCIM, Balance-C and the
Round-robin / Snake / degree / random heuristics."""

import pytest

from repro.allocation import Allocation
from repro.baselines.balance_c import balance_c, balanced_exposure
from repro.baselines.greedy_wm import greedy_wm
from repro.baselines.heuristics import (
    degree_allocation,
    random_allocation,
    round_robin,
    snake,
)
from repro.baselines.tcim import tcim
from repro.diffusion.estimators import estimate_welfare
from repro.exceptions import AlgorithmError
from repro.graphs import generators
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions
from repro.utility.configs import lastfm_config, two_item_config

FAST = IMMOptions(max_rr_sets=5_000)


class TestGreedyWM:
    def test_budgets_respected(self, small_er_graph, c1_model):
        result = greedy_wm(small_er_graph, c1_model, {"i": 2, "j": 1},
                           n_marginal_samples=10,
                           candidate_pool=range(20), rng=1)
        assert result.allocation.seed_count("i") == 2
        assert result.allocation.seed_count("j") == 1
        assert result.algorithm == "greedyWM"

    def test_selections_recorded_with_gains(self, small_er_graph, c1_model):
        result = greedy_wm(small_er_graph, c1_model, {"i": 1, "j": 1},
                           n_marginal_samples=10,
                           candidate_pool=range(15), rng=2)
        selections = result.details["selections"]
        assert len(selections) == 2
        assert all(len(entry) == 3 for entry in selections)

    def test_restricted_pool_flagged(self, small_er_graph, c1_model):
        result = greedy_wm(small_er_graph, c1_model, {"i": 1, "j": 1},
                           n_marginal_samples=10,
                           candidate_pool=range(10), rng=3)
        assert result.details["restricted_pool"] is True
        assert result.details["candidate_pool_size"] == 10

    def test_picks_the_obvious_best_node(self, star10):
        model = two_item_config("C1", noise_sigma=0.0)
        result = greedy_wm(star10, model, {"i": 1, "j": 0},
                           n_marginal_samples=5, rng=4)
        assert result.allocation.seeds_for("i") == (0,)

    def test_zero_budget_returns_empty(self, small_er_graph, c1_model):
        result = greedy_wm(small_er_graph, c1_model, {"i": 0, "j": 0}, rng=1)
        assert result.allocation.is_empty()
        assert result.details["zero_budget"] is True

    def test_welfare_quality_on_small_instance(self, star10):
        """greedyWM maximizes welfare directly, so it should not be worse
        than a random allocation on a tiny instance."""
        model = two_item_config("C1", noise_sigma=0.0)
        greedy = greedy_wm(star10, model, {"i": 1, "j": 1},
                           n_marginal_samples=10, rng=5)
        greedy_welfare = estimate_welfare(star10, model,
                                          greedy.combined_allocation(),
                                          n_samples=50, rng=6).mean
        random_welfare = estimate_welfare(star10, model,
                                          Allocation({"i": [4], "j": [5]}),
                                          n_samples=50, rng=6).mean
        assert greedy_welfare >= random_welfare


class TestTCIM:
    def test_budgets_respected(self, small_er_graph, c1_model):
        result = tcim(small_er_graph, c1_model, {"i": 3, "j": 3},
                      n_evaluation_samples=30, options=FAST, rng=1)
        full = result.details["full_allocation"]
        assert full.seed_count("i") == 3
        assert full.seed_count("j") == 3
        assert result.algorithm == "TCIM"

    def test_reported_allocation_is_best_prefix(self, small_er_graph,
                                                 c1_model):
        result = tcim(small_er_graph, c1_model, {"i": 2, "j": 2},
                      n_evaluation_samples=30, options=FAST, rng=2)
        trace = result.details["welfare_trace"]
        assert len(trace) == 2
        # the returned allocation corresponds to the maximum of the trace
        assert result.allocation.num_pairs() in (2, 4)

    def test_respects_fixed_allocation(self, small_er_graph, c1_model):
        fixed = Allocation({"j": [0, 1]})
        result = tcim(small_er_graph, c1_model, {"i": 3},
                      fixed_allocation=fixed, n_evaluation_samples=20,
                      options=FAST, rng=3)
        assert not set(result.allocation.seeds_for("i")) & {0, 1}

    def test_no_budget_rejected(self, small_er_graph, c1_model):
        with pytest.raises(AlgorithmError):
            tcim(small_er_graph, c1_model, {"i": 0}, options=FAST)


class TestBalanceC:
    def test_exactly_two_items_required(self, small_er_graph, lastfm_model):
        budgets = {item: 1 for item in lastfm_model.items}
        with pytest.raises(AlgorithmError, match="two items"):
            balance_c(small_er_graph, lastfm_model, budgets, rng=1)

    def test_budgets_respected(self, small_er_graph, c3_model):
        result = balance_c(small_er_graph, c3_model, {"i": 2, "j": 2},
                           n_objective_samples=5, candidate_pool=range(20),
                           rng=2)
        assert result.allocation.seed_count("i") == 2
        assert result.allocation.seed_count("j") == 2
        assert result.algorithm == "Balance-C"

    def test_balanced_exposure_extremes(self, line4):
        # no seeds at all: every node sees neither item
        assert balanced_exposure(line4, [], [], n_samples=5, rng=1) == 4.0
        # both items seeded at the source of the deterministic path: every
        # node sees both items
        assert balanced_exposure(line4, [0], [0], n_samples=5, rng=1) == 4.0
        # only one item propagating: nothing is balanced
        assert balanced_exposure(line4, [0], [], n_samples=5, rng=1) == 0.0


class TestRoundRobinAndSnake:
    def test_interleaving_patterns(self, c1_model_no_noise):
        graph = generators.line_graph(8)
        pool = [0, 1, 2, 3]
        rr = round_robin(graph, c1_model_no_noise, {"i": 2, "j": 2},
                         seed_pool=pool, rng=1)
        sn = snake(graph, c1_model_no_noise, {"i": 2, "j": 2},
                   seed_pool=pool, rng=1)
        # item i has the higher truncated utility, so it goes first
        assert rr.allocation.seeds_for("i") == (0, 2)
        assert rr.allocation.seeds_for("j") == (1, 3)
        assert sn.allocation.seeds_for("i") == (0, 3)
        assert sn.allocation.seeds_for("j") == (1, 2)

    def test_budgets_respected_without_pool(self, small_er_graph, c1_model):
        result = round_robin(small_er_graph, c1_model, {"i": 3, "j": 3},
                             options=FAST, rng=2)
        assert result.allocation.seed_count("i") == 3
        assert result.allocation.seed_count("j") == 3

    def test_uneven_budgets(self, c1_model_no_noise):
        graph = generators.line_graph(10)
        pool = list(range(6))
        rr = round_robin(graph, c1_model_no_noise, {"i": 4, "j": 2},
                         seed_pool=pool, rng=3)
        assert rr.allocation.seed_count("i") == 4
        assert rr.allocation.seed_count("j") == 2

    def test_zero_budget_returns_empty(self, small_er_graph, c1_model):
        result = round_robin(small_er_graph, c1_model, {"i": 0, "j": 0},
                             options=FAST)
        assert result.allocation.is_empty()
        assert result.details["zero_budget"] is True

    def test_evaluate_welfare_option(self, small_er_graph, c1_model):
        result = snake(small_er_graph, c1_model, {"i": 2, "j": 2},
                       options=FAST, evaluate_welfare=True,
                       n_evaluation_samples=40, rng=4)
        assert result.estimated_welfare is not None


class TestSimpleHeuristics:
    def test_degree_allocation_prefers_hubs(self, star10, c1_model_no_noise):
        result = degree_allocation(star10, c1_model_no_noise,
                                   {"i": 1, "j": 1}, rng=1)
        assert result.allocation.seeds_for("i") == (0,)

    def test_random_allocation_budget_and_distinctness(self, small_er_graph,
                                                       c1_model):
        result = random_allocation(small_er_graph, c1_model,
                                   {"i": 5, "j": 5}, rng=2)
        seeds_i = set(result.allocation.seeds_for("i"))
        seeds_j = set(result.allocation.seeds_for("j"))
        assert len(seeds_i) == 5 and len(seeds_j) == 5
        assert not seeds_i & seeds_j

    def test_random_allocation_caps_at_graph_size(self, c1_model_no_noise):
        graph = generators.line_graph(4)
        result = random_allocation(graph, c1_model_no_noise,
                                   {"i": 3, "j": 3}, rng=3)
        assert result.allocation.num_pairs() <= 4
