"""Property-based tests of the core diffusion and welfare invariants.

These complement the example-based tests with randomized checks of the
invariants the paper's analysis relies on:

* the adoption rule is progressive and utility-improving (best_bundle),
* adopted bundles always have non-negative utility,
* only nodes reachable from the seed set can adopt anything, and the
  welfare of any allocation is sandwiched by ``u_min``/``u_max`` times the
  number of adopters (the per-world version of Lemma 1/2).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import Allocation
from repro.diffusion.ic import reachable_set
from repro.diffusion.uic import best_bundle, simulate_uic
from repro.diffusion.worlds import EdgeWorld
from repro.graphs.graph import DirectedGraph
from repro.utility.configs import lastfm_config, multi_item_config, two_item_config
from repro.utility.items import ItemCatalog
from repro.utility.model import UtilityModel
from repro.utility.valuation import TableValuation


# ----------------------------------------------------------------------
# best_bundle invariants
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(utilities=st.lists(st.floats(min_value=-10, max_value=10,
                                    allow_nan=False),
                          min_size=8, max_size=8),
       desire=st.integers(min_value=0, max_value=7),
       adopted_bits=st.integers(min_value=0, max_value=7))
def test_best_bundle_invariants(utilities, desire, adopted_bits):
    table = np.array(utilities)
    table[0] = 0.0
    adopted = adopted_bits & desire
    # the previous adoption must itself be a feasible (>= 0) choice, as it
    # is in any real diffusion trajectory
    if table[adopted] < 0:
        adopted = 0
    chosen = best_bundle(desire, adopted, table)
    # progressive: the new adoption contains the old one
    assert chosen & adopted == adopted
    # feasible: only desired (or previously adopted) items
    assert chosen & ~(desire | adopted) == 0
    # never worse than keeping the previous adoption, never negative
    assert table[chosen] >= table[adopted] - 1e-12
    assert table[chosen] >= -1e-12
    # optimal among feasible supersets of the previous adoption
    free = desire & ~adopted
    sub = free
    best = table[adopted]
    while True:
        candidate = adopted | sub
        if table[candidate] >= 0:
            best = max(best, table[candidate])
        if sub == 0:
            break
        sub = (sub - 1) & free
    assert table[chosen] == pytest.approx(best)


# ----------------------------------------------------------------------
# random-instance diffusion invariants
# ----------------------------------------------------------------------
def _random_instance(data):
    n = data.draw(st.integers(min_value=2, max_value=12), label="n")
    possible_edges = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = data.draw(st.lists(st.sampled_from(possible_edges), max_size=30),
                      label="edges")
    graph = DirectedGraph.from_edges(n, [(u, v, 1.0) for u, v in edges])
    model_choice = data.draw(st.integers(min_value=0, max_value=2),
                             label="model")
    model = [two_item_config("C1", noise_sigma=0.0),
             multi_item_config(3),
             lastfm_config()][model_choice]
    items = list(model.items)
    pair_count = data.draw(st.integers(min_value=0, max_value=min(6, n)),
                           label="pairs")
    pairs = []
    for index in range(pair_count):
        node = data.draw(st.integers(min_value=0, max_value=n - 1),
                         label=f"node{index}")
        item = data.draw(st.sampled_from(items), label=f"item{index}")
        pairs.append((node, item))
    allocation = Allocation.from_pairs(dict.fromkeys(pairs))
    return graph, model, allocation


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_diffusion_invariants_on_random_instances(data):
    graph, model, allocation = _random_instance(data)
    result = simulate_uic(graph, model, allocation, rng=0)
    catalog = model.catalog
    utilities = model.utility_table(np.zeros(model.num_items))

    # (1) every adopted bundle has non-negative utility
    for mask in result.adoption_masks:
        assert utilities[int(mask)] >= -1e-9

    # (2) only nodes reachable from the seed set adopt anything
    #     (all edges have probability 1, so reachability is deterministic)
    world = EdgeWorld([graph.out_neighbors(v)[0] for v in range(len(graph))])
    reachable = reachable_set(world, allocation.all_seeds())
    adopters = {v for v in range(len(graph)) if result.adoption_masks[v]}
    assert adopters <= reachable

    # (3) welfare is the sum of adopted-bundle utilities and is bounded by
    #     u_max per adopter (Lemma 1 per possible world, zero noise)
    welfare = sum(utilities[int(mask)] for mask in result.adoption_masks)
    assert result.welfare == pytest.approx(welfare)
    u_max = float(np.maximum(utilities, 0.0).max())
    assert result.welfare <= u_max * result.num_adopters + 1e-9

    # (4) seeds that were allocated a non-negative-utility item adopt
    #     something (their own allocation is always available)
    for node, item in allocation.pairs():
        if model.deterministic_utility(item) >= 0:
            assert result.adoption_masks[node] != 0

    # (5) adoption counts agree with the masks
    for name, bit in catalog.iter_singletons():
        count = sum(1 for mask in result.adoption_masks if int(mask) & bit)
        assert result.adoption_counts[name] == count


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_welfare_monotone_under_pure_competition_single_item(data):
    """With a single item, welfare *is* monotone in the seed set — adding a
    seed can only help.  (The counterexamples need ≥ 2 items.)"""
    n = data.draw(st.integers(min_value=2, max_value=10))
    possible_edges = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = data.draw(st.lists(st.sampled_from(possible_edges), max_size=25))
    graph = DirectedGraph.from_edges(n, [(u, v, 1.0) for u, v in edges])
    from repro.utility.configs import single_item_config
    model = single_item_config()
    seeds = sorted(set(data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), max_size=4))))
    extra = data.draw(st.integers(min_value=0, max_value=n - 1))
    small = Allocation({"item": seeds}) if seeds else Allocation.empty()
    big = small.union(Allocation.single(extra, "item"))
    welfare_small = simulate_uic(graph, model, small, rng=0).welfare
    welfare_big = simulate_uic(graph, model, big, rng=0).welfare
    assert welfare_big >= welfare_small - 1e-9
