"""Tests for the IMM martingale sampling bounds."""

import math

import pytest

from repro.exceptions import AlgorithmError
from repro.rrsets.bounds import adjusted_ell, lambda_prime, lambda_star, log_binomial


class TestLogBinomial:
    @pytest.mark.parametrize("n,k", [(10, 3), (50, 25), (100, 1), (7, 7),
                                     (12, 0)])
    def test_matches_math_comb(self, n, k):
        assert log_binomial(n, k) == pytest.approx(math.log(math.comb(n, k)),
                                                   abs=1e-9)

    def test_k_greater_than_n(self):
        assert log_binomial(3, 5) == float("-inf")

    def test_negative_rejected(self):
        with pytest.raises(AlgorithmError):
            log_binomial(-1, 0)
        with pytest.raises(AlgorithmError):
            log_binomial(5, -1)

    def test_large_values_do_not_overflow(self):
        value = log_binomial(10**7, 50)
        assert math.isfinite(value)
        assert value > 0


class TestLambdaStar:
    def test_positive_and_scales_with_n(self):
        small = lambda_star(100, 5, 0.5, 1.0)
        large = lambda_star(1000, 5, 0.5, 1.0)
        assert 0 < small < large

    def test_decreases_with_epsilon(self):
        loose = lambda_star(500, 10, 0.5, 1.0)
        tight = lambda_star(500, 10, 0.1, 1.0)
        assert tight > loose

    def test_increases_with_budget(self):
        assert lambda_star(500, 50, 0.5, 1.0) > lambda_star(500, 5, 0.5, 1.0)

    def test_increases_with_ell(self):
        assert lambda_star(500, 10, 0.5, 2.0) > lambda_star(500, 10, 0.5, 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(AlgorithmError):
            lambda_star(0, 5, 0.5, 1.0)
        with pytest.raises(AlgorithmError):
            lambda_star(10, 5, 0.0, 1.0)


class TestLambdaPrime:
    def test_positive(self):
        assert lambda_prime(100, 5, 0.7, 1.0) > 0

    def test_decreases_with_epsilon(self):
        assert lambda_prime(500, 10, 0.2, 1.0) > lambda_prime(500, 10, 0.9, 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(AlgorithmError):
            lambda_prime(0, 5, 0.5, 1.0)
        with pytest.raises(AlgorithmError):
            lambda_prime(10, 5, -0.5, 1.0)


class TestAdjustedEll:
    def test_single_budget(self):
        n = 1000
        ell = adjusted_ell(n, 1.0)
        assert ell == pytest.approx(1.0 + math.log(2) / math.log(n))

    def test_multiple_budgets_increase_ell(self):
        n = 1000
        assert adjusted_ell(n, 1.0, num_budgets=4) > adjusted_ell(n, 1.0)

    def test_monotone_in_ell(self):
        assert adjusted_ell(100, 2.0) > adjusted_ell(100, 1.0)
