"""Unit and property tests for the valuation families."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import UtilityModelError
from repro.utility.items import ItemCatalog
from repro.utility.valuation import (
    AdditiveValuation,
    ConcaveOverSumValuation,
    CoverageValuation,
    MaxPlusValuation,
    TableValuation,
    is_monotone,
    is_submodular,
    is_supermodular,
)


@pytest.fixture
def abc():
    return ItemCatalog(["a", "b", "c"])


class TestTableValuation:
    def test_explicit_values(self, abc):
        v = TableValuation(abc, {"a": 1.0, "b": 2.0, ("a", "b"): 2.5})
        assert v.value(["a"]) == 1.0
        assert v.value(["a", "b"]) == 2.5
        assert v.value([]) == 0.0

    def test_monotone_closure_for_missing_bundles(self, abc):
        v = TableValuation(abc, {"a": 1.0, "b": 2.0})
        # {a, b} was not given: closure takes the max of given sub-bundles
        assert v.value(["a", "b"]) == 2.0
        assert v.value(["a", "b", "c"]) == 2.0

    def test_bundle_keys_as_masks(self, abc):
        v = TableValuation(abc, {0b011: 5.0, "a": 1.0})
        assert v.value(["a", "b"]) == 5.0

    def test_empty_bundle_must_be_zero(self, abc):
        with pytest.raises(UtilityModelError):
            TableValuation(abc, {(): 3.0})

    def test_table_shape(self, abc):
        v = TableValuation(abc, {"a": 1.0})
        assert len(v.table()) == 8

    def test_value_of_mask_range_check(self, abc):
        v = TableValuation(abc, {"a": 1.0})
        with pytest.raises(UtilityModelError):
            v.value_of_mask(9)


class TestAdditiveValuation:
    def test_sum(self, abc):
        v = AdditiveValuation(abc, {"a": 1.0, "b": 2.0, "c": 3.0})
        assert v.value(["a", "c"]) == 4.0
        assert v.value([]) == 0.0

    def test_missing_item_rejected(self, abc):
        with pytest.raises(UtilityModelError, match="missing"):
            AdditiveValuation(abc, {"a": 1.0})

    def test_is_modular(self, abc):
        v = AdditiveValuation(abc, {"a": 1.0, "b": 2.0, "c": 3.0})
        assert is_submodular(v)
        assert is_supermodular(v)
        assert is_monotone(v)


class TestMaxPlusValuation:
    def test_values(self, abc):
        v = MaxPlusValuation(abc, {"a": 5.0, "b": 3.0, "c": 1.0}, bonus=0.5)
        assert v.value(["b"]) == 3.0
        assert v.value(["a", "b"]) == 5.5
        assert v.value(["a", "b", "c"]) == 6.0

    def test_monotone_and_submodular(self, abc):
        v = MaxPlusValuation(abc, {"a": 5.0, "b": 3.0, "c": 1.0}, bonus=0.5)
        assert is_monotone(v)
        assert is_submodular(v)

    def test_negative_bonus_rejected(self, abc):
        with pytest.raises(UtilityModelError):
            MaxPlusValuation(abc, {"a": 1.0, "b": 1.0, "c": 1.0}, bonus=-1.0)


class TestConcaveOverSumValuation:
    def test_values(self, abc):
        v = ConcaveOverSumValuation(abc, {"a": 4.0, "b": 9.0, "c": 0.0},
                                    exponent=0.5)
        assert v.value(["a"]) == pytest.approx(2.0)
        assert v.value(["b"]) == pytest.approx(3.0)
        assert v.value(["a", "b"]) == pytest.approx(13 ** 0.5)

    def test_monotone_and_submodular(self, abc):
        v = ConcaveOverSumValuation(abc, {"a": 4.0, "b": 9.0, "c": 2.0},
                                    exponent=0.7)
        assert is_monotone(v)
        assert is_submodular(v)

    def test_invalid_exponent(self, abc):
        with pytest.raises(UtilityModelError):
            ConcaveOverSumValuation(abc, {"a": 1, "b": 1, "c": 1}, exponent=1.5)

    def test_negative_values_rejected(self, abc):
        with pytest.raises(UtilityModelError):
            ConcaveOverSumValuation(abc, {"a": -1, "b": 1, "c": 1})

    def test_custom_transform(self, abc):
        v = ConcaveOverSumValuation(abc, {"a": 2.0, "b": 3.0, "c": 0.0},
                                    transform=lambda x: min(x, 4.0))
        assert v.value(["a", "b"]) == 4.0


class TestCoverageValuation:
    def test_coverage(self, abc):
        v = CoverageValuation(abc, {"a": ["f1", "f2"], "b": ["f2", "f3"],
                                    "c": []})
        assert v.value(["a"]) == 2.0
        assert v.value(["a", "b"]) == 3.0
        assert v.value(["c"]) == 0.0

    def test_feature_weights(self, abc):
        v = CoverageValuation(abc, {"a": ["f1"], "b": ["f2"], "c": []},
                              feature_weights={"f1": 5.0})
        assert v.value(["a"]) == 5.0
        assert v.value(["a", "b"]) == 6.0

    def test_monotone_and_submodular(self, abc):
        v = CoverageValuation(abc, {"a": ["f1", "f2"], "b": ["f2"],
                                    "c": ["f3", "f1"]})
        assert is_monotone(v)
        assert is_submodular(v)


class TestValidators:
    def test_non_monotone_detected(self, abc):
        v = TableValuation(abc, {"a": 5.0, ("a", "b"): 1.0, "b": 0.5})
        assert not is_monotone(v)

    def test_supermodular_detected(self, abc):
        v = TableValuation(abc, {"a": 1.0, "b": 1.0, "c": 1.0,
                                 ("a", "b"): 4.0, ("a", "c"): 4.0,
                                 ("b", "c"): 4.0, ("a", "b", "c"): 12.0})
        assert is_supermodular(v)
        assert not is_submodular(v)


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
item_values = st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=2, max_size=4)


@settings(max_examples=30, deadline=None)
@given(values=item_values, bonus=st.floats(min_value=0.0, max_value=5.0))
def test_maxplus_always_monotone_submodular(values, bonus):
    catalog = ItemCatalog([f"x{k}" for k in range(len(values))])
    valuation = MaxPlusValuation(
        catalog, {f"x{k}": v for k, v in enumerate(values)}, bonus=bonus)
    assert is_monotone(valuation)
    # submodularity additionally needs the bonus to be at most the smallest
    # item value (see the class docstring); all shipped configs satisfy it
    if bonus <= min(values):
        assert is_submodular(valuation)


@settings(max_examples=30, deadline=None)
@given(values=item_values,
       exponent=st.floats(min_value=0.1, max_value=1.0))
def test_concave_over_sum_always_monotone_submodular(values, exponent):
    catalog = ItemCatalog([f"x{k}" for k in range(len(values))])
    valuation = ConcaveOverSumValuation(
        catalog, {f"x{k}": v for k, v in enumerate(values)}, exponent=exponent)
    assert is_monotone(valuation)
    assert is_submodular(valuation)


@settings(max_examples=30, deadline=None)
@given(features=st.lists(st.lists(st.sampled_from(["f1", "f2", "f3", "f4"]),
                                  max_size=4), min_size=2, max_size=4))
def test_coverage_always_monotone_submodular(features):
    catalog = ItemCatalog([f"x{k}" for k in range(len(features))])
    valuation = CoverageValuation(
        catalog, {f"x{k}": feats for k, feats in enumerate(features)})
    assert is_monotone(valuation)
    assert is_submodular(valuation)


@settings(max_examples=30, deadline=None)
@given(values=item_values)
def test_additive_is_modular(values):
    catalog = ItemCatalog([f"x{k}" for k in range(len(values))])
    valuation = AdditiveValuation(
        catalog, {f"x{k}": v for k, v in enumerate(values)})
    assert is_submodular(valuation)
    assert is_supermodular(valuation)
