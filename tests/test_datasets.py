"""Unit tests for the synthetic benchmark-network stand-ins (Table 2)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.datasets import (
    NETWORKS,
    load_network,
    network_names,
    network_spec,
    network_statistics,
)


class TestSpecs:
    def test_all_five_networks_present(self):
        assert set(network_names()) == {
            "nethept", "douban-book", "douban-movie", "orkut", "twitter"}

    def test_published_statistics_recorded(self):
        spec = network_spec("nethept")
        assert spec.num_nodes == 15_200
        assert spec.avg_degree == pytest.approx(4.13)
        assert spec.directed is False
        orkut = network_spec("Orkut")  # case-insensitive
        assert orkut.num_nodes == 3_070_000
        assert orkut.avg_degree == pytest.approx(77.5)

    def test_unknown_network(self):
        with pytest.raises(GraphError):
            network_spec("facebook")


class TestLoadNetwork:
    def test_scaled_size(self):
        g = load_network("nethept", scale=0.02, rng=1)
        expected = int(round(0.02 * 15_200))
        assert abs(g.num_nodes - expected) <= 32

    def test_average_degree_roughly_matches(self):
        g = load_network("nethept", scale=0.05, rng=1, weighting_scheme="none")
        assert 2.5 < g.average_degree() < 6.0
        g2 = load_network("douban-movie", scale=0.02, rng=1,
                          weighting_scheme="none")
        assert 5.0 < g2.average_degree() < 11.0

    def test_weighted_cascade_default(self):
        g = load_network("nethept", scale=0.02, rng=1)
        for node in range(g.num_nodes):
            _, probs = g.in_neighbors(node)
            if len(probs):
                assert probs.sum() == pytest.approx(1.0)

    def test_uniform_weighting(self):
        g = load_network("nethept", scale=0.02, rng=1,
                         weighting_scheme="uniform", uniform_probability=0.02)
        assert all(p == pytest.approx(0.02) for _, _, p in g.edges())

    def test_no_weighting(self):
        g = load_network("nethept", scale=0.02, rng=1, weighting_scheme="none")
        assert all(p == pytest.approx(1.0) for _, _, p in g.edges())

    def test_deterministic_with_seed(self):
        g1 = load_network("douban-book", scale=0.01, rng=5)
        g2 = load_network("douban-book", scale=0.01, rng=5)
        assert set(g1.edges()) == set(g2.edges())

    def test_default_scale_keeps_it_small(self):
        g = load_network("orkut", rng=1)
        assert g.num_nodes < 20_000

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            load_network("nethept", scale=0.0)

    def test_invalid_weighting(self):
        with pytest.raises(GraphError):
            load_network("nethept", scale=0.01, weighting_scheme="bogus")

    def test_minimum_size_floor(self):
        g = load_network("nethept", scale=1e-9, rng=1)
        assert g.num_nodes >= 32


class TestStatistics:
    def test_statistics_keys(self):
        g = load_network("nethept", scale=0.02, rng=1)
        stats = network_statistics(g)
        assert stats["name"] == "nethept"
        assert stats["nodes"] == g.num_nodes
        assert stats["edges"] == g.num_edges
        assert stats["avg_degree"] == pytest.approx(g.average_degree(), abs=0.01)
        assert stats["max_out_degree"] >= 1
