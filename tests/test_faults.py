"""Overload hardening: fault injection, admission control, deadlines,
drain semantics, and the resilient client.

The chaos tests arm :mod:`repro.faults` against a real TCP server and pin
the resilience invariants from the serving contract:

* no crash and no hung connection under injected registry-load failures,
  slow selection, stalled writes, and mid-frame disconnects;
* every admitted request gets exactly one response (typed envelope or
  allocation), and allocations stay bit-identical with faults disabled;
* shed requests carry ``overloaded`` envelopes with ``queue_depth`` and
  ``retry_after_ms``; draining connections get ``shutting-down``;
* SIGHUP-style hot reload racing an in-flight coalesced batch is safe;
* an aborted (cancelled) ``serve_forever`` still unlinks its unix socket.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os

import pytest

from repro import faults
from repro.api import (
    EngineConfig,
    RunSpec,
    WorkloadSpec,
    make_request,
    run as run_spec,
)
from repro.api.protocol import RETRYABLE_ERROR_CODES
from repro.index import build_index
from repro.serve import AllocationServer, IndexRegistry
from repro.serve.client import (
    ResilientClient,
    RetriesExhausted,
    RetryPolicy,
    retryable_code,
)
from repro.serve.server import _TokenBucket
from repro.utility.configs import configuration_model

NETWORK, SCALE, CONFIGURATION = "nethept", 0.01, "C1"
SEED = 11

SPEC = RunSpec(
    algorithm="SeqGRD-NM",
    workload=WorkloadSpec(network=NETWORK, scale=SCALE,
                          configuration=CONFIGURATION,
                          budgets={"i": 2, "j": 2}),
    engine=EngineConfig(seed=SEED, samples=10, max_rr_sets=2000))


def _variants(budgets_list):
    return [dataclasses.replace(
        SPEC, workload=dataclasses.replace(SPEC.workload, budgets=b))
        for b in budgets_list]


@pytest.fixture(autouse=True)
def _always_disarm():
    """No fault spec may leak across tests (or into other modules)."""
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture(scope="module")
def instance():
    from repro.graphs.datasets import load_network

    return load_network(NETWORK, scale=SCALE, rng=SEED), \
        configuration_model(CONFIGURATION)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory, instance):
    graph, model = instance
    tmp = tmp_path_factory.mktemp("fault-indexes")
    index = build_index(
        graph, model, sampler="marginal",
        budgets=dict(SPEC.workload.budgets),
        options=SPEC.engine.imm_options(), seed=SPEC.engine.seed,
        meta_extra={"network": NETWORK, "scale": SCALE,
                    "configuration": CONFIGURATION, "graph_seed": SEED,
                    "fixed_imm_item": None, "fixed_imm_budget": 50})
    index.save(tmp / "chaos-idx")
    return tmp


@pytest.fixture(scope="module")
def direct_allocation(instance):
    graph, model = instance
    record = run_spec(SPEC, graph=graph, model=model)
    return {item: list(nodes) for item, nodes
            in record.result.allocation.as_dict().items()}


def _run(coro, timeout=300):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _server(index_dir, **kwargs):
    registry = IndexRegistry(directory=index_dir, capacity=2,
                             cache_size=0)
    return AllocationServer(registry, **kwargs)


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_rejects_unknown_site(self):
        with pytest.raises(faults.FaultSpecError, match="unknown fault"):
            faults.FaultInjector("warp-core-breach:0.5")

    def test_rejects_bad_rate(self):
        with pytest.raises(faults.FaultSpecError, match=r"\[0, 1\]"):
            faults.FaultInjector("disconnect:1.5")
        with pytest.raises(faults.FaultSpecError):
            faults.FaultInjector("disconnect:lots")

    def test_rejects_bad_shape(self):
        with pytest.raises(faults.FaultSpecError, match="expected site"):
            faults.FaultInjector("disconnect")
        with pytest.raises(faults.FaultSpecError, match="no sites"):
            faults.FaultInjector("")
        with pytest.raises(faults.FaultSpecError, match=">= 0"):
            faults.FaultInjector("stall-write:0.5:-10")

    def test_same_seed_same_fire_pattern(self):
        a = faults.FaultInjector("disconnect:0.5", seed=42)
        b = faults.FaultInjector("disconnect:0.5", seed=42)
        assert [a.fires("disconnect") for _ in range(64)] \
            == [b.fires("disconnect") for _ in range(64)]
        c = faults.FaultInjector("disconnect:0.5", seed=43)
        assert [a.fires("disconnect") for _ in range(64)] \
            != [c.fires("disconnect") for _ in range(64)]

    def test_sites_draw_independent_streams(self):
        injector = faults.FaultInjector(
            "disconnect:0.5,stall-write:0.5:10", seed=1)
        solo = faults.FaultInjector("disconnect:0.5", seed=1)
        interleaved = []
        for _ in range(32):
            interleaved.append(injector.fires("disconnect"))
            injector.fires("stall-write")  # must not perturb disconnect
        assert interleaved == [solo.fires("disconnect")
                               for _ in range(32)]

    def test_rate_extremes(self):
        never = faults.FaultInjector("slow-selection:0.0:50", seed=0)
        always = faults.FaultInjector("slow-selection:1.0:50", seed=0)
        assert not any(never.fires("slow-selection") for _ in range(50))
        assert all(always.fires("slow-selection") for _ in range(50))
        assert always.delay("slow-selection") == pytest.approx(0.05)
        assert never.delay("slow-selection") == 0.0

    def test_stats_counters(self):
        injector = faults.FaultInjector("registry-load:1.0", seed=0)
        for _ in range(3):
            injector.fires("registry-load")
        stats = injector.stats()
        assert stats == {"registry-load": {
            "rate": 1.0, "delay_ms": 0.0, "checked": 3, "fired": 3}}

    def test_disarmed_hooks_are_noops(self):
        assert faults.active() is None
        assert faults.fires("disconnect") is False
        assert faults.delay("stall-write") == 0.0
        assert faults.stats() is None
        # unknown sites never fire even when armed
        faults.configure("disconnect:1.0")
        assert faults.fires("not-a-site") is False
        assert faults.fires("disconnect") is True

    def test_configure_from_env(self):
        env = {faults.ENV_SPEC: "stall-write:1.0:25",
               faults.ENV_SEED: "9"}
        injector = faults.configure_from_env(env)
        assert injector is faults.active()
        assert injector.seed == 9
        assert faults.delay("stall-write") == pytest.approx(0.025)
        assert faults.configure_from_env({}) is None

    def test_mapping_spec(self):
        injector = faults.FaultInjector(
            {"disconnect": 1.0, "stall-write": (0.5, 40)}, seed=0)
        assert injector.fires("disconnect")
        stats = injector.stats()
        assert stats["stall-write"]["delay_ms"] == pytest.approx(40.0)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_admits_then_throttles(self):
        bucket = _TokenBucket(rate=1000.0, burst=2.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert 0.0 < wait <= 1.0 / 1000.0 + 1e-6

    def test_refills_over_time(self):
        bucket = _TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        bucket.last -= 0.2  # simulate 200ms of elapsed refill
        assert bucket.try_acquire() == 0.0


@pytest.mark.slow
class TestAdmissionControl:
    def test_queue_full_sheds_with_typed_envelope(self, index_dir):
        server = _server(index_dir, max_queue_depth=1)
        variants = _variants([{"i": 1, "j": 1}, {"i": 2, "j": 1},
                              {"i": 1, "j": 2}, {"i": 2, "j": 2}])
        # warm the index synchronously so the stalled request below
        # reaches the coalescer quickly (load time is not part of the
        # scenario)
        warm = server.dispatch_line(json.dumps(make_request(variants[0])))
        assert warm["ok"] is True
        # now every selection stalls ~500ms on the worker thread: once
        # one spec is in flight, the queue bound of 1 sheds the rest
        faults.configure("slow-selection:1.0:500", seed=0)

        async def one(host, port, spec):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps(make_request(spec)).encode() + b"\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            writer.close()
            return response

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            first = asyncio.create_task(one(host, port, variants[1]))
            deadline = asyncio.get_running_loop().time() + 30
            while server.coalescer.queue_depth < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            rest = await asyncio.gather(
                *[one(host, port, spec) for spec in variants[2:]])
            responses = [await first] + list(rest)
            stats = server.stats_payload()
            await server.shutdown(drain=True)
            return responses, stats

        responses, stats = _run(scenario())
        shed = [r for r in responses if not r.get("ok", True)]
        served = [r for r in responses if r.get("ok")]
        assert served, "at least one request must be admitted"
        assert shed, "a queue bound of 1 must shed concurrent specs"
        for response in shed:
            error = response["error"]
            assert error["code"] == "overloaded"
            assert error["queue_depth"] >= 1
            assert error["retry_after_ms"] >= 50
        assert stats["server"]["shed"]["by_reason"]["queue-full"] \
            == len(shed)
        assert stats["server"]["shed"]["total"] == len(shed)
        assert stats["faults"]["slow-selection"]["fired"] >= 1

    def test_rate_limit_sheds_per_connection(self, index_dir):
        server = _server(index_dir, rate_limit=0.5, rate_burst=2)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            responses = []
            for i in range(5):
                writer.write(json.dumps(
                    make_request(SPEC, request_id=f"r{i}")
                ).encode() + b"\n")
                await writer.drain()
                responses.append(json.loads(await asyncio.wait_for(
                    reader.readline(), 120)))
            # the exempt ops surface keeps answering while throttled
            writer.write(b'{"op": "stats"}\n')
            await writer.drain()
            stats_response = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            writer.close()
            await server.shutdown(drain=True)
            return responses, stats_response

        responses, stats_response = _run(scenario())
        served = [r for r in responses if r.get("ok")]
        shed = [r for r in responses if not r.get("ok", True)]
        assert len(served) == 2, "burst of 2 admits exactly 2"
        assert len(shed) == 3
        for response in shed:
            assert response["error"]["code"] == "overloaded"
            assert response["error"]["retry_after_ms"] > 0
        assert stats_response["ok"] is True
        assert stats_response["server"]["shed"]["by_reason"][
            "rate-limit"] == 3

    def test_health_degrades_on_sheds(self, index_dir):
        server = _server(index_dir, rate_limit=0.5, rate_burst=1)
        assert server.health_state() == "ok"
        assert server.health()["ok"] is True
        server._note_shed("rate-limit")
        assert server.health_state() == "degraded"
        health = server.health()
        assert health["ok"] is False
        assert health["recent_sheds"] == 1
        server._draining = True
        assert server.health_state() == "draining"


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestDeadlines:
    def test_generous_deadline_still_bit_identical(self, index_dir,
                                                   direct_allocation):
        server = _server(index_dir)
        request = dict(make_request(SPEC), deadline_ms=60_000)
        response = server.dispatch_line(json.dumps(request))
        assert response["ok"] is True
        assert response["allocation"] == direct_allocation

    def test_expired_deadline_answers_typed_envelope(self, index_dir):
        server = _server(index_dir)
        request = dict(make_request(SPEC, request_id="late"),
                       deadline_ms=1e-6)
        response = server.dispatch_line(json.dumps(request))
        assert response["ok"] is False
        assert response["error"]["code"] == "deadline-exceeded"
        assert response["id"] == "late"
        stats = server.stats_payload()
        assert stats["server"]["deadline_expired"] == 1

    def test_malformed_deadline_rejected(self, index_dir):
        server = _server(index_dir)
        for bad in ("soon", True, -5, 0, float("nan"), float("inf")):
            request = dict(make_request(SPEC))
            request["deadline_ms"] = bad
            response = server.dispatch(request)
            assert response["ok"] is False, bad
            assert response["error"]["code"] == "malformed-request", bad

    def test_server_default_deadline_applies(self, index_dir):
        server = _server(index_dir, default_deadline_ms=1e-6)
        response = server.dispatch_line(json.dumps(make_request(SPEC)))
        assert response["ok"] is False
        assert response["error"]["code"] == "deadline-exceeded"

    def test_max_deadline_clamps_client_value(self, index_dir):
        server = _server(index_dir, max_deadline_ms=1e-6)
        request = dict(make_request(SPEC), deadline_ms=60_000)
        response = server.dispatch_line(json.dumps(request))
        assert response["ok"] is False
        assert response["error"]["code"] == "deadline-exceeded"

    def test_expired_deadline_in_coalesced_batch(self, index_dir):
        # the slow-selection stall burns the whole deadline while the
        # request sits in the coalescer, so expiry is detected at batch
        # execution start on the worker thread
        faults.configure("slow-selection:1.0:150", seed=0)
        server = _server(index_dir)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            request = dict(make_request(SPEC, request_id="queued"),
                           deadline_ms=50)
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            writer.close()
            await server.shutdown(drain=True)
            return response

        response = _run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == "deadline-exceeded"
        assert response["id"] == "queued"


# ----------------------------------------------------------------------
# drain semantics
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestDrain:
    def test_frames_during_drain_get_shutting_down(self, index_dir):
        server = _server(index_dir)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            server._draining = True  # as if shutdown had just begun
            writer.write(json.dumps(
                make_request(SPEC, request_id="too-late")
            ).encode() + b"\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            eof = await asyncio.wait_for(reader.readline(), 120)
            writer.close()
            server._draining = False
            await server.shutdown(drain=True)
            return response, eof

        response, eof = _run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == "shutting-down"
        assert response["id"] == "too-late"
        assert eof == b"", "the draining connection must be closed"

    def test_drain_timeout_answers_stragglers(self, index_dir):
        # the in-flight request stalls for ~2s but the drain budget is
        # 100ms: the connection must get a shutting-down envelope, not
        # silence
        faults.configure("slow-selection:1.0:2000", seed=0)
        server = _server(index_dir, drain_timeout=0.1)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps(
                make_request(SPEC, request_id="straggler")
            ).encode() + b"\n")
            await writer.drain()
            await asyncio.sleep(0.2)  # let it reach the worker thread
            shutdown = asyncio.create_task(server.shutdown(drain=True))
            line = await asyncio.wait_for(reader.readline(), 120)
            await shutdown
            writer.close()
            return json.loads(line)

        response = _run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == "shutting-down"
        stats = server.stats_payload()
        assert stats["server"]["shed"]["by_reason"]["shutting-down"] >= 1


# ----------------------------------------------------------------------
# satellite regressions: reload race + unix-socket cleanup
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestLifecycleRegressions:
    def test_hot_reload_races_inflight_coalesced_batch(
            self, index_dir, direct_allocation):
        # a SIGHUP handler calls registry.reload() on the event-loop
        # thread while a coalesced batch executes on the worker thread;
        # the in-flight batch must still answer correctly
        faults.configure("slow-selection:1.0:200", seed=0)
        server = _server(index_dir)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)

            async def one(i):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(json.dumps(
                    make_request(SPEC, request_id=f"c{i}")
                ).encode() + b"\n")
                await writer.drain()
                response = json.loads(await asyncio.wait_for(
                    reader.readline(), 120))
                writer.close()
                return response

            clients = [asyncio.create_task(one(i)) for i in range(4)]
            await asyncio.sleep(0.05)  # batch is now on the worker
            reload_stats = server.registry.reload()  # the SIGHUP body
            responses = await asyncio.gather(*clients)
            await server.shutdown(drain=True)
            return responses, reload_stats

        responses, reload_stats = _run(scenario())
        for response in responses:
            assert response["ok"] is True, response
            assert response["allocation"] == direct_allocation
        assert reload_stats["indexes"] == ["chaos-idx"]
        assert reload_stats["reloads"] == 1

    def test_aborted_serve_unlinks_unix_socket(self, index_dir, tmp_path):
        # the serve loop dying mid-flight (here: cancellation while a
        # faulted request is being answered) must still clean up the
        # socket file, or the next start fails with EADDRINUSE
        faults.configure("registry-load:1.0", seed=0)
        socket_path = tmp_path / "chaos.sock"

        async def scenario():
            server = _server(index_dir)
            ready = asyncio.Event()
            task = asyncio.create_task(server.serve_forever(
                unix=socket_path, ready=lambda endpoints: ready.set()))
            await asyncio.wait_for(ready.wait(), 60)
            assert socket_path.exists()
            reader, writer = await asyncio.open_unix_connection(
                str(socket_path))
            writer.write(json.dumps(make_request(SPEC)).encode() + b"\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            writer.close()
            task.cancel()  # abort the serve loop outright
            with pytest.raises(asyncio.CancelledError):
                await task
            return response

        response = _run(scenario())
        # the injected load failure was answered, not crashed on
        assert response["ok"] is False
        assert not socket_path.exists(), \
            "aborted serve must unlink its unix socket"


# ----------------------------------------------------------------------
# the resilient client
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_deterministic_and_capped(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert [a.delay(i) for i in range(8)] \
            == [b.delay(i) for i in range(8)]
        policy = RetryPolicy(seed=1, base_delay_s=0.05, max_delay_s=0.4)
        for attempt in range(20):
            assert 0.0 <= policy.delay(attempt) <= 0.4

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(seed=3, base_delay_s=0.001,
                             max_delay_s=10.0)
        assert policy.delay(0, retry_after_ms=500) >= 0.5

    def test_retryable_code_extraction(self):
        assert retryable_code({"ok": True}) is None
        assert retryable_code({"ok": False, "error": "legacy"}) is None
        assert retryable_code(
            {"ok": False, "error": {"code": "invalid-spec"}}) is None
        for code in RETRYABLE_ERROR_CODES:
            assert retryable_code(
                {"ok": False, "error": {"code": code}}) == code


class TestResilientClient:
    """Against a scripted fake server — behavior is fully deterministic."""

    @staticmethod
    async def _fake_server(script):
        """Serve canned responses; ``script`` is a list of per-request
        actions: a dict (respond), "close" (drop before answering), or
        "truncate" (half a frame then close)."""
        state = {"i": 0, "requests": []}

        async def handle(reader, writer):
            while True:
                line = await reader.readline()
                if not line:
                    break
                state["requests"].append(json.loads(line))
                action = script[min(state["i"], len(script) - 1)]
                state["i"] += 1
                if action == "close":
                    break
                if action == "truncate":
                    data = (json.dumps({"ok": True}) + "\n").encode()
                    writer.write(data[:4])
                    break
                writer.write((json.dumps(action) + "\n").encode())
                await writer.drain()
            writer.close()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        return server, (host, port), state

    def test_honors_retry_after_then_succeeds(self):
        async def scenario():
            overloaded = {"ok": False, "error": {
                "code": "overloaded", "retry_after_ms": 10,
                "queue_depth": 3}}
            server, addr, state = await self._fake_server(
                [overloaded, overloaded, {"ok": True, "answer": 42}])
            async with ResilientClient(tcp=addr, seed=5) as client:
                response = await client.request({"v": 1, "id": "x"})
            server.close()
            await server.wait_closed()
            return response, client.stats, state

        response, stats, state = _run(scenario(), timeout=60)
        assert response == {"ok": True, "answer": 42}
        assert stats["retries"] == 2
        assert stats["overloaded"] == 2
        assert len(state["requests"]) == 3

    def test_reconnects_after_truncated_frame(self):
        async def scenario():
            server, addr, state = await self._fake_server(
                ["truncate", "close", {"ok": True}])
            async with ResilientClient(tcp=addr, seed=5) as client:
                response = await client.request({"v": 1})
            server.close()
            await server.wait_closed()
            return response, client.stats

        response, stats = _run(scenario(), timeout=60)
        assert response == {"ok": True}
        assert stats["conn_failures"] == 2
        assert stats["reconnects"] == 2

    def test_shutting_down_triggers_reconnect(self):
        async def scenario():
            server, addr, state = await self._fake_server(
                [{"ok": False, "error": {"code": "shutting-down"}},
                 {"ok": True, "survivor": True}])
            async with ResilientClient(tcp=addr, seed=5) as client:
                response = await client.request({"v": 1})
            server.close()
            await server.wait_closed()
            return response, client.stats

        response, stats = _run(scenario(), timeout=60)
        assert response == {"ok": True, "survivor": True}
        assert stats["shutting_down"] == 1
        assert stats["reconnects"] == 1

    def test_non_retryable_errors_return_immediately(self):
        async def scenario():
            envelope = {"ok": False, "error": {"code": "invalid-spec",
                                               "message": "no"}}
            server, addr, state = await self._fake_server([envelope])
            async with ResilientClient(tcp=addr, seed=5) as client:
                response = await client.request({"v": 1})
            server.close()
            await server.wait_closed()
            return response, client.stats, state

        response, stats, state = _run(scenario(), timeout=60)
        assert response["error"]["code"] == "invalid-spec"
        assert stats["retries"] == 0
        assert len(state["requests"]) == 1

    def test_retries_exhausted_raises_with_last_envelope(self):
        async def scenario():
            overloaded = {"ok": False, "error": {"code": "overloaded",
                                                 "retry_after_ms": 1}}
            server, addr, state = await self._fake_server([overloaded])
            policy = RetryPolicy(max_attempts=3, seed=5,
                                 base_delay_s=0.001, max_delay_s=0.01)
            client = ResilientClient(tcp=addr, policy=policy)
            try:
                with pytest.raises(RetriesExhausted) as excinfo:
                    await client.request({"v": 1})
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
            return excinfo.value, client.stats

        error, stats = _run(scenario(), timeout=60)
        assert error.last_response["error"]["code"] == "overloaded"
        assert stats["attempts"] == 3


# ----------------------------------------------------------------------
# chaos: everything armed at once against a real server
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestChaos:
    def test_server_survives_all_fault_sites(self, index_dir,
                                             direct_allocation):
        faults.configure(
            "registry-load:0.08,slow-selection:0.25:40,"
            "stall-write:0.2:20,disconnect:0.15", seed=1234)
        server = _server(index_dir, max_queue_depth=64)

        async def client(host, port, client_id):
            results = []
            async with ResilientClient(
                    tcp=(host, port), seed=client_id,
                    request_timeout_s=60) as rc:
                for round_no in range(4):
                    request = make_request(
                        SPEC, request_id=f"{client_id}-{round_no}")
                    try:
                        results.append(await rc.request(request))
                    except RetriesExhausted as error:
                        results.append(
                            {"exhausted": True,
                             "last": error.last_response})
            return results, rc.stats

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            outcomes = await asyncio.gather(
                *[client(host, port, i) for i in range(10)])
            stats = server.stats_payload()
            await server.shutdown(drain=True)
            return outcomes, stats

        outcomes, stats = _run(scenario())
        answered = 0
        ok_count = 0
        for results, client_stats in outcomes:
            assert len(results) == 4, "every request resolves (no hangs)"
            for result in results:
                answered += 1
                if result.get("ok"):
                    ok_count += 1
                    # correctness survives the chaos: a served
                    # allocation is the direct-run allocation
                    assert result["allocation"] == direct_allocation
                elif result.get("exhausted"):
                    continue
                else:
                    error = result["error"]
                    assert isinstance(error, dict) and "code" in error
        assert answered == 40
        assert ok_count >= 20, "most requests should eventually succeed"
        fault_stats = stats["faults"]
        assert sum(site["fired"] for site in fault_stats.values()) > 0

    def test_disarmed_allocations_bit_identical(self, index_dir,
                                                direct_allocation):
        # same server path with the injector disarmed: exact equality
        # with the direct `repro run` result (the serving invariant)
        assert faults.active() is None
        server = _server(index_dir)
        response = server.dispatch_line(json.dumps(make_request(SPEC)))
        assert response["ok"] is True
        assert response["allocation"] == direct_allocation

    def test_stats_report_armed_faults(self, index_dir):
        server = _server(index_dir)
        assert "faults" not in server.stats_payload()
        faults.configure("disconnect:0.5", seed=2)
        payload = server.stats_payload()
        assert payload["faults"]["disconnect"]["rate"] == 0.5
