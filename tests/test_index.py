"""Tests for the persistent RR-set index store and the serving layer."""

import json

import numpy as np
import pytest

from repro.allocation import Allocation
from repro.core import seqgrd_nm, supgrd
from repro.exceptions import AlgorithmError, IndexStoreError
from repro.graphs import generators, weighting
from repro.index import (
    AllocationService,
    FrozenRRIndex,
    ParallelRRSampler,
    ShardSpec,
    build_index,
    expected_index_fingerprint,
    graph_fingerprint,
    index_fingerprint,
    index_paths,
    model_fingerprint,
)
from repro.rrsets.coverage import RRCollection, node_selection
from repro.rrsets.imm import IMMOptions, imm, marginal_imm
from repro.utility.configs import two_item_config

OPTIONS = IMMOptions(max_rr_sets=2000)


@pytest.fixture(scope="module")
def graph():
    g = generators.erdos_renyi(120, avg_degree=4.0, rng=3, directed=True,
                               name="er120")
    return weighting.weighted_cascade(g)


@pytest.fixture(scope="module")
def model():
    return two_item_config("C1")


@pytest.fixture(scope="module")
def bounded_model():
    return two_item_config("C6", bounded_noise=True)


def small_collection(num_nodes=10, rng_seed=5, num_sets=40, weighted=False):
    rng = np.random.default_rng(rng_seed)
    collection = RRCollection(num_nodes)
    for _ in range(num_sets):
        size = int(rng.integers(0, 5))
        nodes = rng.choice(num_nodes, size=size, replace=False)
        weight = float(rng.random()) if weighted else 1.0
        collection.add(nodes.astype(np.int64), weight)
    return collection


class TestFrozenRRIndex:
    def test_freeze_preserves_counts_and_weights(self):
        collection = small_collection(weighted=True)
        frozen = FrozenRRIndex.from_collection(collection)
        assert frozen.num_sets == collection.num_sets
        assert frozen.num_nodes == collection.num_nodes
        assert frozen.total_weight == pytest.approx(collection.total_weight)
        np.testing.assert_array_equal(frozen.weights(),
                                      collection.weights())

    def test_selection_matches_collection_bitwise(self):
        collection = small_collection(num_nodes=30, num_sets=200,
                                      weighted=True)
        frozen = FrozenRRIndex.from_collection(collection)
        for k in (1, 3, 7, 30):
            a = node_selection(collection, k)
            b = node_selection(frozen, k)
            assert a.seeds == b.seeds
            assert a.covered_weight == b.covered_weight
            assert a.prefix_weights == b.prefix_weights

    def test_covered_weight_matches_collection(self):
        collection = small_collection(num_nodes=20, num_sets=100)
        frozen = FrozenRRIndex.from_collection(collection)
        seeds = [0, 3, 7]
        assert frozen.covered_weight(seeds) == pytest.approx(
            collection.covered_weight(seeds))
        assert frozen.coverage_fraction(seeds) == pytest.approx(
            collection.coverage_fraction(seeds))

    def test_save_load_round_trip_is_bit_identical(self, tmp_path):
        collection = small_collection(weighted=True)
        frozen = FrozenRRIndex.from_collection(
            collection, meta={"fingerprint": "abc", "sampler": "standard"})
        frozen.save(tmp_path / "idx")
        loaded = FrozenRRIndex.load(tmp_path / "idx",
                                    expected_fingerprint="abc")
        np.testing.assert_array_equal(loaded._offsets, frozen._offsets)
        np.testing.assert_array_equal(loaded._nodes, frozen._nodes)
        np.testing.assert_array_equal(loaded._weights, frozen._weights)
        np.testing.assert_array_equal(loaded._inv_offsets,
                                      frozen._inv_offsets)
        np.testing.assert_array_equal(loaded._inv_sets, frozen._inv_sets)
        assert loaded.meta["sampler"] == "standard"

    def test_load_rejects_fingerprint_mismatch(self, tmp_path):
        frozen = FrozenRRIndex.from_collection(
            small_collection(), meta={"fingerprint": "abc"})
        frozen.save(tmp_path / "idx")
        with pytest.raises(IndexStoreError, match="stale"):
            FrozenRRIndex.load(tmp_path / "idx",
                               expected_fingerprint="different")

    def test_load_rejects_missing_files(self, tmp_path):
        with pytest.raises(IndexStoreError, match="no index"):
            FrozenRRIndex.load(tmp_path / "nope")

    def test_load_rejects_unknown_format_version(self, tmp_path):
        frozen = FrozenRRIndex.from_collection(small_collection())
        _, manifest = frozen.save(tmp_path / "idx")
        data = json.loads(manifest.read_text())
        data["format_version"] = 999
        manifest.write_text(json.dumps(data))
        with pytest.raises(IndexStoreError, match="format version"):
            FrozenRRIndex.load(tmp_path / "idx")

    def test_index_paths_accept_all_spellings(self, tmp_path):
        stem = tmp_path / "my-index"
        for spelling in (stem, stem.with_name("my-index.npz"),
                         stem.with_name("my-index.manifest.json")):
            npz, manifest = index_paths(spelling)
            assert npz.name == "my-index.npz"
            assert manifest.name == "my-index.manifest.json"

    def test_to_collection_round_trip(self):
        collection = small_collection(weighted=True)
        thawed = FrozenRRIndex.from_collection(collection).to_collection()
        assert thawed.num_sets == collection.num_sets
        for k in (2, 5):
            assert node_selection(thawed, k).seeds == \
                node_selection(collection, k).seeds


class TestFingerprints:
    def test_graph_fingerprint_changes_with_edges(self, graph):
        other = generators.erdos_renyi(120, avg_degree=4.0, rng=4,
                                       directed=True)
        other = weighting.weighted_cascade(other)
        assert graph_fingerprint(graph) != graph_fingerprint(other)
        assert graph_fingerprint(graph) == graph_fingerprint(graph)

    def test_model_fingerprint_distinguishes_configs(self, model):
        assert model_fingerprint(model) == model_fingerprint(
            two_item_config("C1"))
        assert model_fingerprint(model) != model_fingerprint(
            two_item_config("C2"))

    def test_index_fingerprint_covers_every_component(self, graph, model):
        base = dict(sampler="marginal", engine="vectorized", seed=1,
                    extra={"k": 3})
        reference = index_fingerprint(graph, model, **base)
        assert index_fingerprint(graph, model, **base) == reference
        assert index_fingerprint(
            graph, model, **dict(base, sampler="weighted")) != reference
        assert index_fingerprint(
            graph, model, **dict(base, engine="python")) != reference
        assert index_fingerprint(
            graph, model, **dict(base, seed=2)) != reference
        assert index_fingerprint(
            graph, model, **dict(base, extra={"k": 4})) != reference
        assert index_fingerprint(graph, None, **base) != reference


class TestParallelDeterminism:
    def test_sharded_sampler_worker_count_invariant(self, graph):
        spec = ShardSpec(kind="standard", graph=graph)
        with ParallelRRSampler(spec, seed=42, workers=1,
                               shard_sets=64) as one:
            serial = one.generate(300)
        with ParallelRRSampler(spec, seed=42, workers=4,
                               shard_sets=64) as four:
            parallel = four.generate(300)
        assert len(serial) == len(parallel) == 300
        for (nodes_a, w_a), (nodes_b, w_b) in zip(serial, parallel):
            np.testing.assert_array_equal(nodes_a, nodes_b)
            assert w_a == w_b

    def test_imm_workers_1_vs_4_identical_selection(self, graph):
        one = imm(graph, 4, options=OPTIONS, rng=9, workers=1)
        four = imm(graph, 4, options=OPTIONS, rng=9, workers=4)
        assert one.seeds == four.seeds
        assert one.num_rr_sets == four.num_rr_sets
        assert one.estimated_value == four.estimated_value

    def test_marginal_imm_workers_identical(self, graph):
        fixed = {0, 1, 2}
        one = marginal_imm(graph, 3, fixed, options=OPTIONS, rng=9,
                           workers=1)
        four = marginal_imm(graph, 3, fixed, options=OPTIONS, rng=9,
                            workers=4)
        assert one.seeds == four.seeds

    def test_build_index_workers_identical_contents(self, graph, model):
        kwargs = dict(sampler="marginal", budgets={"i": 3, "j": 2},
                      options=OPTIONS, seed=17)
        one = build_index(graph, model, workers=1, **kwargs)
        four = build_index(graph, model, workers=4, **kwargs)
        np.testing.assert_array_equal(one._offsets, four._offsets)
        np.testing.assert_array_equal(one._nodes, four._nodes)
        np.testing.assert_array_equal(one._weights, four._weights)
        assert one.fingerprint == four.fingerprint

    def test_supgrd_workers_identical(self, graph, bounded_model):
        fixed = Allocation({"j": [0, 1]})
        kwargs = dict(superior_item="i", enforce_preconditions=False,
                      options=OPTIONS, rng=23)
        one = supgrd(graph, bounded_model, 3, fixed, workers=1, **kwargs)
        four = supgrd(graph, bounded_model, 3, fixed, workers=4, **kwargs)
        assert one.allocation.as_dict() == four.allocation.as_dict()


class TestBuildAndServe:
    def test_seqgrd_index_reproduces_direct_run(self, graph, model):
        budgets = {"i": 3, "j": 2}
        direct = seqgrd_nm(graph, model, budgets, options=OPTIONS, rng=7,
                           workers=1)
        index = build_index(graph, model, sampler="marginal",
                            budgets=budgets, options=OPTIONS, seed=7,
                            workers=1)
        served = seqgrd_nm(graph, model, budgets, index=index, rng=7)
        assert served.allocation.as_dict() == direct.allocation.as_dict()
        assert served.details["served_from_index"] is True

    def test_supgrd_index_reproduces_direct_run(self, graph, bounded_model):
        fixed = Allocation({"j": [0, 5]})
        direct = supgrd(graph, bounded_model, 3, fixed, superior_item="i",
                        enforce_preconditions=False, options=OPTIONS,
                        rng=13, workers=1)
        index = build_index(graph, bounded_model, sampler="weighted",
                            budgets={"i": 3}, fixed_allocation=fixed,
                            superior_item="i", options=OPTIONS, seed=13,
                            workers=1)
        served = supgrd(graph, bounded_model, 3, fixed, superior_item="i",
                        enforce_preconditions=False, index=index, rng=13)
        assert served.allocation.as_dict() == direct.allocation.as_dict()
        # smaller budgets are greedy prefixes of the same index
        smaller = supgrd(graph, bounded_model, 2, fixed, superior_item="i",
                         enforce_preconditions=False, index=index, rng=13)
        full = direct.allocation.seeds_for("i")
        assert smaller.allocation.seeds_for("i") == full[:2]

    def test_wrong_kind_index_is_rejected(self, graph, model,
                                          bounded_model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 2, "j": 2}, options=OPTIONS,
                            seed=3)
        with pytest.raises(AlgorithmError, match="weighted"):
            supgrd(graph, bounded_model, 2, Allocation({"j": [0]}),
                   superior_item="i", enforce_preconditions=False,
                   index=index)

    def test_wrong_graph_size_is_rejected(self, graph, model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 2, "j": 2}, options=OPTIONS,
                            seed=3)
        small = generators.line_graph(4)
        with pytest.raises(AlgorithmError, match="rebuild"):
            seqgrd_nm(small, model, {"i": 1, "j": 1}, index=index)

    def test_expected_fingerprint_detects_graph_change(self, graph, model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 2, "j": 2}, options=OPTIONS,
                            seed=3)
        assert expected_index_fingerprint(graph, model, index.meta) \
            == index.fingerprint
        other = weighting.weighted_cascade(
            generators.erdos_renyi(120, avg_degree=4.0, rng=99,
                                   directed=True))
        assert expected_index_fingerprint(other, model, index.meta) \
            != index.fingerprint


class TestAllocationService:
    @pytest.fixture(scope="class")
    def service(self, graph, model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 3, "j": 2}, options=OPTIONS,
                            seed=7)
        return AllocationService(index, graph=graph, model=model,
                                 cache_size=4)

    def test_cache_miss_then_hit(self, graph, model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 2, "j": 2}, options=OPTIONS,
                            seed=5)
        service = AllocationService(index, graph=graph, model=model)
        first = service.query("SeqGRD-NM", budgets={"i": 2, "j": 1})
        second = service.query("SeqGRD-NM", budgets={"i": 2, "j": 1})
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["allocation"] == second["allocation"]
        stats = service.cache_stats
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cache_eviction_respects_capacity(self, service):
        for k in range(1, 7):
            service.query("select", k=k)
        assert service.cache_stats["size"] <= 4

    def test_query_cache_entry_cap_and_eviction_counter(self, graph, model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 2, "j": 2}, options=OPTIONS,
                            seed=5)
        service = AllocationService(index, graph=graph, model=model,
                                    cache_size=3)
        for k in range(1, 9):
            service.query("select", k=k)
        stats = service.cache_stats
        assert stats["capacity"] == 3
        assert stats["size"] == 3
        assert stats["evictions"] == 5
        # the three newest keys survive; the oldest were evicted
        cached = service.query("select", k=8)
        assert cached["cached"] is True
        evicted = service.query("select", k=1)
        assert evicted["cached"] is False

    def test_spec_cache_entry_cap_and_eviction_counter(self, graph, model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 2, "j": 2}, options=OPTIONS,
                            seed=5)
        service = AllocationService(index, graph=graph, model=model,
                                    cache_size=2)
        for n in range(5):
            service.store_spec_response(f"fp-{n}", {"payload": n})
        spec_stats = service.cache_stats["spec_cache"]
        assert spec_stats["capacity"] == 2
        assert spec_stats["size"] == 2
        assert spec_stats["evictions"] == 3
        # LRU order: the two newest fingerprints survive
        assert service.cached_spec_response("fp-4") == {"payload": 4}
        assert service.cached_spec_response("fp-0") is None
        stats = service.cache_stats["spec_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_zero_capacity_disables_both_caches(self, graph, model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 2, "j": 2}, options=OPTIONS,
                            seed=5)
        service = AllocationService(index, graph=graph, model=model,
                                    cache_size=0)
        service.store_spec_response("fp", {"payload": 1})
        assert service.cached_spec_response("fp") is None
        first = service.query("SeqGRD-NM", budgets={"i": 1, "j": 1})
        second = service.query("SeqGRD-NM", budgets={"i": 1, "j": 1})
        assert first["cached"] is False and second["cached"] is False
        assert first["allocation"] == second["allocation"]
        assert service.cache_stats["size"] == 0
        assert service.cache_stats["spec_cache"]["size"] == 0

    def test_select_budgets_are_greedy_prefixes(self, service):
        big = service.query("select", k=6)["allocation"]["seeds"]
        small = service.query("select", k=2)["allocation"]["seeds"]
        assert small == big[:2]

    def test_batch_query(self, service):
        responses = service.query_batch(
            [{"algorithm": "select", "k": k} for k in (1, 2, 3)])
        assert [len(r["allocation"]["seeds"]) for r in responses] == [1, 2, 3]

    def test_handle_request_dialect(self, service):
        assert service.handle_request({"op": "ping"})["pong"] is True
        stats = service.handle_request({"id": "x", "op": "stats"})
        assert stats["id"] == "x" and "stats" in stats
        bad = service.handle_request({"op": "query", "algorithm": "nope"})
        assert bad["ok"] is False and "nope" in bad["error"]
        good = service.handle_request({"op": "query", "algorithm": "select",
                                       "k": 2})
        assert good["ok"] is True and len(good["allocation"]["seeds"]) == 2

    def test_missing_instance_is_reported(self, graph, model):
        index = build_index(graph, model, sampler="marginal",
                            budgets={"i": 2, "j": 2}, options=OPTIONS,
                            seed=5)
        service = AllocationService(index)
        with pytest.raises(AlgorithmError, match="graph and utility model"):
            service.query("SeqGRD-NM", budgets={"i": 1, "j": 1})


class TestCapHitMetadata:
    def test_cap_hit_warns_and_is_recorded(self, graph):
        tight = IMMOptions(max_rr_sets=300, min_rr_sets=16)
        with pytest.warns(RuntimeWarning, match="max_rr_sets"):
            result = imm(graph, 4, options=tight, rng=1)
        assert result.cap_hit is True
        assert result.num_rr_sets <= 300

    def test_no_warning_when_cap_not_hit(self, two_node_graph):
        import warnings as warnings_module

        options = IMMOptions(max_rr_sets=500_000, min_rr_sets=16)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", RuntimeWarning)
            result = imm(two_node_graph, 1, options=options, rng=1)
        assert result.cap_hit is False


class TestRRCollectionExtend:
    def test_extend_matches_repeated_add(self):
        rng = np.random.default_rng(2)
        pairs = []
        for _ in range(60):
            size = int(rng.integers(0, 6))
            nodes = rng.choice(25, size=size, replace=False).astype(np.int64)
            pairs.append((nodes, float(rng.random())))
        one = RRCollection(25)
        for nodes, weight in pairs:
            one.add(nodes, weight)
        bulk = RRCollection(25)
        bulk.extend(pairs)
        assert bulk.num_sets == one.num_sets
        assert bulk.total_weight == pytest.approx(one.total_weight)
        for bulk_arr, one_arr in zip(bulk._inverted(), one._inverted()):
            np.testing.assert_array_equal(bulk_arr, one_arr)
        for k in (1, 5, 10):
            assert node_selection(bulk, k).seeds == \
                node_selection(one, k).seeds

    def test_extend_empty_iterable(self):
        collection = RRCollection(5)
        collection.extend([])
        assert collection.num_sets == 0

    def test_extend_keeps_zero_weight_sets_out_of_inverted(self):
        collection = RRCollection(5)
        collection.extend([(np.array([1, 2]), 0.0), (np.array([2]), 1.0)])
        assert collection.num_sets == 2
        assert list(collection.sets_covered_by(2)) == [1]
        assert list(collection.sets_covered_by(1)) == []
