"""Tests for the UIC diffusion simulator, including the paper's Theorem 1
counterexamples (non-monotonicity / non-submodularity / non-supermodularity
of welfare) which exercise the exact adoption semantics."""

import numpy as np
import pytest

from repro.allocation import Allocation
from repro.diffusion.uic import DiffusionResult, best_bundle, simulate_uic
from repro.diffusion.worlds import EdgeWorld
from repro.graphs import generators
from repro.graphs.graph import DirectedGraph
from repro.utility.configs import (
    blocking_config,
    single_item_config,
    theorem1_config,
    two_item_config,
)
from repro.utility.items import ItemCatalog
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.valuation import TableValuation


class TestBestBundle:
    def test_picks_highest_utility(self):
        utilities = np.array([0.0, 5.0, 3.0, 2.0])
        assert best_bundle(0b11, 0, utilities) == 0b01

    def test_respects_progressive_constraint(self):
        # the node already adopted item 1 (mask 0b10); even though item 0
        # alone is better, only supersets of {1} are allowed
        utilities = np.array([0.0, 5.0, 3.0, 2.0])
        assert best_bundle(0b11, 0b10, utilities) == 0b10

    def test_extends_when_superset_is_better(self):
        utilities = np.array([0.0, 1.0, 3.0, 6.0])
        assert best_bundle(0b11, 0b01, utilities) == 0b11

    def test_negative_candidates_rejected(self):
        utilities = np.array([0.0, -1.0, -2.0, -3.0])
        assert best_bundle(0b11, 0, utilities) == 0

    def test_only_desired_items_considered(self):
        utilities = np.array([0.0, 1.0, 100.0, 200.0])
        # item 1 not in the desire set
        assert best_bundle(0b01, 0, utilities) == 0b01

    def test_tie_breaks_towards_smaller_bundle(self):
        utilities = np.array([0.0, 4.0, 4.0, 4.0])
        assert best_bundle(0b11, 0, utilities) == 0b01

    def test_keeps_adoption_when_no_improvement(self):
        utilities = np.array([0.0, 2.0, 2.0, 1.0])
        assert best_bundle(0b11, 0b01, utilities) == 0b01


class TestSingleItemReducesToIC:
    def test_welfare_equals_spread_on_deterministic_graph(self, line4):
        model = single_item_config()
        allocation = Allocation({"item": [0]})
        result = simulate_uic(line4, model, allocation, rng=1)
        assert result.welfare == pytest.approx(4.0)
        assert result.num_adopters == 4
        assert result.adoption_counts["item"] == 4

    def test_no_seed_no_adoption(self, line4):
        model = single_item_config()
        result = simulate_uic(line4, model, Allocation.empty(), rng=1)
        assert result.welfare == 0.0
        assert result.num_adopters == 0

    def test_star_graph_spread(self, star10):
        model = single_item_config()
        result = simulate_uic(star10, model, Allocation({"item": [0]}), rng=1)
        assert result.num_adopters == 11

    def test_leaf_seed_does_not_spread_backwards(self, star10):
        model = single_item_config()
        result = simulate_uic(star10, model, Allocation({"item": [3]}), rng=1)
        assert result.num_adopters == 1


class TestTheorem1Counterexamples:
    """The two-node network u -> v (probability 1) with the Figure 1(a)
    utilities, following the proof of Theorem 1 step by step."""

    @pytest.fixture
    def graph(self):
        return DirectedGraph.from_edges(2, [(0, 1, 1.0)])

    @pytest.fixture
    def model(self):
        return theorem1_config()

    def _welfare(self, graph, model, allocation):
        return simulate_uic(graph, model, allocation, rng=1).welfare

    def test_monotonicity_violated(self, graph, model):
        s1 = Allocation({"i1": [0]})
        s2 = Allocation({"i1": [0], "i2": [1]})
        rho1 = self._welfare(graph, model, s1)
        rho2 = self._welfare(graph, model, s2)
        assert rho1 == pytest.approx(8.0)   # both u and v adopt i1
        assert rho2 == pytest.approx(7.0)   # u adopts i1, v adopts i2
        assert rho2 < rho1                  # welfare is not monotone

    def test_submodularity_violated(self, graph, model):
        s1 = Allocation({"i2": [1]})
        s2 = Allocation({"i2": [1], "i3": [1]})
        extra = Allocation({"i1": [0]})
        gain_small = (self._welfare(graph, model, s1.union(extra))
                      - self._welfare(graph, model, s1))
        gain_big = (self._welfare(graph, model, s2.union(extra))
                    - self._welfare(graph, model, s2))
        assert gain_small == pytest.approx(4.0)
        assert gain_big == pytest.approx(5.0)
        assert gain_big > gain_small        # welfare is not submodular

    def test_supermodularity_violated(self, graph, model):
        s1 = Allocation.empty()
        s2 = Allocation({"i2": [1]})
        extra = Allocation({"i1": [0]})
        gain_small = (self._welfare(graph, model, s1.union(extra))
                      - self._welfare(graph, model, s1))
        gain_big = (self._welfare(graph, model, s2.union(extra))
                    - self._welfare(graph, model, s2))
        assert gain_small == pytest.approx(8.0)
        assert gain_big == pytest.approx(4.0)
        assert gain_big < gain_small        # welfare is not supermodular


class TestCompetitiveAdoption:
    def test_pure_competition_no_double_adoption(self):
        graph = generators.complete_graph(6, prob=1.0)
        model = two_item_config("C1", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [1]})
        result = simulate_uic(graph, model, allocation, rng=1)
        catalog = model.catalog
        for mask in result.adoption_masks:
            assert catalog.bundle_size(int(mask)) <= 1

    def test_soft_competition_allows_bundles(self):
        graph = DirectedGraph.from_edges(2, [(0, 1, 1.0)])
        model = two_item_config("C3", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [0]})
        result = simulate_uic(graph, model, allocation, rng=1)
        # the seed desires both; the C3 bundle {i,j} has utility 1.7 which
        # beats both singletons (1.0, 0.9), so it is adopted
        assert result.adoption_masks[0] == model.catalog.mask_of(["i", "j"])

    def test_item_blocking(self):
        # u -> v -> w; v seeded with the inferior item adopts it at t=1 and
        # blocks the superior item only if the bundle is worse than staying
        graph = generators.line_graph(3)
        model = two_item_config("C2", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [1]})
        result = simulate_uic(graph, model, allocation, rng=1)
        catalog = model.catalog
        # v adopted j (seeded at t=1) and cannot add i (bundle negative)
        assert result.adoption_masks[1] == catalog.singleton_mask("j")
        # w hears about j from v first (t=2), i arrives at t=3 but w
        # already adopted j
        assert result.adoption_masks[2] == catalog.singleton_mask("j")

    def test_higher_utility_item_wins_simultaneous_arrival(self):
        graph = DirectedGraph.from_edges(2, [(0, 1, 1.0)])
        model = two_item_config("C2", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [0]})
        result = simulate_uic(graph, model, allocation, rng=1)
        # both items reach v at the same time step; it picks the better one
        assert result.adoption_masks[1] == model.catalog.singleton_mask("i")

    def test_adoption_counts_and_welfare_consistent(self):
        graph = generators.line_graph(5)
        model = blocking_config()
        allocation = Allocation({"i": [0], "j": [2]})
        result = simulate_uic(graph, model, allocation, rng=1)
        manual = sum(model.deterministic_utility(int(mask))
                     for mask in result.adoption_masks)
        assert result.welfare == pytest.approx(manual)
        assert result.adoption_counts["i"] >= 1


class TestFixedWorlds:
    def test_fixed_edge_world_is_deterministic(self):
        graph = generators.erdos_renyi(60, 4.0, rng=3)
        model = two_item_config("C1", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [1]})
        world = EdgeWorld([graph.out_neighbors(v)[0] for v in range(60)])
        r1 = simulate_uic(graph, model, allocation, edge_world=world,
                          noise_world=np.zeros(2))
        r2 = simulate_uic(graph, model, allocation, edge_world=world,
                          noise_world=np.zeros(2))
        assert np.array_equal(r1.adoption_masks, r2.adoption_masks)
        assert r1.welfare == r2.welfare

    def test_noise_world_changes_adoption(self):
        graph = DirectedGraph.from_edges(1, [])
        catalog = ItemCatalog(["a"])
        model = UtilityModel(TableValuation(catalog, {"a": 1.0}),
                             {"a": 0.5}, ZeroNoise())
        allocation = Allocation({"a": [0]})
        adopt = simulate_uic(graph, model, allocation,
                             noise_world=np.array([0.0]))
        assert adopt.num_adopters == 1
        reject = simulate_uic(graph, model, allocation,
                              noise_world=np.array([-1.0]))
        assert reject.num_adopters == 0

    def test_max_rounds_caps_diffusion(self):
        graph = generators.line_graph(10)
        model = single_item_config()
        result = simulate_uic(graph, model, Allocation({"item": [0]}),
                              rng=1, max_rounds=2)
        assert result.rounds <= 2
        assert result.num_adopters == 3  # seed + two rounds

    def test_result_helper(self):
        graph = generators.line_graph(2)
        model = single_item_config()
        result = simulate_uic(graph, model, Allocation({"item": [0]}), rng=1)
        assert result.adopted_bundle(0, model) == ("item",)
        assert isinstance(result, DiffusionResult)
