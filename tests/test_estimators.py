"""Tests for the Monte-Carlo welfare/spread estimators, including the
Lemma 2 sandwich ``u_min·σ(S) ≤ ρ(S) ≤ u_max·σ(S)``."""

import numpy as np
import pytest

from repro.allocation import Allocation
from repro.diffusion.estimators import (
    estimate_adoption_counts,
    estimate_marginal_spread,
    estimate_marginal_welfare,
    estimate_spread,
    estimate_welfare,
    exact_welfare_enumeration,
)
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.utility.configs import single_item_config, two_item_config
from repro.utility.items import ItemCatalog
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.valuation import TableValuation


class TestEstimateWelfare:
    def test_deterministic_graph_exact(self, line4):
        model = single_item_config()
        estimate = estimate_welfare(line4, model, Allocation({"item": [0]}),
                                    n_samples=20, rng=1)
        assert estimate.mean == pytest.approx(4.0)
        assert estimate.std_error == 0.0
        assert estimate.mean_adopters == pytest.approx(4.0)
        assert estimate.n_samples == 20

    def test_empty_allocation(self, line4):
        model = single_item_config()
        estimate = estimate_welfare(line4, model, Allocation.empty(),
                                    n_samples=5, rng=1)
        assert estimate.mean == 0.0

    def test_adoption_counts_present(self, line4, c1_model_no_noise):
        estimate = estimate_welfare(line4, c1_model_no_noise,
                                    Allocation({"i": [0]}), n_samples=10,
                                    rng=1)
        assert estimate.adoption_counts["i"] == pytest.approx(4.0)
        assert estimate.adoption_counts["j"] == 0.0

    def test_confidence_interval(self, small_er_graph, c1_model):
        estimate = estimate_welfare(small_er_graph, c1_model,
                                    Allocation({"i": [0, 1, 2]}),
                                    n_samples=100, rng=2)
        low, high = estimate.confidence_interval()
        assert low <= estimate.mean <= high

    def test_matches_exact_enumeration_on_tiny_graph(self):
        graph = DirectedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.5),
                                             (0, 2, 0.25)])
        model = two_item_config("C1", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [1]})
        exact = exact_welfare_enumeration(graph, model, allocation)
        estimate = estimate_welfare(graph, model, allocation,
                                    n_samples=6000, rng=3)
        assert estimate.mean == pytest.approx(exact, rel=0.1)


class TestExactEnumeration:
    def test_single_item_line(self):
        graph = DirectedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)])
        model = single_item_config()
        # expected spread from node 0: 1 + 0.5 + 0.25 = 1.75
        exact = exact_welfare_enumeration(graph, model,
                                          Allocation({"item": [0]}))
        assert exact == pytest.approx(1.75)

    def test_rejects_large_graphs(self):
        graph = generators.erdos_renyi(50, 4.0, rng=1)
        model = single_item_config()
        with pytest.raises(ValueError):
            exact_welfare_enumeration(graph, model, Allocation({"item": [0]}))


class TestMarginalWelfare:
    def test_positive_marginal(self, line4):
        model = single_item_config()
        marginal = estimate_marginal_welfare(
            line4, model, Allocation.empty(), Allocation({"item": [0]}),
            n_samples=10, rng=1)
        assert marginal == pytest.approx(4.0)

    def test_zero_marginal_for_duplicate(self, line4):
        model = single_item_config()
        base = Allocation({"item": [0]})
        marginal = estimate_marginal_welfare(line4, model, base, base,
                                             n_samples=10, rng=1)
        assert marginal == pytest.approx(0.0)

    def test_negative_marginal_under_blocking(self):
        """Adding an inferior item next to a superior one can hurt welfare
        (the phenomenon motivating SeqGRD's marginal check)."""
        graph = generators.line_graph(4)
        model = two_item_config("C2", noise_sigma=0.0)
        base = Allocation({"i": [0]})
        extra = Allocation({"j": [1]})
        marginal = estimate_marginal_welfare(graph, model, base, extra,
                                             n_samples=10, rng=1)
        # without j: 4 nodes adopt i -> welfare 4.0
        # with j at node 1: nodes 1..3 adopt j instead -> 1.0 + 3*0.1 = 1.3
        assert marginal == pytest.approx(1.3 - 4.0)

    def test_common_random_numbers_are_deterministic(self, small_er_graph):
        model = two_item_config("C1", noise_sigma=0.0)
        base = Allocation({"i": [0, 1]})
        extra = Allocation({"j": [2]})
        first = estimate_marginal_welfare(small_er_graph, model, base, extra,
                                          n_samples=30, rng=17)
        second = estimate_marginal_welfare(small_er_graph, model, base, extra,
                                           n_samples=30, rng=17)
        assert first == pytest.approx(second)


class TestSpreadEstimation:
    def test_line_graph_probability_half(self):
        graph = DirectedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)])
        spread = estimate_spread(graph, [0], n_samples=8000, rng=1)
        assert spread == pytest.approx(1.75, rel=0.05)

    def test_empty_seed_set(self, line4):
        assert estimate_spread(line4, [], n_samples=10, rng=1) == 0.0

    def test_marginal_spread(self, line4):
        marginal = estimate_marginal_spread(line4, [0], [2], n_samples=10,
                                            rng=1)
        assert marginal == pytest.approx(0.0)  # 2 already reached by 0
        marginal2 = estimate_marginal_spread(line4, [2], [0], n_samples=10,
                                             rng=1)
        assert marginal2 == pytest.approx(2.0)


class TestAdoptionCounts:
    def test_counts(self, line4, c1_model_no_noise):
        counts = estimate_adoption_counts(line4, c1_model_no_noise,
                                          Allocation({"i": [0], "j": [2]}),
                                          n_samples=10, rng=1)
        assert counts["i"] == pytest.approx(2.0)
        assert counts["j"] == pytest.approx(2.0)


class TestLemma2Sandwich:
    """u_min · σ(S) ≤ ρ(S) ≤ u_max · σ(S) (paper Lemma 2)."""

    @pytest.mark.parametrize("config", ["C1", "C2", "C3"])
    def test_sandwich_holds(self, config, small_er_graph):
        model = two_item_config(config, noise_sigma=0.0)
        allocation = Allocation({"i": [0, 5, 9], "j": [3, 7]})
        seeds = allocation.all_seeds()
        rho = estimate_welfare(small_er_graph, model, allocation,
                               n_samples=400, rng=11).mean
        sigma = estimate_spread(small_er_graph, seeds, n_samples=400, rng=11)
        u_min = model.u_min()
        u_max = model.u_max()
        tolerance = 0.1 * sigma  # Monte-Carlo slack
        assert u_min * sigma <= rho + tolerance
        assert rho <= u_max * sigma + tolerance
