"""Unit and property tests for seed allocations and budgets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import Allocation, validate_budgets
from repro.exceptions import AllocationError
from repro.utility.items import ItemCatalog


@pytest.fixture
def catalog():
    return ItemCatalog(["i", "j"])


class TestConstruction:
    def test_basic(self):
        alloc = Allocation({"i": [1, 2], "j": [3]})
        assert alloc.seeds_for("i") == (1, 2)
        assert alloc.seeds_for("j") == (3,)
        assert alloc.num_pairs() == 3
        assert not alloc.is_empty()

    def test_empty(self):
        alloc = Allocation.empty()
        assert alloc.is_empty()
        assert alloc.num_pairs() == 0
        assert alloc.items == ()
        assert len(alloc) == 0

    def test_empty_seed_lists_dropped(self):
        alloc = Allocation({"i": [], "j": [1]})
        assert alloc.items == ("j",)

    def test_duplicate_seed_rejected(self):
        with pytest.raises(AllocationError):
            Allocation({"i": [1, 1]})

    def test_from_pairs(self):
        alloc = Allocation.from_pairs([(1, "i"), (2, "i"), (3, "j")])
        assert alloc.seeds_for("i") == (1, 2)
        assert alloc.seeds_for("j") == (3,)

    def test_single(self):
        alloc = Allocation.single(5, "i")
        assert list(alloc.pairs()) == [(5, "i")]


class TestAccessors:
    def test_all_seeds_sorted_distinct(self):
        alloc = Allocation({"i": [5, 2], "j": [2, 9]})
        assert alloc.all_seeds() == (2, 5, 9)

    def test_pairs_iteration(self):
        alloc = Allocation({"i": [1], "j": [2]})
        assert set(alloc.pairs()) == {(1, "i"), (2, "j")}

    def test_seed_count(self):
        alloc = Allocation({"i": [1, 2, 3]})
        assert alloc.seed_count("i") == 3
        assert alloc.seed_count("j") == 0

    def test_contains(self):
        alloc = Allocation({"i": [1]})
        assert (1, "i") in alloc
        assert (2, "i") not in alloc
        assert "nonsense" not in alloc

    def test_equality_ignores_order(self):
        assert Allocation({"i": [1, 2]}) == Allocation({"i": [2, 1]})
        assert Allocation({"i": [1]}) != Allocation({"j": [1]})
        assert hash(Allocation({"i": [1, 2]})) == hash(Allocation({"i": [2, 1]}))

    def test_as_dict(self):
        alloc = Allocation({"i": [1, 2]})
        d = alloc.as_dict()
        assert d == {"i": (1, 2)}


class TestAlgebra:
    def test_union_disjoint(self):
        a = Allocation({"i": [1]})
        b = Allocation({"j": [2]})
        merged = a.union(b)
        assert merged.seeds_for("i") == (1,)
        assert merged.seeds_for("j") == (2,)

    def test_union_collapses_duplicates(self):
        a = Allocation({"i": [1, 2]})
        b = Allocation({"i": [2, 3]})
        assert a.union(b).seeds_for("i") == (1, 2, 3)

    def test_union_does_not_mutate(self):
        a = Allocation({"i": [1]})
        b = Allocation({"i": [2]})
        a.union(b)
        assert a.seeds_for("i") == (1,)

    def test_adding(self):
        alloc = Allocation({"i": [1]}).adding(2, "i").adding(3, "j")
        assert alloc.seeds_for("i") == (1, 2)
        assert alloc.seeds_for("j") == (3,)

    def test_restricted_to(self):
        alloc = Allocation({"i": [1], "j": [2]})
        assert alloc.restricted_to(["j"]).items == ("j",)
        assert alloc.restricted_to([]).is_empty()


class TestValidation:
    def test_validate_ok(self, catalog):
        Allocation({"i": [0, 1]}).validate(catalog, num_nodes=5,
                                           budgets={"i": 2})

    def test_validate_unknown_item(self, catalog):
        with pytest.raises(Exception):
            Allocation({"zzz": [0]}).validate(catalog, num_nodes=5)

    def test_validate_node_out_of_range(self, catalog):
        with pytest.raises(AllocationError):
            Allocation({"i": [10]}).validate(catalog, num_nodes=5)

    def test_validate_budget_violation(self, catalog):
        with pytest.raises(AllocationError):
            Allocation({"i": [0, 1, 2]}).validate(catalog, num_nodes=5,
                                                  budgets={"i": 2})

    def test_node_item_masks(self, catalog):
        alloc = Allocation({"i": [0, 2], "j": [2]})
        masks = alloc.node_item_masks(catalog, num_nodes=4)
        assert masks.tolist() == [0b01, 0, 0b11, 0]

    def test_node_item_masks_out_of_range(self, catalog):
        with pytest.raises(AllocationError):
            Allocation({"i": [7]}).node_item_masks(catalog, num_nodes=4)


class TestBudgets:
    def test_validate_budgets_ok(self, catalog):
        assert validate_budgets({"i": 3, "j": 0}, catalog) == {"i": 3, "j": 0}

    def test_negative_budget_rejected(self, catalog):
        with pytest.raises(AllocationError):
            validate_budgets({"i": -1}, catalog)

    def test_non_integer_budget_rejected(self, catalog):
        with pytest.raises(AllocationError):
            validate_budgets({"i": 2.5}, catalog)

    def test_unknown_item_rejected(self, catalog):
        with pytest.raises(Exception):
            validate_budgets({"zzz": 1}, catalog)


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
pairs_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50),
              st.sampled_from(["i", "j", "k"])),
    max_size=30)


@settings(max_examples=50, deadline=None)
@given(pairs=pairs_strategy)
def test_from_pairs_preserves_distinct_pairs(pairs):
    alloc = Allocation.from_pairs(dict.fromkeys(pairs))  # de-dup, keep order
    assert set(alloc.pairs()) == set(pairs)
    assert alloc.num_pairs() == len(set(pairs))


@settings(max_examples=50, deadline=None)
@given(pairs_a=pairs_strategy, pairs_b=pairs_strategy)
def test_union_is_set_union_of_pairs(pairs_a, pairs_b):
    a = Allocation.from_pairs(dict.fromkeys(pairs_a))
    b = Allocation.from_pairs(dict.fromkeys(pairs_b))
    merged = a.union(b)
    assert set(merged.pairs()) == set(pairs_a) | set(pairs_b)


@settings(max_examples=50, deadline=None)
@given(pairs=pairs_strategy)
def test_union_with_empty_is_identity(pairs):
    alloc = Allocation.from_pairs(dict.fromkeys(pairs))
    assert alloc.union(Allocation.empty()) == alloc
    assert Allocation.empty().union(alloc) == alloc
