"""Tests for the typed public API layer (:mod:`repro.api`).

Covers the spec dataclasses (round-trips, validation, budget parsing), the
centralized env-var resolution precedence, the algorithm registry
(capability flags, anti-drift against the CLI and the experiment harness),
spec fingerprints (golden stability file) and the bit-identical equivalence
between the legacy ``run_algorithm`` keyword path and the ``RunSpec`` path
for every registered algorithm.
"""

import json
from pathlib import Path

import pytest

from repro.api import (
    EngineConfig,
    RunSpec,
    WorkloadSpec,
    algorithm_entries,
    algorithm_names,
    experiment_algorithms,
    get_algorithm,
    parse_budgets,
    run as run_spec,
)
from repro.cli import build_parser
from repro.engine.config import ENGINE_ENV_VAR, SELECTION_ENV_VAR
from repro.exceptions import AlgorithmError, SpecError
from repro.experiments import ALGORITHMS, SMOKE, benchmark_network, run_algorithm
from repro.utility.configs import CONFIGURATIONS, two_item_config

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_fingerprints.json"


class TestParseBudgets:
    def test_json_object(self):
        assert parse_budgets('{"i": 10, "j": 5}') == {"i": 10, "j": 5}

    def test_item_count_pairs(self):
        assert parse_budgets("i=10, j=5") == {"i": 10, "j": 5}

    def test_mapping_passthrough(self):
        assert parse_budgets({"i": "3"}) == {"i": 3}

    def test_malformed_pair_names_the_pair(self):
        with pytest.raises(SpecError, match="malformed budget pair 'i:10'"):
            parse_budgets("i:10")

    def test_non_integer_count_names_the_item(self):
        with pytest.raises(SpecError, match="budget for item 'j'"):
            parse_budgets("i=1,j=lots")

    def test_bad_json_is_a_spec_error(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            parse_budgets('{"i": 10')

    def test_negative_budget_rejected(self):
        with pytest.raises(SpecError, match="must be >= 0"):
            parse_budgets("i=-1")

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            parse_budgets("")
        with pytest.raises(SpecError):
            parse_budgets({})


class TestSpecRoundTrips:
    def spec(self):
        return RunSpec(
            algorithm="SeqGRD-NM",
            workload=WorkloadSpec(network="nethept", scale=0.01,
                                  configuration="C1",
                                  budgets={"i": 3, "j": 1},
                                  fixed_allocation={"j": (4, 7)}),
            engine=EngineConfig(seed=11, samples=20, workers=2))

    def test_dict_round_trip(self):
        spec = self.spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self.spec()
        wire = json.loads(json.dumps(spec.to_dict()))
        assert RunSpec.from_dict(wire) == spec

    def test_unknown_field_rejected(self):
        data = self.spec().to_dict()
        data["workload"]["bogus"] = 1
        with pytest.raises(SpecError, match="bogus"):
            RunSpec.from_dict(data)

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(SpecError, match="extra"):
            RunSpec.from_dict({"algorithm": "SeqGRD", "extra": {}})

    def test_missing_algorithm_rejected(self):
        with pytest.raises(SpecError, match="algorithm"):
            RunSpec.from_dict({"workload": {}})

    def test_defaults_fill_missing_sections(self):
        spec = RunSpec.from_dict({"algorithm": "TCIM"})
        assert spec.workload == WorkloadSpec()
        assert spec.engine == EngineConfig()

    def test_specs_are_hashable_values(self):
        first = self.spec()
        again = RunSpec.from_dict(first.to_dict())
        assert hash(first) == hash(again)
        assert {first: "cached"}[again] == "cached"
        assert len({first, again}) == 1


class TestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(AlgorithmError, match="Mystery"):
            RunSpec("Mystery").validate()

    def test_unknown_configuration(self):
        spec = RunSpec("SeqGRD-NM",
                       workload=WorkloadSpec(configuration="C99"))
        with pytest.raises(SpecError, match="unknown configuration"):
            spec.validate()

    def test_unknown_budget_item_rejected_against_catalog(self):
        spec = RunSpec("SeqGRD-NM",
                       workload=WorkloadSpec(configuration="C1",
                                             budgets={"i": 1, "zebra": 2}))
        with pytest.raises(SpecError, match="zebra"):
            spec.validate()

    def test_unknown_fixed_imm_item_rejected(self):
        spec = RunSpec("SeqGRD-NM",
                       workload=WorkloadSpec(configuration="C1",
                                             fixed_imm_item="zebra"))
        with pytest.raises(SpecError, match="zebra"):
            spec.validate()

    def test_selection_strategy_capability(self):
        spec = RunSpec("TCIM",
                       engine=EngineConfig(selection_strategy="lazy"))
        with pytest.raises(SpecError, match="selection_strategy"):
            spec.validate()

    def test_workers_capability(self):
        spec = RunSpec("MaxGRD", engine=EngineConfig(workers=2))
        with pytest.raises(SpecError, match="workers"):
            spec.validate()

    def test_supported_combination_passes(self):
        RunSpec("SeqGRD-NM",
                engine=EngineConfig(workers=2,
                                    selection_strategy="eager")).validate()

    def test_bad_engine_value(self):
        spec = RunSpec("SeqGRD-NM", engine=EngineConfig(engine="quantum"))
        with pytest.raises(SpecError, match="quantum"):
            spec.validate()

    def test_fixed_imm_and_fixed_allocation_exclusive(self):
        spec = RunSpec("SeqGRD-NM", workload=WorkloadSpec(
            configuration="C1", fixed_imm_item="j",
            fixed_allocation={"j": (1,)}))
        with pytest.raises(SpecError, match="mutually exclusive"):
            spec.validate()

    def test_index_capability_enforced_at_run(self):
        graph = benchmark_network("nethept", SMOKE)
        model = two_item_config("C1")
        with pytest.raises(AlgorithmError, match="prebuilt RR-set index"):
            run_spec(RunSpec("TCIM"), graph=graph, model=model,
                     index=object())


class TestEnvPrecedence:
    """Explicit argument > environment variable > built-in default."""

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        monkeypatch.delenv(SELECTION_ENV_VAR, raising=False)
        resolved = EngineConfig().resolve()
        assert resolved.engine == "vectorized"
        assert resolved.selection_strategy == "lazy"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "python")
        monkeypatch.setenv(SELECTION_ENV_VAR, "eager")
        resolved = EngineConfig().resolve()
        assert resolved.engine == "python"
        assert resolved.selection_strategy == "eager"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "python")
        monkeypatch.setenv(SELECTION_ENV_VAR, "eager")
        resolved = EngineConfig(engine="vectorized",
                                selection_strategy="reference").resolve()
        assert resolved.engine == "vectorized"
        assert resolved.selection_strategy == "reference"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "quantum")
        with pytest.raises(SpecError, match="quantum"):
            EngineConfig().resolve()

    def test_resolve_is_idempotent(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "python")
        resolved = EngineConfig().resolve()
        monkeypatch.setenv(ENGINE_ENV_VAR, "vectorized")
        # already-resolved configs never consult the environment again
        assert resolved.resolve().engine == "python"


class TestRegistryAntiDrift:
    """Registry names, CLI choices and ALGORITHMS must never drift."""

    def test_experiment_lineup_derives_from_registry(self):
        assert ALGORITHMS == experiment_algorithms()
        assert ALGORITHMS == ("SeqGRD", "SeqGRD-NM", "MaxGRD", "SupGRD",
                              "greedyWM", "TCIM", "Balance-C", "Round-robin",
                              "Snake")

    def test_cli_choices_match_registry(self):
        parser = build_parser()
        args = parser.parse_args(["run"])
        # every registry name parses as a valid --algorithm choice
        for name in algorithm_names():
            parsed = parser.parse_args(["run", "--algorithm", name])
            assert parsed.algorithm == name
        assert args.algorithm == "SeqGRD-NM"

    def test_registry_is_superset_of_experiments(self):
        assert set(experiment_algorithms()) < set(algorithm_names())
        assert "BestOf" in algorithm_names()

    def test_capability_flags(self):
        flags = {e.name: e for e in algorithm_entries()}
        assert flags["SeqGRD-NM"].supports_index
        assert flags["SupGRD"].supports_workers
        assert not flags["TCIM"].supports_selection_strategy
        assert flags["greedyWM"].needs_candidate_pool
        assert flags["Balance-C"].needs_candidate_pool
        assert not flags["BestOf"].in_experiments

    def test_get_algorithm_unknown(self):
        with pytest.raises(AlgorithmError, match="choose from"):
            get_algorithm("Mystery")


class TestFingerprint:
    def test_stable_against_golden_file(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        monkeypatch.delenv(SELECTION_ENV_VAR, raising=False)
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden, "golden fingerprint file must not be empty"
        for entry in golden:
            spec = RunSpec.from_dict(entry["spec"])
            assert spec.fingerprint() == entry["fingerprint"], (
                f"fingerprint drift for {entry['name']}: the RunSpec "
                f"schema changed; bump SPEC_SCHEMA_VERSION and regenerate "
                f"tests/data/golden_fingerprints.json")

    def test_env_resolution_folds_into_fingerprint(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        monkeypatch.delenv(SELECTION_ENV_VAR, raising=False)
        implicit = RunSpec("SeqGRD-NM").fingerprint()
        explicit = RunSpec("SeqGRD-NM", engine=EngineConfig(
            engine="vectorized", selection_strategy="lazy")).fingerprint()
        assert implicit == explicit
        monkeypatch.setenv(ENGINE_ENV_VAR, "python")
        assert RunSpec("SeqGRD-NM").fingerprint() != implicit

    def test_sensitive_to_every_layer(self):
        base = RunSpec("SeqGRD-NM")
        assert base.fingerprint() != RunSpec("SeqGRD").fingerprint()
        assert base.fingerprint() != RunSpec(
            "SeqGRD-NM",
            workload=WorkloadSpec(budget=11)).fingerprint()
        assert base.fingerprint() != RunSpec(
            "SeqGRD-NM", engine=EngineConfig(seed=2021)).fingerprint()


class TestRunSpecEquivalence:
    """Acceptance: every registered algorithm produces bit-identical
    allocations via the RunSpec API vs. the run_algorithm keyword path."""

    @pytest.fixture(scope="class")
    def instance(self):
        graph = benchmark_network("nethept", SMOKE)
        model = two_item_config("C1")
        return graph, model

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bit_identical_allocations(self, algorithm, instance):
        graph, model = instance
        budgets = {"i": 2} if algorithm == "SupGRD" else {"i": 2, "j": 2}
        legacy = run_algorithm(algorithm, graph, model, budgets=budgets,
                               scale=SMOKE, configuration="C1",
                               superior_item="i" if algorithm == "SupGRD"
                               else None)
        spec = RunSpec(
            algorithm=algorithm,
            workload=WorkloadSpec(
                network=graph.name, configuration="C1", budgets=budgets,
                superior_item="i" if algorithm == "SupGRD" else None),
            engine=EngineConfig(
                samples=SMOKE.evaluation_samples,
                marginal_samples=SMOKE.marginal_samples,
                max_rr_sets=SMOKE.imm_options.max_rr_sets,
                epsilon=SMOKE.imm_options.epsilon,
                ell=SMOKE.imm_options.ell,
                seed=SMOKE.seed,
                pool_size=SMOKE.baseline_pool_size))
        record = run_spec(spec, graph=graph, model=model)
        assert (record.result.allocation.as_dict()
                == legacy.result.allocation.as_dict())
        # same RNG stream end to end => exactly equal welfare estimates
        assert record.welfare == legacy.welfare
        assert record.adoption_counts == legacy.adoption_counts


class TestSupgrdNarrowing:
    """SupGRD budget narrowing is shared by every surface (CLI, api.run,
    serve): multi-item budget vectors narrow to one item identically."""

    def test_narrow_helper(self):
        from repro.api.runner import narrow_single_item_budgets

        assert narrow_single_item_budgets({"i": 3, "j": 1}) == {"i": 3}
        assert narrow_single_item_budgets({"i": 1, "j": 3}) == {"j": 3}
        assert narrow_single_item_budgets({"i": 2, "j": 2}) == {"i": 2}
        assert narrow_single_item_budgets({"i": 1, "j": 3},
                                     superior_item="i") == {"i": 1}
        assert narrow_single_item_budgets({"i": 4}) == {"i": 4}

    def test_run_narrows_uniform_budgets(self):
        graph = benchmark_network("nethept", SMOKE)
        model = two_item_config("C6")
        spec = RunSpec("SupGRD",
                       workload=WorkloadSpec(configuration="C6", budget=2),
                       engine=EngineConfig.from_scale(SMOKE))
        record = run_spec(spec, graph=graph, model=model)
        assert record.budgets == {"i": 2}
        assert set(record.result.allocation.as_dict()) == {"i"}


class TestConfigurationsCatalog:
    def test_catalog_matches_cli_reexport(self):
        from repro.cli import CONFIGURATIONS as cli_configurations

        assert cli_configurations is CONFIGURATIONS

    def test_all_configurations_buildable(self):
        for name in CONFIGURATIONS:
            spec = WorkloadSpec(configuration=name)
            assert spec.item_names(), name
