"""Tests for the IMM engine and the single-item IMM / marginal IMM."""

import itertools

import numpy as np
import pytest

from repro.diffusion.estimators import estimate_spread
from repro.exceptions import AlgorithmError
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions, imm, marginal_imm, run_imm_engine
from repro.rrsets.rrset import random_rr_set

FAST = IMMOptions(max_rr_sets=8_000)


class TestIMM:
    def test_budget_respected(self, small_er_graph):
        result = imm(small_er_graph, 5, options=FAST, rng=1)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_k_zero(self, small_er_graph):
        result = imm(small_er_graph, 0, options=FAST, rng=1)
        assert result.seeds == []
        assert result.estimated_value == 0.0

    def test_k_at_least_nodes(self):
        g = generators.line_graph(4)
        result = imm(g, 10, options=FAST, rng=1)
        assert len(result.seeds) <= 4

    def test_obvious_best_seed_on_star(self, star10):
        result = imm(star10, 1, options=FAST, rng=2)
        assert result.seeds == [0]
        assert result.estimated_value == pytest.approx(11.0, rel=0.15)

    def test_line_graph_picks_source(self, line4):
        result = imm(line4, 1, options=FAST, rng=3)
        assert result.seeds == [0]

    def test_quality_close_to_greedy_optimum(self):
        """IMM spread is close to the brute-force optimal spread for k=2."""
        graph = weighting.weighted_cascade(
            generators.erdos_renyi(60, 4.0, rng=5))
        result = imm(graph, 2, options=FAST, rng=6)
        imm_spread = estimate_spread(graph, result.seeds, n_samples=800, rng=7)
        best = 0.0
        degrees = np.argsort(-graph.out_degrees())[:8]
        for pair in itertools.combinations(degrees.tolist(), 2):
            best = max(best, estimate_spread(graph, pair, n_samples=300,
                                             rng=8))
        assert imm_spread >= 0.6 * best

    def test_prefix_accessors(self, small_er_graph):
        result = imm(small_er_graph, 6, options=FAST, rng=9)
        assert result.prefix(3) == result.seeds[:3]
        assert result.prefix_value(3) <= result.prefix_value(6) + 1e-9
        assert result.prefix_value(0) == 0.0

    def test_estimated_value_close_to_simulation(self, medium_graph):
        result = imm(medium_graph, 5, options=FAST, rng=10)
        simulated = estimate_spread(medium_graph, result.seeds,
                                    n_samples=600, rng=11)
        assert result.estimated_value == pytest.approx(simulated, rel=0.3)

    def test_deterministic_given_seed(self, small_er_graph):
        r1 = imm(small_er_graph, 4, options=FAST, rng=42)
        r2 = imm(small_er_graph, 4, options=FAST, rng=42)
        assert r1.seeds == r2.seeds


class TestMarginalIMM:
    def test_avoids_region_covered_by_fixed_seeds(self):
        # two disjoint deterministic paths: 0 -> 1 and 2 -> 3 -> 4.
        # with node 0 fixed, only the second path offers marginal spread,
        # so the best marginal seed is its source (node 2).
        graph = DirectedGraph.from_edges(
            5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        result = marginal_imm(graph, 1, {0}, options=FAST, rng=1)
        assert result.seeds == [2]
        assert result.estimated_value == pytest.approx(3.0, rel=0.25)

    def test_empty_fixed_set_equals_standard(self, small_er_graph):
        standard = imm(small_er_graph, 3, options=FAST, rng=5)
        marginal = marginal_imm(small_er_graph, 3, set(), options=FAST, rng=5)
        assert standard.seeds == marginal.seeds

    def test_marginal_value_below_total(self, medium_graph):
        fixed = set(imm(medium_graph, 5, options=FAST, rng=1).seeds)
        marginal = marginal_imm(medium_graph, 5, fixed, options=FAST, rng=2)
        total = imm(medium_graph, 5, options=FAST, rng=2)
        assert marginal.estimated_value <= total.estimated_value + 5.0


class TestEngine:
    def test_weighted_sampler(self, star10):
        # weight 2 per RR set: the estimate should be ~2x the spread
        def sampler(generator):
            return random_rr_set(star10, generator), 2.0

        result = run_imm_engine(star10.num_nodes, 1, sampler,
                                max_value=2.0 * star10.num_nodes,
                                options=FAST, rng=3)
        assert result.seeds == [0]
        assert result.estimated_value == pytest.approx(22.0, rel=0.2)

    def test_invalid_inputs(self):
        def sampler(generator):
            return np.array([0]), 1.0

        with pytest.raises(AlgorithmError):
            run_imm_engine(0, 1, sampler, max_value=10.0)
        with pytest.raises(AlgorithmError):
            run_imm_engine(5, 1, sampler, max_value=0.0)

    def test_max_rr_sets_cap_respected(self, small_er_graph):
        options = IMMOptions(max_rr_sets=500, min_rr_sets=10)
        result = imm(small_er_graph, 3, options=options, rng=1)
        assert result.num_rr_sets <= 500

    def test_min_rr_sets_floor(self, line4):
        options = IMMOptions(max_rr_sets=5_000, min_rr_sets=100)
        result = imm(line4, 1, options=options, rng=1)
        assert result.num_rr_sets >= 100

    def test_result_metadata(self, small_er_graph):
        result = imm(small_er_graph, 2, options=FAST, rng=1)
        assert result.lower_bound >= 1.0
        assert result.sampling_rounds >= 1
        assert result.num_rr_sets > 0
