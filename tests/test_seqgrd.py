"""Tests for SeqGRD and SeqGRD-NM (Algorithm 1)."""

import pytest

from repro.allocation import Allocation
from repro.diffusion.estimators import estimate_welfare
from repro.exceptions import AlgorithmError
from repro.core.seqgrd import seqgrd, seqgrd_nm
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions
from repro.utility.configs import (
    blocking_config,
    lastfm_config,
    two_item_config,
)

FAST = IMMOptions(max_rr_sets=6_000)


class TestBudgetsAndStructure:
    def test_budgets_respected(self, small_er_graph, c1_model):
        result = seqgrd_nm(small_er_graph, c1_model, {"i": 4, "j": 6},
                           options=FAST, rng=1)
        assert result.allocation.seed_count("i") == 4
        assert result.allocation.seed_count("j") == 6

    def test_seeds_are_distinct_across_items(self, small_er_graph, c1_model):
        result = seqgrd_nm(small_er_graph, c1_model, {"i": 5, "j": 5},
                           options=FAST, rng=2)
        seeds_i = set(result.allocation.seeds_for("i"))
        seeds_j = set(result.allocation.seeds_for("j"))
        assert not seeds_i & seeds_j

    def test_item_order_by_truncated_utility(self, small_er_graph):
        model = two_item_config("C2", noise_sigma=0.0)
        result = seqgrd_nm(small_er_graph, model, {"i": 3, "j": 3},
                           options=FAST, rng=3)
        assert result.details["item_order"] == ["i", "j"]
        # the higher-utility item gets the better (earlier) seeds
        assert result.details["item_utilities"]["i"] > \
            result.details["item_utilities"]["j"]

    def test_zero_budget_item_ignored(self, small_er_graph, c1_model):
        result = seqgrd_nm(small_er_graph, c1_model, {"i": 4, "j": 0},
                           options=FAST, rng=4)
        assert result.allocation.seed_count("j") == 0
        assert result.allocation.seed_count("i") == 4

    def test_algorithm_name(self, small_er_graph, c1_model):
        nm = seqgrd_nm(small_er_graph, c1_model, {"i": 2, "j": 2},
                       options=FAST, rng=5)
        full = seqgrd(small_er_graph, c1_model, {"i": 2, "j": 2},
                      n_marginal_samples=10, options=FAST, rng=5)
        assert nm.algorithm == "SeqGRD-NM"
        assert full.algorithm == "SeqGRD"

    def test_runtime_recorded(self, small_er_graph, c1_model):
        result = seqgrd_nm(small_er_graph, c1_model, {"i": 2, "j": 2},
                           options=FAST, rng=6)
        assert result.runtime_seconds > 0

    def test_evaluate_welfare_option(self, small_er_graph, c1_model):
        result = seqgrd_nm(small_er_graph, c1_model, {"i": 2, "j": 2},
                           options=FAST, evaluate_welfare=True,
                           n_evaluation_samples=50, rng=7)
        assert result.estimated_welfare is not None
        assert result.estimated_welfare > 0


class TestFixedAllocation:
    def test_new_seeds_avoid_fixed_seed_nodes(self, small_er_graph, c1_model):
        fixed = Allocation({"j": [0, 1, 2]})
        result = seqgrd_nm(small_er_graph, c1_model, {"i": 5},
                           fixed_allocation=fixed, options=FAST, rng=8)
        assert not set(result.allocation.seeds_for("i")) & {0, 1, 2}
        assert result.fixed_allocation == fixed

    def test_combined_allocation_includes_fixed(self, small_er_graph, c1_model):
        fixed = Allocation({"j": [0]})
        result = seqgrd_nm(small_er_graph, c1_model, {"i": 2},
                           fixed_allocation=fixed, options=FAST, rng=9)
        combined = result.combined_allocation()
        assert combined.seeds_for("j") == (0,)
        assert combined.seed_count("i") == 2

    def test_overlapping_item_sets_rejected(self, small_er_graph, c1_model):
        fixed = Allocation({"i": [0]})
        with pytest.raises(AlgorithmError, match="disjoint"):
            seqgrd_nm(small_er_graph, c1_model, {"i": 2},
                      fixed_allocation=fixed, options=FAST, rng=1)


class TestMarginalCheck:
    def test_all_budgets_exhausted_even_when_items_skipped(self):
        """Skipped items are appended at the end (Algorithm 1 lines 14-18)."""
        graph = generators.line_graph(6)
        model = two_item_config("C2", noise_sigma=0.0)
        result = seqgrd(graph, model, {"i": 2, "j": 2},
                        n_marginal_samples=20, options=FAST, rng=2)
        assert result.allocation.seed_count("i") == 2
        assert result.allocation.seed_count("j") == 2

    def test_marginal_estimates_recorded(self, small_er_graph, c1_model):
        result = seqgrd(small_er_graph, c1_model, {"i": 2, "j": 2},
                        n_marginal_samples=20, options=FAST, rng=3)
        assert set(result.details["marginal_estimates"]) <= {"i", "j"}
        assert len(result.details["marginal_estimates"]) >= 1

    def test_blocking_configuration_seqgrd_at_least_as_good(self, medium_graph):
        """Under the Table 4 blocking configuration the marginal check lets
        SeqGRD defer the blocking item, so its welfare is at least that of
        SeqGRD-NM (Figure 6(c))."""
        model = blocking_config()
        budgets = {"i": 20, "j": 12, "k": 12}
        with_check = seqgrd(medium_graph, model, budgets,
                            n_marginal_samples=60, options=FAST, rng=5)
        without = seqgrd_nm(medium_graph, model, budgets, options=FAST, rng=5)
        w_check = estimate_welfare(medium_graph, model,
                                   with_check.combined_allocation(),
                                   n_samples=400, rng=6).mean
        w_plain = estimate_welfare(medium_graph, model,
                                   without.combined_allocation(),
                                   n_samples=400, rng=6).mean
        assert w_check >= w_plain - 0.05 * abs(w_plain)


class TestMultiItem:
    def test_four_items(self, small_er_graph, lastfm_model):
        budgets = {item: 3 for item in lastfm_model.items}
        result = seqgrd_nm(small_er_graph, lastfm_model, budgets,
                           options=FAST, rng=10)
        for item in lastfm_model.items:
            assert result.allocation.seed_count(item) == 3
        # highest-utility genre (indie) gets the first seeds of the pool
        assert result.details["item_order"][0] == "indie"
