"""Equivalence suite for the batched vectorized engine.

The scalar simulators in :mod:`repro.diffusion` / :mod:`repro.rrsets` are
the reference oracle.  On *fixed* possible worlds (fixed edge coins and
noise) the batched engine must be **bit-identical** to the scalar one; on
random worlds both engines must estimate the same quantities (checked
against exact enumeration and against each other).
"""

import numpy as np
import pytest

from repro.allocation import Allocation
from repro.diffusion.estimators import (
    estimate_marginal_spread,
    estimate_marginal_welfare,
    estimate_spread,
    estimate_welfare,
    exact_welfare_enumeration,
)
from repro.diffusion.ic import simulate_ic
from repro.diffusion.uic import simulate_uic
from repro.diffusion.worlds import sample_edge_world
from repro.engine.coins import (
    FixedCoinBatch,
    bernoulli_mask,
    edge_world_live_mask,
    sample_edge_coin_matrix,
)
from repro.engine.config import batch_size, resolve_engine
from repro.engine.forward import simulate_ic_batch, simulate_uic_batch
from repro.engine.reverse import (
    marginal_rr_sets,
    random_rr_sets,
    weighted_rr_sets,
)
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.rrsets.rrset import WeightedRRSampler
from repro.utility.configs import (
    blocking_config,
    single_item_config,
    two_item_config,
)
from repro.utils.rng import ensure_rng


def _fixture_graphs():
    return [
        generators.line_graph(6),
        generators.star_graph(8),
        weighting.weighted_cascade(
            generators.erdos_renyi(60, 4.0, rng=3, directed=True)),
    ]


def _fixture_models():
    return [
        single_item_config(),
        two_item_config("C1", noise_sigma=0.0),
        two_item_config("C2", noise_sigma=0.0),
        blocking_config(),
    ]


def _allocation_for(model):
    items = list(model.items)
    if len(items) == 1:
        return Allocation({items[0]: [0, 3]})
    return Allocation({items[0]: [0, 3], items[-1]: [1]})


class TestConfig:
    def test_resolve_engine(self):
        assert resolve_engine("python") == "python"
        assert resolve_engine("Vectorized") == "vectorized"
        assert resolve_engine(None) in ("python", "vectorized")
        with pytest.raises(ValueError):
            resolve_engine("numba")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "python")
        assert resolve_engine(None) == "python"
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ValueError):
            resolve_engine(None)

    def test_batch_size_bounds(self, monkeypatch):
        assert batch_size(100) >= 1
        assert batch_size(100, requested=3) == 3
        assert batch_size(10**9) == 1  # state-cell budget kicks in
        monkeypatch.setenv("REPRO_ENGINE_BATCH", "7")
        assert batch_size(100) == 7


class TestBernoulliMask:
    def test_matches_probability_uniform(self):
        rng = ensure_rng(1)
        probs = np.full(200_000, 0.05)
        mask = bernoulli_mask(rng, probs)  # geometric skip path
        assert mask.mean() == pytest.approx(0.05, rel=0.1)

    def test_matches_probability_heterogeneous(self):
        rng = ensure_rng(2)
        probs = np.tile([0.1, 0.9], 50_000)
        mask = bernoulli_mask(rng, probs)
        assert mask[0::2].mean() == pytest.approx(0.1, rel=0.1)
        assert mask[1::2].mean() == pytest.approx(0.9, rel=0.05)

    def test_extremes(self):
        rng = ensure_rng(3)
        assert not bernoulli_mask(rng, np.zeros(100)).any()
        assert bernoulli_mask(rng, np.ones(100)).all()
        assert bernoulli_mask(rng, np.zeros(0)).tolist() == []


class TestUICBitIdentical:
    """Fixed possible worlds: batched == scalar, bit for bit."""

    @pytest.mark.parametrize("graph_index", [0, 1, 2])
    @pytest.mark.parametrize("model_index", [0, 1, 2, 3])
    def test_fixed_worlds(self, graph_index, model_index):
        graph = _fixture_graphs()[graph_index]
        model = _fixture_models()[model_index]
        allocation = _allocation_for(model)
        worlds = [sample_edge_world(graph, np.random.default_rng(seed))
                  for seed in range(6)]
        noise = np.zeros((6, model.num_items))
        batch = simulate_uic_batch(graph, model, allocation,
                                   edge_worlds=worlds, noise_worlds=noise)
        for index, world in enumerate(worlds):
            reference = simulate_uic(graph, model, allocation,
                                     edge_world=world,
                                     noise_world=np.zeros(model.num_items))
            got = batch.world(index)
            assert np.array_equal(reference.adoption_masks,
                                  got.adoption_masks)
            assert got.welfare == pytest.approx(reference.welfare, abs=1e-9)
            assert got.adoption_counts == reference.adoption_counts
            assert got.num_adopters == reference.num_adopters
            assert got.rounds == reference.rounds

    def test_fixed_noise_worlds_with_noise_terms(self):
        graph = generators.line_graph(5)
        model = two_item_config("C1", noise_sigma=0.5)
        allocation = Allocation({"i": [0], "j": [2]})
        rng = ensure_rng(9)
        noise = model.sample_noise_worlds(rng, 4)
        worlds = [sample_edge_world(graph, np.random.default_rng(s))
                  for s in range(4)]
        batch = simulate_uic_batch(graph, model, allocation,
                                   edge_worlds=worlds, noise_worlds=noise)
        for index, world in enumerate(worlds):
            reference = simulate_uic(graph, model, allocation,
                                     edge_world=world,
                                     noise_world=noise[index])
            assert np.array_equal(reference.adoption_masks,
                                  batch.adoption_masks[index])
            assert batch.welfare[index] == pytest.approx(reference.welfare)

    def test_empty_batch_and_empty_graph(self):
        model = two_item_config("C1", noise_sigma=0.0)
        empty_graph = DirectedGraph.from_edges(0, [])
        result = simulate_uic_batch(empty_graph, model, Allocation.empty(),
                                    n_worlds=3, rng=1)
        assert result.adoption_masks.shape == (3, 0)
        assert result.welfare.tolist() == [0.0, 0.0, 0.0]
        zero = simulate_uic_batch(generators.line_graph(3), model,
                                  Allocation.empty(), n_worlds=0, rng=1)
        assert zero.num_worlds == 0


class TestICBitIdentical:
    @pytest.mark.parametrize("graph_index", [0, 1, 2])
    def test_fixed_worlds(self, graph_index):
        graph = _fixture_graphs()[graph_index]
        worlds = [sample_edge_world(graph, np.random.default_rng(100 + s))
                  for s in range(6)]
        live = np.stack([edge_world_live_mask(graph, w) for w in worlds])
        active = simulate_ic_batch(graph, [0, 2], len(worlds),
                                   edge_live=live)
        for index, world in enumerate(worlds):
            reference = simulate_ic(graph, [0, 2], edge_world=world)
            assert reference == set(np.nonzero(active[index])[0].tolist())

    def test_no_seeds(self):
        graph = generators.line_graph(4)
        active = simulate_ic_batch(graph, [], 5, rng=1)
        assert not active.any()


class TestEstimatorAgreement:
    """Both engines estimate the same quantities."""

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_welfare_matches_exact_enumeration(self, engine):
        graph = DirectedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.5),
                                             (0, 2, 0.25)])
        model = two_item_config("C1", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [1]})
        exact = exact_welfare_enumeration(graph, model, allocation)
        estimate = estimate_welfare(graph, model, allocation,
                                    n_samples=6000, rng=3, engine=engine)
        assert estimate.mean == pytest.approx(exact, rel=0.1)

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_deterministic_graph_exact(self, engine):
        graph = generators.line_graph(4)
        model = single_item_config()
        estimate = estimate_welfare(graph, model, Allocation({"item": [0]}),
                                    n_samples=16, rng=1, engine=engine)
        assert estimate.mean == pytest.approx(4.0)
        assert estimate.std_error == 0.0
        assert estimate.mean_adopters == pytest.approx(4.0)

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_spread_line_graph(self, engine):
        graph = DirectedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.5)])
        spread = estimate_spread(graph, [0], n_samples=8000, rng=1,
                                 engine=engine)
        assert spread == pytest.approx(1.75, rel=0.05)

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_marginal_welfare_blocking(self, engine):
        graph = generators.line_graph(4)
        model = two_item_config("C2", noise_sigma=0.0)
        marginal = estimate_marginal_welfare(
            graph, model, Allocation({"i": [0]}), Allocation({"j": [1]}),
            n_samples=10, rng=1, engine=engine)
        assert marginal == pytest.approx(1.3 - 4.0)

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_marginal_spread(self, engine):
        graph = generators.line_graph(4)
        assert estimate_marginal_spread(graph, [0], [2], n_samples=10,
                                        rng=1, engine=engine) \
            == pytest.approx(0.0)
        assert estimate_marginal_spread(graph, [2], [0], n_samples=10,
                                        rng=1, engine=engine) \
            == pytest.approx(2.0)

    def test_engines_agree_statistically(self, small_er_graph):
        model = two_item_config("C1", noise_sigma=0.0)
        allocation = Allocation({"i": [0, 5, 9], "j": [3, 7]})
        scalar = estimate_welfare(small_er_graph, model, allocation,
                                  n_samples=1500, rng=11, engine="python")
        vectorized = estimate_welfare(small_er_graph, model, allocation,
                                      n_samples=1500, rng=11,
                                      engine="vectorized")
        tolerance = 4 * (scalar.std_error + vectorized.std_error)
        assert abs(scalar.mean - vectorized.mean) <= tolerance


class TestBatchedRRSets:
    def test_standard_deterministic_line(self):
        line4 = generators.line_graph(4)
        sets = random_rr_sets(line4, 4, rng=1, roots=[0, 1, 2, 3])
        assert [sorted(s.tolist()) for s in sets] == \
            [[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]]

    def test_standard_members_reach_root(self):
        graph = generators.erdos_renyi(60, 3.0, rng=1)
        root = 7
        rr = set(random_rr_sets(graph, 1, rng=12345, roots=[root])[0].tolist())
        from collections import deque
        seen = {root}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            sources, _ = graph.in_neighbors(node)
            for source in sources:
                source = int(source)
                if source not in seen:
                    seen.add(source)
                    queue.append(source)
        assert rr <= seen

    def test_borgs_identity(self):
        graph = weighting.weighted_cascade(
            generators.erdos_renyi(100, 4.0, rng=3))
        seeds = {0, 1, 2}
        sets = random_rr_sets(graph, 4000, rng=5)
        hits = sum(1 for s in sets if seeds & set(s.tolist()))
        rr_estimate = graph.num_nodes * hits / 4000
        mc_estimate = estimate_spread(graph, sorted(seeds), n_samples=2000,
                                      rng=6)
        assert rr_estimate == pytest.approx(mc_estimate, rel=0.2)

    def test_marginal_semantics(self):
        line4 = generators.line_graph(4)
        # everything upstream of a blocked node is discarded
        assert [s.tolist() for s in
                marginal_rr_sets(line4, {0}, 3, rng=1, roots=[3, 1, 0])] \
            == [[], [], []]
        survivor = marginal_rr_sets(line4, {3}, 1, rng=1, roots=[1])[0]
        assert sorted(survivor.tolist()) == [0, 1]
        unblocked = marginal_rr_sets(line4, set(), 1, rng=1, roots=[3])[0]
        assert sorted(unblocked.tolist()) == [0, 1, 2, 3]

    def test_weighted_matches_scalar_semantics(self):
        line4 = generators.line_graph(4)
        model = two_item_config("C6", bounded_noise=True)
        sampler = WeightedRRSampler(line4, model, "i",
                                    Allocation({"j": [1]}), rng=1)
        batch = sampler.sample_batch(ensure_rng(2), count=2, roots=[0, 3])
        # root 0: no ancestor is a fixed seed -> full superior utility
        assert batch[0].nodes.tolist() == [0]
        assert batch[0].weight == pytest.approx(sampler.superior_utility)
        # root 3: the BFS stops at the level of j's seed (node 1), so node 0
        # is never explored, and the weight is discounted by U+(j)
        assert sorted(batch[1].nodes.tolist()) == [1, 2, 3]
        expected = (model.expected_truncated_utility("i")
                    - model.expected_truncated_utility("j"))
        assert batch[1].weight == pytest.approx(expected, rel=0.1)

    def test_weighted_weight_never_negative(self):
        graph = generators.erdos_renyi(40, 3.0, rng=2)
        model = two_item_config("C6", bounded_noise=True)
        sampler = WeightedRRSampler(graph, model, "i",
                                    Allocation({"j": [0, 1, 2, 3]}), rng=3)
        for rr in sampler.sample_batch(ensure_rng(4), count=50):
            assert rr.weight >= 0.0

    def test_empty_graph_batches(self):
        empty = DirectedGraph.from_edges(0, [])
        assert all(s.tolist() == [] for s in random_rr_sets(empty, 3, rng=1))
        assert all(s.tolist() == []
                   for s in marginal_rr_sets(empty, {0}, 3, rng=1))
        sets = weighted_rr_sets(empty, {}, 1.0, 3, rng=1)
        assert all(nodes.tolist() == [] and weight == 0.0 and root == -1
                   for nodes, weight, root in sets)


class TestCommonRandomNumbers:
    def test_shared_coin_matrix_is_reused(self, small_er_graph):
        rng = ensure_rng(4)
        live = sample_edge_coin_matrix(small_er_graph, 8, rng)
        coins = FixedCoinBatch(small_er_graph, live)
        model = two_item_config("C1", noise_sigma=0.0)
        noise = np.zeros((8, model.num_items))
        base = Allocation({"i": [0]})
        combined = base.union(Allocation({"i": [1]}))
        first = simulate_uic_batch(small_er_graph, model, base,
                                   edge_worlds=coins, noise_worlds=noise)
        second = simulate_uic_batch(small_er_graph, model, combined,
                                    edge_worlds=coins, noise_worlds=noise)
        # the superset allocation can never do worse world-by-world when
        # simulated on the same coins with a single competing item
        assert (second.welfare >= first.welfare - 1e-9).all()

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_marginal_estimates_are_deterministic(self, small_er_graph,
                                                  engine):
        model = two_item_config("C1", noise_sigma=0.0)
        base = Allocation({"i": [0, 1]})
        extra = Allocation({"j": [2]})
        first = estimate_marginal_welfare(small_er_graph, model, base, extra,
                                          n_samples=30, rng=17,
                                          engine=engine)
        second = estimate_marginal_welfare(small_er_graph, model, base,
                                           extra, n_samples=30, rng=17,
                                           engine=engine)
        assert first == pytest.approx(second)
