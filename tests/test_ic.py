"""Tests for the classic Independent Cascade simulator."""

import pytest

from repro.diffusion.ic import reachable_set, simulate_ic, spread_in_world
from repro.diffusion.worlds import LazyEdgeWorld, sample_edge_world
from repro.graphs import generators


class TestSimulateIC:
    def test_deterministic_line(self, line4):
        assert simulate_ic(line4, [0], rng=1) == {0, 1, 2, 3}
        assert simulate_ic(line4, [2], rng=1) == {2, 3}

    def test_no_seeds(self, line4):
        assert simulate_ic(line4, [], rng=1) == set()

    def test_zero_probability_graph(self):
        g = generators.line_graph(5, prob=0.0)
        assert simulate_ic(g, [0], rng=1) == {0}

    def test_multiple_seeds(self, star10):
        active = simulate_ic(star10, [0, 3], rng=1)
        assert active == set(range(11))

    def test_seed_always_active(self):
        g = generators.erdos_renyi(50, 3.0, rng=1)
        active = simulate_ic(g, [7], rng=2)
        assert 7 in active

    def test_monotone_in_seeds_within_fixed_world(self):
        g = generators.erdos_renyi(60, 4.0, rng=3)
        world = sample_edge_world(g, rng=4)
        small = simulate_ic(g, [0], edge_world=world)
        big = simulate_ic(g, [0, 1, 2], edge_world=world)
        assert small <= big


class TestReachability:
    def test_reachable_set_matches_simulation(self):
        g = generators.erdos_renyi(40, 4.0, rng=5)
        world = sample_edge_world(g, rng=6)
        assert reachable_set(world, [3]) == simulate_ic(g, [3], edge_world=world)

    def test_spread_in_world(self, line4):
        world = sample_edge_world(line4, rng=1)
        assert spread_in_world(world, [0]) == 4
        assert spread_in_world(world, [3]) == 1

    def test_lazy_world_supported(self, line4):
        world = LazyEdgeWorld(line4, rng=1)
        assert spread_in_world(world, [1]) == 3
