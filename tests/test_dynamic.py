"""Dynamic-graph subsystem: deltas, keyed repair, warm re-allocation.

The contract under test is the one the manifest's ``staleness`` block
rides on: a repaired index is **array-identical to a from-scratch keyed
rebuild on the edited graph** — not an approximation — and a zero-op
delta leaves the index bit-identical (equal fingerprint).  On top of
that sit the serving integrations: the legacy ``apply-delta`` op
through service, registry and server; staleness surfaced by
``stats()`` and the manifest; and the replay-trace generator.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dynamic import (
    GraphDelta,
    OnlineAllocator,
    RRRepairEngine,
    build_repairable_index,
    keyed_roots,
    keyed_rr_sets,
    replace_sets,
    replay_deltas,
    save_repaired,
    touched_set_ids,
)
from repro.dynamic.replay import make_replay_trace, random_edge_delta
from repro.exceptions import GraphError, IndexStoreError, ReproError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.coverage import node_selection

RR_SETS = 1200
BASE_SEED = 99


def rebuild(graph, **kwargs):
    """From-scratch keyed build, the ground truth repair must match."""
    kwargs.setdefault("rr_sets", RR_SETS)
    kwargs.setdefault("base_seed", BASE_SEED)
    return build_repairable_index(graph, **kwargs)


def assert_index_equal(left, right):
    lo, ln, lw = left._packed()
    ro, rn, rw = right._packed()
    np.testing.assert_array_equal(lo, ro)
    np.testing.assert_array_equal(ln, rn)
    np.testing.assert_array_equal(lw, rw)
    np.testing.assert_array_equal(left.roots, right.roots)
    assert left.num_nodes == right.num_nodes
    assert left.fingerprint == right.fingerprint


# ----------------------------------------------------------------------
# GraphDelta
# ----------------------------------------------------------------------
class TestGraphDelta:
    def test_apply_edits_the_graph(self, small_er_graph):
        graph = small_er_graph
        src, dst, probs = graph.edge_arrays()
        delta = GraphDelta(remove_edges=((int(src[0]), int(dst[0])),),
                           update_edges=((int(src[1]), int(dst[1]), 0.77),),
                           add_nodes=1)
        edited = delta.apply(graph)
        assert edited.num_nodes == graph.num_nodes + 1
        assert edited.num_edges == graph.num_edges - 1
        es, ed, ep = edited.edge_arrays()
        keys = es.astype(np.int64) * edited.num_nodes + ed
        assert int(src[0]) * edited.num_nodes + int(dst[0]) not in set(
            keys.tolist())
        where = np.flatnonzero((es == src[1]) & (ed == dst[1]))
        assert ep[where[0]] == pytest.approx(0.77)

    def test_validation_errors(self, small_er_graph):
        graph = small_er_graph
        src, dst, _ = graph.edge_arrays()
        u, v = int(src[0]), int(dst[0])
        with pytest.raises(GraphError):
            GraphDelta(add_nodes=-1)
        with pytest.raises(GraphError):
            GraphDelta(remove_edges=((u, v), (u, v)))
        with pytest.raises(GraphError):  # remove an absent edge
            GraphDelta(remove_edges=((graph.num_nodes + 5, 0),)).apply(graph)
        absent = _absent_edge(graph)
        with pytest.raises(GraphError):  # update an absent edge
            GraphDelta(update_edges=(absent + (0.5,),)).apply(graph)
        with pytest.raises(GraphError):  # add an existing edge
            GraphDelta(add_edges=((u, v, 0.5),)).apply(graph)
        with pytest.raises(GraphError):  # probability out of range
            GraphDelta(update_edges=((u, v, 1.5),)).apply(graph)
        with pytest.raises(GraphError):  # remove + update overlap
            GraphDelta(remove_edges=((u, v),),
                       update_edges=((u, v, 0.5),)).apply(graph)

    def test_json_round_trip(self):
        delta = GraphDelta(add_nodes=2, remove_nodes=(3,),
                           add_edges=((1, 2, 0.5),),
                           remove_edges=((4, 5),),
                           update_edges=((6, 7, 0.25),))
        payload = json.loads(json.dumps(delta.to_dict()))
        assert GraphDelta.from_dict(payload) == delta
        assert delta.num_ops == 6
        with pytest.raises(ReproError):
            GraphDelta.from_dict({"bogus_field": 1})

    def test_touched_targets(self, line4):
        # removing edge 1->2 can only change reachability *to* target 2
        delta = GraphDelta(remove_edges=((1, 2),))
        assert delta.touched_targets(line4).tolist() == [2]
        # removing node 1 touches node 1 and its out-neighbor 2
        delta = GraphDelta(remove_nodes=(1,))
        assert delta.touched_targets(line4).tolist() == [1, 2]


def _absent_edge(graph):
    src, dst, _ = graph.edge_arrays()
    present = set(zip(src.tolist(), dst.tolist()))
    for u in range(graph.num_nodes):
        for v in range(graph.num_nodes):
            if u != v and (u, v) not in present:
                return (u, v)
    raise AssertionError("complete graph")


# ----------------------------------------------------------------------
# Keyed sampling
# ----------------------------------------------------------------------
class TestKeyedSampling:
    def test_batch_independence(self, small_er_graph):
        """Unchanged sets replay bit-for-bit regardless of batching."""
        graph = small_er_graph
        indices = np.arange(64, dtype=np.int64)
        roots = keyed_roots(BASE_SEED, indices, graph.num_nodes)
        together = keyed_rr_sets(graph, indices, roots, BASE_SEED,
                                 kind="standard")
        for i in indices:
            alone = keyed_rr_sets(graph, indices[i:i + 1],
                                  roots[i:i + 1], BASE_SEED,
                                  kind="standard")
            np.testing.assert_array_equal(alone[0][0], together[i][0])

    def test_roots_are_deterministic_and_in_range(self):
        roots = keyed_roots(7, np.arange(5000), 321)
        np.testing.assert_array_equal(
            roots, keyed_roots(7, np.arange(5000), 321))
        assert roots.min() >= 0 and roots.max() < 321
        # roughly uniform: every node hit at least once at 5000 draws
        assert len(np.unique(roots)) > 250


# ----------------------------------------------------------------------
# Repair == rebuild (the ground-truth contract)
# ----------------------------------------------------------------------
class TestRepairExactness:
    def test_zero_delta_is_bit_identical(self, small_er_graph):
        index = rebuild(small_er_graph)
        fingerprint = index.fingerprint
        engine = RRRepairEngine(index, small_er_graph)
        outcome = engine.repair(GraphDelta())
        assert outcome.report.zero_delta
        assert outcome.index is index  # untouched, not merely equal
        assert outcome.index.fingerprint == fingerprint
        assert outcome.index.meta["dynamic"]["epoch"] == 0

    def test_edge_delta_matches_rebuild(self, small_er_graph):
        graph = small_er_graph
        index = rebuild(graph)
        delta = random_edge_delta(graph, 0.02, seed=5)
        outcome = RRRepairEngine(index, graph).repair(delta)
        assert outcome.report.repaired_sets > 0
        assert_index_equal(outcome.index, rebuild(outcome.graph))

    def test_node_insertions_match_full_resample(self, small_er_graph):
        """Growth re-roots minimally; the repaired sets must equal a
        full keyed resample of *every* set at the repaired roots (a
        fresh build would draw fresh roots, so roots are held fixed)."""
        graph = small_er_graph
        index = rebuild(graph)
        n = graph.num_nodes
        delta = GraphDelta(add_nodes=20,
                           add_edges=((n, 0, 0.3), (1, n + 5, 0.4)))
        outcome = RRRepairEngine(index, graph).repair(delta)
        assert outcome.graph.num_nodes == n + 20
        moved = outcome.report.rerooted_sets / index.num_sets
        # the keep-probability coupling moves ~ 20/170 of the roots
        assert 0.04 < moved < 0.25
        all_ids = np.arange(index.num_sets, dtype=np.int64)
        truth = keyed_rr_sets(outcome.graph, all_ids,
                              np.asarray(outcome.index.roots), BASE_SEED,
                              kind="standard")
        offsets, nodes, weights = outcome.index._packed()
        for i, (members, weight) in enumerate(truth):
            np.testing.assert_array_equal(
                nodes[offsets[i]:offsets[i + 1]], members)
            assert weights[i] == weight

    def test_node_removals_match_rebuild(self, small_er_graph):
        graph = small_er_graph
        index = rebuild(graph)
        delta = GraphDelta(remove_nodes=(3, 10, 42))
        outcome = RRRepairEngine(index, graph).repair(delta)
        assert outcome.graph.num_nodes == graph.num_nodes  # tombstones
        assert_index_equal(outcome.index, rebuild(outcome.graph))

    def test_sequential_repairs_compose(self, small_er_graph):
        graph = small_er_graph
        engine = RRRepairEngine(rebuild(graph), graph)
        rng = np.random.default_rng(17)
        for _ in range(3):
            outcome = engine.repair(
                random_edge_delta(engine.graph, 0.01, seed=rng))
        assert outcome.index.meta["dynamic"]["epoch"] == 3
        assert len(outcome.index.meta["dynamic"]["deltas"]) == 3
        assert_index_equal(outcome.index, rebuild(outcome.graph))

    @pytest.mark.parametrize("kind,kwargs", [
        ("marginal", {"blocked": [2, 5, 9]}),
        ("weighted", {"superior_utility": 1.0,
                      "node_block_utility": {2: 0.4, 7: 0.9}}),
    ])
    def test_marginal_and_weighted_kinds(self, small_er_graph, kind,
                                         kwargs):
        graph = small_er_graph
        index = rebuild(graph, sampler=kind, **kwargs)
        delta = random_edge_delta(graph, 0.02, seed=3)
        outcome = RRRepairEngine(index, graph).repair(delta)
        assert_index_equal(outcome.index,
                           rebuild(outcome.graph, sampler=kind, **kwargs))

    def test_small_delta_repairs_small_fraction(self, medium_graph):
        """A 1% edge delta must resample well under 20% of the sets."""
        graph = medium_graph
        index = rebuild(graph, rr_sets=2000)
        delta = random_edge_delta(graph, 0.01, seed=11)
        outcome = RRRepairEngine(index, graph).repair(delta)
        assert 0 < outcome.report.repaired_fraction < 0.20
        staleness = outcome.index.meta["dynamic"]["staleness"]
        assert staleness["repaired_fraction"] == \
            outcome.report.repaired_fraction

    def test_repaired_welfare_within_sampler_bound(self, small_er_graph):
        """Allocating off the repaired index == off a rebuild (exact),
        and within the sampling tolerance of an independent resample."""
        graph = small_er_graph
        index = rebuild(graph, rr_sets=2000)
        delta = random_edge_delta(graph, 0.02, seed=23)
        outcome = RRRepairEngine(index, graph).repair(delta)
        repaired = node_selection(outcome.index, 10)
        scratch = node_selection(rebuild(outcome.graph, rr_sets=2000), 10)
        assert list(repaired.seeds) == list(scratch.seeds)
        assert repaired.covered_weight == scratch.covered_weight
        # independent keyed resample (different seed): the coverage
        # estimate of the spread must agree within sampling noise
        other = node_selection(
            rebuild(outcome.graph, rr_sets=2000, base_seed=BASE_SEED + 1),
            10)
        spread = repaired.covered_weight / 2000
        spread_other = other.covered_weight / 2000
        assert spread == pytest.approx(spread_other, rel=0.15)

    def test_requires_repairable_index(self, small_er_graph):
        index = rebuild(small_er_graph)
        index.meta.pop("dynamic")
        with pytest.raises(IndexStoreError):
            RRRepairEngine(index, small_er_graph)


# ----------------------------------------------------------------------
# replace_sets dtype handling
# ----------------------------------------------------------------------
class TestReplaceSets:
    def test_zero_replacements_return_original_objects(self):
        offsets = np.array([0, 2, 3], dtype=np.int64)
        nodes = np.array([1, 2, 0], dtype=np.int32)
        weights = np.ones(2)
        out = replace_sets(offsets, nodes, weights, {}, 3)
        assert out[0] is offsets and out[1] is nodes and out[2] is weights

    def test_widens_member_dtype_across_int32_boundary(self):
        offsets = np.array([0, 1, 2], dtype=np.int64)
        nodes = np.array([5, 6], dtype=np.int32)
        weights = np.ones(2)
        big = 2 ** 31 + 7
        out_offsets, out_nodes, _ = replace_sets(
            offsets, nodes, weights,
            {1: (np.array([big], dtype=np.int64), 1.0)}, big + 1)
        assert out_nodes.dtype == np.int64
        assert int(out_nodes[1]) == big  # no wraparound
        assert out_offsets.tolist() == [0, 1, 2]

    def test_bounds_check(self):
        offsets = np.array([0, 1], dtype=np.int64)
        nodes = np.array([0], dtype=np.int32)
        with pytest.raises(IndexStoreError):
            replace_sets(offsets, nodes, np.ones(1),
                         {0: (np.array([9]), 1.0)}, 5)

    def test_touched_set_ids_sees_zero_weight_sets(self, small_er_graph):
        index = rebuild(small_er_graph, sampler="marginal",
                        blocked=[0, 1, 2, 3])
        _, _, weights = index._packed()
        assert np.any(weights == 0.0)  # dead walks are stored
        touched = touched_set_ids(
            index, np.arange(small_er_graph.num_nodes))
        assert len(touched) > 0


# ----------------------------------------------------------------------
# Warm-started allocation
# ----------------------------------------------------------------------
class TestOnlineAllocator:
    def test_warm_equals_cold(self, small_er_graph):
        graph = small_er_graph
        allocator = OnlineAllocator(rebuild(graph), graph)
        allocator.allocate(8)
        rng = np.random.default_rng(31)
        for _ in range(3):
            allocator.apply(random_edge_delta(allocator.graph, 0.02,
                                              seed=rng))
            warm = allocator.allocate(8)
            cold = node_selection(rebuild(allocator.graph), 8)
            assert list(warm.seeds) == list(cold.seeds)
            assert warm.covered_weight == cold.covered_weight
        assert allocator.stats["gains_carried"] >= 3

    def test_zero_delta_reuses_selection(self, small_er_graph):
        graph = small_er_graph
        allocator = OnlineAllocator(rebuild(graph), graph)
        first = allocator.allocate(5)
        allocator.apply(GraphDelta())
        assert allocator.allocate(5) is first
        assert allocator.stats["warm_reuses"] == 1

    def test_non_unit_weights_fall_back(self, small_er_graph):
        graph = small_er_graph
        index = rebuild(graph, sampler="weighted", superior_utility=1.0,
                        node_block_utility={2: 0.5})
        allocator = OnlineAllocator(index, graph)
        allocator.allocate(5)
        allocator.apply(random_edge_delta(graph, 0.02, seed=2))
        warm = allocator.allocate(5)
        cold = node_selection(
            rebuild(allocator.graph, sampler="weighted",
                    superior_utility=1.0, node_block_utility={2: 0.5}), 5)
        assert list(warm.seeds) == list(cold.seeds)


# ----------------------------------------------------------------------
# Persistence: roots survive save/load, staleness round-trips
# ----------------------------------------------------------------------
class TestPersistence:
    def test_save_load_round_trip(self, small_er_graph, tmp_path):
        from repro.index import FrozenRRIndex

        index = rebuild(small_er_graph)
        engine = RRRepairEngine(index, small_er_graph)
        outcome = engine.repair(random_edge_delta(small_er_graph, 0.02,
                                                  seed=9))
        save_repaired(outcome.index, tmp_path / "dyn")
        for mmap_mode in (False, True):
            loaded = FrozenRRIndex.load(tmp_path / "dyn", mmap=mmap_mode)
            assert_index_equal(loaded, outcome.index)
            assert loaded.meta["dynamic"]["epoch"] == 1

    def test_manifest_staleness_round_trip(self, small_er_graph,
                                           tmp_path):
        from repro.index import FrozenRRIndex

        index = rebuild(small_er_graph)
        outcome = RRRepairEngine(index, small_er_graph).repair(
            random_edge_delta(small_er_graph, 0.05, seed=13))
        save_repaired(outcome.index, tmp_path / "dyn")
        manifest = FrozenRRIndex.peek_manifest(tmp_path / "dyn")
        staleness = manifest["meta"]["dynamic"]["staleness"]
        assert staleness == outcome.index.meta["dynamic"]["staleness"]
        assert staleness["epoch"] == 1
        assert staleness["repaired_sets"] == outcome.report.repaired_sets
        # the recorded delta history reconstructs the drifted graph
        replayed = replay_deltas(small_er_graph, manifest["meta"])
        assert replayed.num_edges == outcome.graph.num_edges

    def test_replay_graph_matches_engine_graph(self, small_er_graph):
        engine = RRRepairEngine(rebuild(small_er_graph), small_er_graph)
        engine.repair(random_edge_delta(small_er_graph, 0.02, seed=4))
        engine.repair(random_edge_delta(engine.graph, 0.02, seed=5))
        replayed = replay_deltas(small_er_graph, engine.index.meta)
        for got, expected in zip(replayed.edge_arrays(),
                                 engine.graph.edge_arrays()):
            np.testing.assert_array_equal(got, expected)


# ----------------------------------------------------------------------
# Protocol guard
# ----------------------------------------------------------------------
def test_v1_specs_never_route_to_keyed_indexes(small_er_graph):
    from repro.api import EngineConfig, RunSpec, WorkloadSpec
    from repro.api.protocol import index_mismatch

    index = rebuild(small_er_graph)
    spec = RunSpec(algorithm="SeqGRD-NM",
                   workload=WorkloadSpec(network="nethept", scale=0.01,
                                         configuration="C1",
                                         budgets={"i": 2, "j": 2}),
                   engine=EngineConfig(seed=BASE_SEED))
    assert index_mismatch(spec, index.meta) is not None


# ----------------------------------------------------------------------
# Replay traces
# ----------------------------------------------------------------------
class TestReplayTrace:
    def test_trace_is_deterministic_and_applicable(self, small_er_graph):
        graph = small_er_graph
        kwargs = dict(num_queries=30, num_deltas=4, fraction=0.02,
                      seed=8, budgets=(3, 7))
        events = make_replay_trace(graph, **kwargs)
        assert events == make_replay_trace(graph, **kwargs)
        kinds = [event["kind"] for event in events]
        assert kinds.count("query") == 30 and kinds.count("delta") == 4
        current = graph
        for event in events:
            if event["kind"] == "delta":
                current = GraphDelta.from_dict(event["delta"]).apply(
                    current)
            else:
                assert event["budget"] in (3, 7)

    def test_random_edge_delta_respects_fraction(self, medium_graph):
        delta = random_edge_delta(medium_graph, 0.05, seed=1)
        assert delta.num_ops == round(0.05 * medium_graph.num_edges)
        with pytest.raises(GraphError):
            random_edge_delta(medium_graph, 0.0, seed=1)
