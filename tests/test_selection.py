"""Equivalence suite for the CSR-native selection engine.

The contract under test: the three ``node_selection`` strategies
(``lazy`` / ``eager`` / ``reference``) return bit-identical
:class:`SelectionResult` s — same seeds, same ``prefix_weights`` floats,
same ``saturated_at`` — over any weighted RR collection, and the growable
:class:`RRCollection`, its zero-copy :meth:`freeze` and the ``.npz``
round-trip all preserve that identity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AlgorithmError
from repro.index.frozen import FrozenRRIndex
from repro.rrsets.coverage import (
    SELECTION_ENV_VAR,
    SELECTION_STRATEGIES,
    RRCollection,
    default_strategy,
    node_selection,
    resolve_strategy,
)
from repro.rrsets.imm import imm


def random_collection(rng, num_nodes=12, num_sets=30, weighted=True,
                      empty_fraction=0.15, zero_weight_fraction=0.1):
    """A random weighted RR collection (with empty and zero-weight sets)."""
    collection = RRCollection(num_nodes)
    for _ in range(num_sets):
        if rng.random() < empty_fraction:
            nodes = np.empty(0, dtype=np.int64)
        else:
            size = int(rng.integers(1, min(6, num_nodes) + 1))
            nodes = rng.choice(num_nodes, size=size, replace=False)
        if rng.random() < zero_weight_fraction:
            weight = 0.0
        elif weighted:
            weight = float(rng.random() * 5.0)
        else:
            weight = 1.0
        collection.add(nodes.astype(np.int64), weight)
    return collection


def assert_identical(result_a, result_b):
    """Bit-for-bit SelectionResult equality (no approx anywhere)."""
    assert result_a.seeds == result_b.seeds
    assert len(result_a.prefix_weights) == len(result_b.prefix_weights)
    for weight_a, weight_b in zip(result_a.prefix_weights,
                                  result_b.prefix_weights):
        assert weight_a == weight_b
    assert result_a.covered_weight == result_b.covered_weight
    assert result_a.saturated_at == result_b.saturated_at


class TestStrategyEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("weighted", [True, False])
    def test_lazy_eager_reference_bit_identical(self, seed, weighted):
        rng = np.random.default_rng(seed)
        collection = random_collection(rng, weighted=weighted)
        for k in (0, 1, 3, 7, 12):
            results = {strategy: node_selection(collection, k,
                                                strategy=strategy)
                       for strategy in SELECTION_STRATEGIES}
            assert_identical(results["lazy"], results["reference"])
            assert_identical(results["eager"], results["reference"])

    @pytest.mark.parametrize("seed", range(4))
    def test_frozen_matches_growable(self, seed):
        rng = np.random.default_rng(100 + seed)
        collection = random_collection(rng, num_nodes=15, num_sets=40)
        frozen = collection.freeze()
        for strategy in SELECTION_STRATEGIES:
            for k in (1, 4, 9):
                assert_identical(
                    node_selection(collection, k, strategy=strategy),
                    node_selection(frozen, k, strategy=strategy))

    @pytest.mark.parametrize("seed", range(4))
    def test_extend_matches_add(self, seed):
        rng = np.random.default_rng(200 + seed)
        reference = random_collection(rng, num_nodes=10, num_sets=25)
        pairs = [(reference.set_members(i).copy(),
                  float(reference.weights()[i]))
                 for i in range(reference.num_sets)]
        bulk = RRCollection(10)
        bulk.extend(pairs)
        assert bulk.total_weight == reference.total_weight
        for k in (2, 6):
            assert_identical(node_selection(bulk, k, strategy="lazy"),
                             node_selection(reference, k, strategy="lazy"))

    def test_equivalence_on_sampled_rr_sets(self, small_er_graph):
        results = [imm(small_er_graph, 5, rng=7,
                       selection_strategy=strategy)
                   for strategy in SELECTION_STRATEGIES]
        for other in results[1:]:
            assert other.seeds == results[0].seeds
            assert other.estimated_value == results[0].estimated_value
            assert other.prefix_values == results[0].prefix_values


# property-based: the strategies agree on arbitrary weighted instances
rr_sets_strategy = st.lists(
    st.tuples(st.lists(st.integers(min_value=0, max_value=9), min_size=0,
                       max_size=5, unique=True),
              st.floats(min_value=0.0, max_value=10.0)),
    min_size=1, max_size=20)


@settings(max_examples=50, deadline=None)
@given(sets=rr_sets_strategy, k=st.integers(min_value=0, max_value=11))
def test_property_strategies_bit_identical(sets, k):
    collection = RRCollection(10)
    for nodes, weight in sets:
        collection.add(np.array(nodes, dtype=np.int64), weight)
    frozen = collection.freeze()
    reference = node_selection(collection, k, strategy="reference")
    for holder in (collection, frozen):
        for strategy in ("lazy", "eager"):
            assert_identical(node_selection(holder, k, strategy=strategy),
                             reference)


class TestSaturation:
    def make_saturating(self):
        # only nodes 0 and 1 ever cover anything; nodes 2, 3 are padding
        collection = RRCollection(4)
        collection.add(np.array([0]), 2.0)
        collection.add(np.array([0, 1]), 1.0)
        collection.add(np.array([1]), 1.0)
        return collection

    @pytest.mark.parametrize("strategy", SELECTION_STRATEGIES)
    def test_pad_keeps_k_seeds_and_reports_saturation(self, strategy):
        result = node_selection(self.make_saturating(), 4,
                                strategy=strategy)
        assert result.seeds == [0, 1, 2, 3]  # zero-gain pad: lowest ids
        assert result.saturated_at == 2
        assert result.prefix_weights == [3.0, 4.0, 4.0, 4.0]

    @pytest.mark.parametrize("strategy", SELECTION_STRATEGIES)
    def test_stop_truncates_at_saturation(self, strategy):
        result = node_selection(self.make_saturating(), 4,
                                strategy=strategy, on_saturation="stop")
        assert result.seeds == [0, 1]
        assert result.saturated_at == 2
        assert result.prefix_weights == [3.0, 4.0]
        assert result.covered_weight == 4.0

    @pytest.mark.parametrize("strategy", SELECTION_STRATEGIES)
    def test_unsaturated_selection_reports_none(self, strategy):
        collection = RRCollection(3)
        for node in range(3):
            collection.add(np.array([node]), 1.0)
        result = node_selection(collection, 2, strategy=strategy)
        assert result.saturated_at is None

    @pytest.mark.parametrize("strategy", SELECTION_STRATEGIES)
    def test_saturation_detected_despite_float_residue(self, strategy):
        # incremental subtraction can leave ~1-ulp residue on the gains of
        # fully covered nodes (0.1 + 0.3 summed forward, subtracted in
        # coverage order); saturation must still be detected because the
        # pick covers no new set
        collection = RRCollection(3)
        collection.add(np.array([0, 2]), 0.1)
        collection.add(np.array([1, 2]), 0.3)
        collection.add(np.array([0]), 5.0)
        collection.add(np.array([1]), 4.0)
        result = node_selection(collection, 3, strategy=strategy)
        assert result.seeds == [0, 1, 2]
        assert result.saturated_at == 2
        stopped = node_selection(collection, 3, strategy=strategy,
                                 on_saturation="stop")
        assert stopped.seeds == [0, 1]
        assert stopped.saturated_at == 2

    def test_pad_preserves_prefix_semantics(self):
        # the padded tail still makes every prefix a greedy solution,
        # which is what PRIMA+/SeqGRD budget exhaustion relies on
        collection = self.make_saturating()
        full = node_selection(collection, 4)
        for k in range(1, 5):
            assert node_selection(collection, k).seeds == full.prefix(k)

    def test_invalid_mode_rejected(self):
        with pytest.raises(AlgorithmError):
            node_selection(RRCollection(2), 1, on_saturation="explode")


class TestPackedStore:
    def test_average_set_size_running_totals(self):
        collection = RRCollection(6)
        collection.add(np.array([0, 1]), 1.0)
        collection.add(np.empty(0, dtype=np.int64), 1.0)
        collection.extend([(np.array([2, 3, 4]), 1.0),
                           (np.array([5]), 0.0)])
        assert collection.average_set_size() == pytest.approx(6 / 4)
        assert RRCollection(3).average_set_size() == 0.0

    def test_freeze_is_zero_copy(self):
        rng = np.random.default_rng(5)
        collection = random_collection(rng, num_nodes=8, num_sets=20)
        frozen = collection.freeze()
        assert np.shares_memory(frozen._nodes, collection._members)
        assert np.shares_memory(frozen._weights, collection._weights)
        assert np.shares_memory(frozen._offsets, collection._offsets)

    def test_growing_after_freeze_leaves_frozen_intact(self):
        collection = RRCollection(5)
        collection.add(np.array([0, 1]), 1.0)
        frozen = collection.freeze()
        nodes_before = frozen._nodes.copy()
        for _ in range(50):  # force several buffer doublings
            collection.add(np.array([2, 3, 4]), 1.0)
        np.testing.assert_array_equal(frozen._nodes, nodes_before)
        assert frozen.num_sets == 1
        assert collection.num_sets == 51

    def test_npz_round_trip_preserves_packed_buffers(self, tmp_path):
        rng = np.random.default_rng(11)
        collection = random_collection(rng, num_nodes=10, num_sets=35)
        frozen = collection.freeze(meta={"sampler": "standard"})
        frozen.save(tmp_path / "packed")
        loaded = FrozenRRIndex.load(tmp_path / "packed")
        np.testing.assert_array_equal(loaded._offsets, frozen._offsets)
        np.testing.assert_array_equal(loaded._nodes, frozen._nodes)
        np.testing.assert_array_equal(loaded._weights, frozen._weights)
        np.testing.assert_array_equal(loaded._inv_offsets,
                                      frozen._inv_offsets)
        np.testing.assert_array_equal(loaded._inv_sets, frozen._inv_sets)
        for strategy in SELECTION_STRATEGIES:
            assert_identical(node_selection(loaded, 6, strategy=strategy),
                             node_selection(collection, 6,
                                            strategy=strategy))

    def test_compact_freeze_copies_buffers(self):
        rng = np.random.default_rng(19)
        collection = random_collection(rng, num_nodes=8, num_sets=20)
        frozen = collection.freeze(compact=True)
        assert not np.shares_memory(frozen._nodes, collection._members)
        assert_identical(node_selection(frozen, 4),
                         node_selection(collection, 4))

    def test_thawed_empty_index_can_grow(self):
        # regression: _from_packed installs exactly-sized (possibly empty)
        # buffers, and growth from zero capacity must still terminate
        empty = RRCollection(5).freeze().to_collection()
        empty.add(np.array([0, 1]), 1.0)
        assert empty.num_sets == 1
        all_empty = RRCollection(5)
        all_empty.add(np.empty(0, dtype=np.int64), 1.0)
        thawed = all_empty.freeze().to_collection()
        thawed.add(np.array([2, 3]), 1.0)
        assert thawed.num_sets == 2
        assert list(thawed.set_members(1)) == [2, 3]

    def test_thaw_round_trip(self):
        rng = np.random.default_rng(13)
        collection = random_collection(rng, num_nodes=9, num_sets=25)
        thawed = collection.freeze().to_collection()
        assert thawed.num_sets == collection.num_sets
        assert thawed.average_set_size() == collection.average_set_size()
        assert_identical(node_selection(thawed, 5),
                         node_selection(collection, 5))

    def test_duplicate_members_stay_equivalent(self):
        # duplicated members duplicate postings; all strategies must still
        # count each covered set's weight exactly once
        collection = RRCollection(4)
        collection.add(np.array([1, 1, 2]), 3.0)
        collection.add(np.array([2, 3]), 1.0)
        reference = node_selection(collection, 3, strategy="reference")
        for strategy in ("lazy", "eager"):
            assert_identical(node_selection(collection, 3,
                                            strategy=strategy), reference)
        assert reference.covered_weight == 4.0

    def test_member_validation(self):
        collection = RRCollection(4)
        with pytest.raises(AlgorithmError):
            collection.add(np.array([4]), 1.0)
        with pytest.raises(AlgorithmError):
            collection.extend([(np.array([-1]), 1.0)])

    def test_initial_gains_matches_posting_sums(self):
        rng = np.random.default_rng(17)
        collection = random_collection(rng, num_nodes=8, num_sets=30)
        gains = collection.initial_gains()
        weights = collection.weights()
        for node in range(8):
            expected = sum(weights[i]
                           for i in collection.sets_covered_by(node))
            assert gains[node] == pytest.approx(expected)


class TestStrategyResolution:
    def test_default_is_lazy(self, monkeypatch):
        monkeypatch.delenv(SELECTION_ENV_VAR, raising=False)
        assert default_strategy() == "lazy"
        assert resolve_strategy(None) == "lazy"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(SELECTION_ENV_VAR, "eager")
        assert resolve_strategy(None) == "eager"

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(SELECTION_ENV_VAR, "psychic")
        with pytest.raises(ValueError):
            default_strategy()

    def test_invalid_argument_rejected(self):
        with pytest.raises(ValueError):
            resolve_strategy("psychic")

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(SELECTION_ENV_VAR, "reference")
        assert resolve_strategy("eager") == "eager"
