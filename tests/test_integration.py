"""Cross-module integration tests: the full CWelMax pipeline on medium
graphs, checking the qualitative findings the paper reports."""

import pytest

from repro.allocation import Allocation
from repro.baselines import round_robin, snake, tcim
from repro.core import best_of, maxgrd, seqgrd, seqgrd_nm, supgrd
from repro.diffusion.estimators import estimate_spread, estimate_welfare
from repro.graphs import generators, weighting
from repro.rrsets.imm import IMMOptions, imm
from repro.utility.configs import (
    lastfm_config,
    multi_item_config,
    single_item_config,
    two_item_config,
)

FAST = IMMOptions(max_rr_sets=8_000)


@pytest.fixture(scope="module")
def graph():
    base = generators.preferential_attachment(400, 3, rng=23, directed=False,
                                              name="integration")
    return weighting.weighted_cascade(base)


class TestSingleItemSpecialCase:
    def test_welfare_maximization_reduces_to_im(self, graph):
        """With one unit-utility item, SeqGRD-NM's welfare equals the spread
        of an IMM seed set (the reduction behind Proposition 1)."""
        model = single_item_config()
        result = seqgrd_nm(graph, model, {"item": 8}, options=FAST, rng=1)
        seeds = result.allocation.seeds_for("item")
        welfare = estimate_welfare(graph, model, result.allocation,
                                   n_samples=300, rng=2).mean
        spread = estimate_spread(graph, seeds, n_samples=300, rng=2)
        assert welfare == pytest.approx(spread, rel=0.05)

    def test_seqgrd_matches_imm_quality(self, graph):
        model = single_item_config()
        ours = seqgrd_nm(graph, model, {"item": 6}, options=FAST, rng=3)
        reference = imm(graph, 6, options=FAST, rng=3)
        ours_spread = estimate_spread(graph, ours.allocation.seeds_for("item"),
                                      n_samples=300, rng=4)
        ref_spread = estimate_spread(graph, reference.seeds, n_samples=300,
                                     rng=4)
        assert ours_spread >= 0.85 * ref_spread


class TestTwoItemFindings:
    def test_seqgrd_beats_maxgrd_under_soft_competition(self, graph):
        """Figure 4 (C3/C4): MaxGRD allocates a single item and loses under
        soft competition where both items add welfare."""
        model = two_item_config("C3", noise_sigma=0.0)
        budgets = {"i": 8, "j": 8}
        seq = seqgrd_nm(graph, model, budgets, options=FAST, rng=5)
        mx = maxgrd(graph, model, budgets, n_marginal_samples=40,
                    options=FAST, rng=5)
        seq_welfare = estimate_welfare(graph, model,
                                       seq.combined_allocation(),
                                       n_samples=300, rng=6).mean
        max_welfare = estimate_welfare(graph, model,
                                       mx.combined_allocation(),
                                       n_samples=300, rng=6).mean
        assert seq_welfare > max_welfare

    def test_best_of_never_worse_than_maxgrd(self, graph):
        model = two_item_config("C1")
        result = best_of(graph, model, {"i": 5, "j": 5}, marginal_check=False,
                         n_marginal_samples=30, n_evaluation_samples=150,
                         options=FAST, rng=7)
        assert result.estimated_welfare >= min(
            result.details["seqgrd_welfare"], result.details["maxgrd_welfare"])

    def test_seqgrd_nm_much_faster_than_seqgrd(self, graph):
        """The headline running-time finding (Figure 3): skipping the
        marginal check is faster.  Pinned to the scalar engine — the
        vectorized engine shrinks the marginal-check cost to the point
        where the two runtimes are within measurement noise at this
        scale."""
        model = two_item_config("C1")
        budgets = {"i": 5, "j": 5}
        nm = seqgrd_nm(graph, model, budgets, options=FAST, rng=8,
                       engine="python")
        full = seqgrd(graph, model, budgets, n_marginal_samples=100,
                      options=FAST, rng=8, engine="python")
        assert nm.runtime_seconds < full.runtime_seconds

    def test_welfare_comparable_to_tcim_or_better_under_c1(self, graph):
        model = two_item_config("C1")
        budgets = {"i": 6, "j": 6}
        ours = seqgrd_nm(graph, model, budgets, options=FAST, rng=9)
        baseline = tcim(graph, model, budgets, n_evaluation_samples=60,
                        options=FAST, rng=9)
        ours_welfare = estimate_welfare(graph, model,
                                        ours.combined_allocation(),
                                        n_samples=300, rng=10).mean
        tcim_welfare = estimate_welfare(graph, model,
                                        baseline.combined_allocation(),
                                        n_samples=300, rng=10).mean
        assert ours_welfare >= 0.9 * tcim_welfare


class TestSupGRDFinding:
    def test_supgrd_wins_when_utility_gap_is_large(self, graph):
        """Figure 5 / C6: with the inferior item pre-seeded at the IMM
        nodes, SupGRD deliberately overlaps that audience and beats
        SeqGRD-NM, which avoids it."""
        model = two_item_config("C6", bounded_noise=True)
        fixed = Allocation({"j": imm(graph, 10, options=FAST, rng=11).seeds})
        sup = supgrd(graph, model, budget=6, fixed_allocation=fixed,
                     options=FAST, rng=12)
        seq = seqgrd_nm(graph, model, {"i": 6}, fixed_allocation=fixed,
                        options=FAST, rng=12)
        sup_welfare = estimate_welfare(graph, model,
                                       sup.combined_allocation(),
                                       n_samples=300, rng=13).mean
        seq_welfare = estimate_welfare(graph, model,
                                       seq.combined_allocation(),
                                       n_samples=300, rng=13).mean
        assert sup_welfare >= seq_welfare - 0.02 * abs(seq_welfare)


class TestAdoptionVsWelfare:
    def test_total_adoptions_preserved_welfare_improved(self, graph):
        """Table 6: SeqGRD-NM shifts adoptions towards superior items but
        keeps the total roughly constant, while improving welfare."""
        model = lastfm_config()
        budgets = {item: 5 for item in model.items}
        ours = seqgrd_nm(graph, model, budgets, options=FAST, rng=14)
        baseline = round_robin(graph, model, budgets, options=FAST, rng=14)
        ours_est = estimate_welfare(graph, model, ours.combined_allocation(),
                                    n_samples=300, rng=15)
        base_est = estimate_welfare(graph, model,
                                    baseline.combined_allocation(),
                                    n_samples=300, rng=15)
        ours_total = sum(ours_est.adoption_counts.values())
        base_total = sum(base_est.adoption_counts.values())
        assert ours_est.mean >= 0.98 * base_est.mean
        assert ours_total == pytest.approx(base_total, rel=0.1)

    def test_multi_item_welfare_grows_with_items_for_seqgrd(self, graph):
        """Figure 6(b): SeqGRD-NM's welfare grows with the number of items
        (unlike MaxGRD, which allocates only one)."""
        welfare_by_m = []
        for m in (1, 3):
            model = multi_item_config(m)
            budgets = {item: 5 for item in model.items}
            result = seqgrd_nm(graph, model, budgets, options=FAST, rng=16)
            welfare_by_m.append(
                estimate_welfare(graph, model, result.combined_allocation(),
                                 n_samples=300, rng=17).mean)
        assert welfare_by_m[1] > welfare_by_m[0]
