"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import generators


class TestDeterministicGraphs:
    def test_line_graph(self):
        g = generators.line_graph(5, prob=0.7)
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert g.edge_probability(2, 3) == pytest.approx(0.7)
        assert not g.has_edge(3, 2)

    def test_line_graph_single_node(self):
        g = generators.line_graph(1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_star_graph(self):
        g = generators.star_graph(6)
        assert g.num_nodes == 7
        assert g.out_degree(0) == 6
        assert all(g.in_degree(i) == 1 for i in range(1, 7))

    def test_complete_graph(self):
        g = generators.complete_graph(4)
        assert g.num_edges == 12
        assert all(g.out_degree(v) == 3 for v in range(4))

    def test_grid_graph(self):
        g = generators.grid_graph(3, 4)
        assert g.num_nodes == 12
        # interior node has degree 4 in each direction
        assert g.out_degree(5) == 4
        # corner has degree 2
        assert g.out_degree(0) == 2
        # bidirectional
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_bipartite_cover_graph(self):
        subsets = [[0, 1], [1, 2]]
        g = generators.bipartite_cover_graph(subsets, 3)
        assert g.num_nodes == 5
        assert g.has_edge(0, 2)  # s0 -> g0
        assert g.has_edge(0, 3)  # s0 -> g1
        assert g.has_edge(1, 3)  # s1 -> g1
        assert g.has_edge(1, 4)  # s1 -> g2
        assert not g.has_edge(0, 4)

    def test_bipartite_cover_graph_bad_element(self):
        with pytest.raises(GraphError):
            generators.bipartite_cover_graph([[0, 5]], 3)


class TestRandomGraphs:
    def test_erdos_renyi_size_and_degree(self):
        g = generators.erdos_renyi(500, avg_degree=6.0, rng=3)
        assert g.num_nodes == 500
        assert 4.0 < g.average_degree() < 8.0

    def test_erdos_renyi_undirected_symmetric(self):
        g = generators.erdos_renyi(100, avg_degree=4.0, rng=3, directed=False)
        for u, v, _ in list(g.edges())[:50]:
            assert g.has_edge(v, u)

    def test_erdos_renyi_deterministic_with_seed(self):
        g1 = generators.erdos_renyi(100, 3.0, rng=42)
        g2 = generators.erdos_renyi(100, 3.0, rng=42)
        assert set(g1.edges()) == set(g2.edges())

    def test_erdos_renyi_empty(self):
        assert generators.erdos_renyi(0, 3.0, rng=1).num_nodes == 0
        assert generators.erdos_renyi(5, 0.0, rng=1).num_edges == 0

    def test_preferential_attachment_size(self):
        g = generators.preferential_attachment(200, 2, rng=5)
        assert g.num_nodes == 200
        # each new node contributes ~2 edges
        assert 150 <= g.num_edges <= 2 * 200

    def test_preferential_attachment_skewed_degrees(self):
        g = generators.preferential_attachment(400, 2, rng=5, directed=False)
        degrees = g.out_degrees()
        # heavy-tailed: the max degree should be far above the mean
        assert degrees.max() > 4 * degrees.mean()

    def test_preferential_attachment_undirected_symmetric(self):
        g = generators.preferential_attachment(80, 2, rng=9, directed=False)
        for u, v, _ in list(g.edges())[:60]:
            assert g.has_edge(v, u)

    def test_preferential_attachment_invalid_degree(self):
        with pytest.raises(GraphError):
            generators.preferential_attachment(10, 0, rng=1)

    def test_preferential_attachment_tiny(self):
        g = generators.preferential_attachment(3, 5, rng=1)
        assert g.num_nodes == 3  # falls back to the complete graph

    def test_watts_strogatz(self):
        g = generators.watts_strogatz(60, 4, 0.1, rng=2)
        assert g.num_nodes == 60
        assert g.num_edges >= 60 * 2  # 2 undirected ring edges per node

    def test_watts_strogatz_invalid_k(self):
        with pytest.raises(GraphError):
            generators.watts_strogatz(10, 3, 0.1, rng=2)

    def test_power_law_configuration(self):
        g = generators.power_law_configuration(300, exponent=2.3,
                                               avg_degree=5.0, rng=4)
        assert g.num_nodes == 300
        assert g.num_edges > 0
        assert g.out_degrees().max() > g.out_degrees().mean() * 2

    def test_random_dag_is_acyclic_by_construction(self):
        g = generators.random_dag(50, avg_degree=3.0, rng=6)
        for u, v, _ in g.edges():
            assert u < v

    def test_random_dag_deterministic(self):
        g1 = generators.random_dag(30, 2.0, rng=8)
        g2 = generators.random_dag(30, 2.0, rng=8)
        assert set(g1.edges()) == set(g2.edges())
