"""Property-based serve ⇔ run equivalence on randomized RunSpecs.

A seeded generator (plain ``random.Random`` — no hypothesis dependency)
draws RunSpecs across algorithms, budgets and seeds; each spec is served
through the full serving stack (registry → server dispatch → protocol →
AllocationService over a freshly built index) and compared against a
direct :func:`repro.api.run` of the same spec:

* allocations must be **bit-identical**,
* the response fingerprint must equal :meth:`RunSpec.fingerprint` and
  survive a ``to_dict`` → JSON → ``from_dict`` round trip,
* serving the same spec twice (fresh service vs. cached) must agree.

One spec additionally round-trips through a real TCP connection, so the
wire path (framing, coalescer, worker thread) is covered by the same
bit-identity property.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
from typing import List, Tuple

import pytest

from repro.api import (
    EngineConfig,
    RunSpec,
    WorkloadSpec,
    make_request,
    run as run_spec,
)
from repro.index import AllocationService, build_index
from repro.serve import AllocationServer, IndexRegistry
from repro.utility.configs import configuration_model

NETWORK, SCALE, CONFIGURATION = "nethept", 0.01, "C1"


def generate_specs(seed: int, count: int) -> List[RunSpec]:
    """Seeded random RunSpecs servable from a matching index."""
    rng = random.Random(seed)
    specs = []
    for _ in range(count):
        algorithm = rng.choice(["SeqGRD-NM", "SeqGRD-NM", "SupGRD"])
        engine = EngineConfig(seed=rng.choice([3, 4]),
                              samples=rng.choice([5, 10]),
                              max_rr_sets=rng.choice([1500, 2000]),
                              epsilon=rng.choice([0.5, 0.6]))
        if algorithm == "SupGRD":
            workload = WorkloadSpec(
                network=NETWORK, scale=SCALE, configuration=CONFIGURATION,
                budgets={"i": rng.randint(1, 3)}, superior_item="i")
        else:
            workload = WorkloadSpec(
                network=NETWORK, scale=SCALE, configuration=CONFIGURATION,
                budgets={"i": rng.randint(1, 3), "j": rng.randint(1, 3)})
        specs.append(RunSpec(algorithm=algorithm, workload=workload,
                             engine=engine))
    return specs


def build_matching_index(graph, model, spec: RunSpec):
    """Build the index a direct run of ``spec`` would have sampled."""
    sampler = "weighted" if spec.algorithm == "SupGRD" else "marginal"
    return build_index(
        graph, model, sampler=sampler,
        budgets=dict(spec.workload.budgets),
        superior_item=spec.workload.superior_item,
        options=spec.engine.imm_options(), seed=spec.engine.seed,
        meta_extra={"network": NETWORK, "scale": SCALE,
                    "configuration": CONFIGURATION,
                    "graph_seed": spec.engine.seed,
                    "fixed_imm_item": None, "fixed_imm_budget": 50})


@pytest.fixture(scope="module")
def instances():
    from repro.graphs.datasets import load_network

    model = configuration_model(CONFIGURATION)
    return {seed: load_network(NETWORK, scale=SCALE, rng=seed)
            for seed in (3, 4)}, model


@pytest.fixture(scope="module")
def served_and_direct(instances) -> List[Tuple[RunSpec, dict, dict]]:
    """Each random spec served through the stack + run directly."""
    graphs, model = instances
    rows = []
    for spec in generate_specs(seed=2020, count=6):
        graph = graphs[spec.engine.seed]
        index = build_matching_index(graph, model, spec)
        service = AllocationService(index, graph=graph, model=model)
        response = service.handle_request(make_request(spec, request_id=1))
        record = run_spec(spec, graph=graph, model=model)
        direct = {item: list(nodes) for item, nodes
                  in record.result.allocation.as_dict().items()}
        rows.append((spec, response, direct))
    return rows


class TestServeMatchesRun:
    def test_all_specs_served_ok(self, served_and_direct):
        for spec, response, _direct in served_and_direct:
            assert response["ok"] is True, (spec.algorithm, response)

    def test_allocations_bit_identical(self, served_and_direct):
        for spec, response, direct in served_and_direct:
            assert response["allocation"] == direct, spec.algorithm

    def test_fingerprints_match_spec(self, served_and_direct):
        for spec, response, _direct in served_and_direct:
            assert response["fingerprint"] == spec.fingerprint()

    def test_fingerprints_survive_json_round_trip(self, served_and_direct):
        for spec, _response, _direct in served_and_direct:
            round_tripped = RunSpec.from_dict(
                json.loads(json.dumps(spec.to_dict())))
            assert round_tripped.fingerprint() == spec.fingerprint()
            assert round_tripped == spec

    def test_generator_is_deterministic(self):
        first = [s.fingerprint() for s in generate_specs(seed=99, count=8)]
        second = [s.fingerprint() for s in generate_specs(seed=99, count=8)]
        assert first == second
        # different seeds explore different specs
        other = [s.fingerprint() for s in generate_specs(seed=100, count=8)]
        assert first != other

    def test_fresh_service_reserves_identically(self, instances,
                                                served_and_direct):
        graphs, model = instances
        spec, response, _direct = served_and_direct[0]
        graph = graphs[spec.engine.seed]
        index = build_matching_index(graph, model, spec)
        fresh = AllocationService(index, graph=graph, model=model)
        again = fresh.handle_request(make_request(spec))
        assert again["allocation"] == response["allocation"]
        assert again["fingerprint"] == response["fingerprint"]


class TestWirePathEquivalence:
    def test_tcp_round_trip_bit_identical(self, tmp_path, instances,
                                          served_and_direct):
        graphs, model = instances
        spec, _response, direct = served_and_direct[0]
        graph = graphs[spec.engine.seed]
        index = build_matching_index(graph, model, spec)
        index.save(tmp_path / "wire-idx")
        registry = IndexRegistry(directory=tmp_path)
        server = AllocationServer(registry)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps(make_request(spec, request_id=7))
                         .encode() + b"\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 60))
            writer.close()
            await server.shutdown(drain=True)
            return response

        response = asyncio.run(asyncio.wait_for(scenario(), 120))
        assert response["ok"] is True, response
        assert response["allocation"] == direct
        assert response["fingerprint"] == spec.fingerprint()
        assert response["server"]["index"] == "wire-idx"

    def test_stdio_dispatch_matches_direct_service(self, tmp_path,
                                                   instances,
                                                   served_and_direct):
        graphs, model = instances
        spec, response, _direct = served_and_direct[1]
        graph = graphs[spec.engine.seed]
        index = build_matching_index(graph, model, spec)
        index.save(tmp_path / "stdio-idx")
        registry = IndexRegistry(paths=[tmp_path / "stdio-idx"])
        server = AllocationServer(registry)
        via_core = server.dispatch_line(json.dumps(make_request(spec)))
        assert via_core["ok"] is True
        assert via_core["allocation"] == response["allocation"]


class TestIncompatibleSpecsRejected:
    def test_randomized_incompatible_specs_get_envelopes(self, tmp_path,
                                                         instances):
        graphs, model = instances
        base = generate_specs(seed=5, count=1)[0]
        graph = graphs[base.engine.seed]
        index = build_matching_index(graph, model, base)
        index.save(tmp_path / "strict-idx")
        registry = IndexRegistry(directory=tmp_path)
        server = AllocationServer(registry)
        rng = random.Random(5)
        rejected = 0
        for _ in range(10):
            mutated = dataclasses.replace(
                base, engine=dataclasses.replace(
                    base.engine,
                    seed=rng.randint(50, 99),
                    epsilon=rng.choice([0.1, 0.2, 0.9])))
            response = server.dispatch_line(
                json.dumps(make_request(mutated)))
            assert response["ok"] is False
            assert response["error"]["code"] == "incompatible-spec"
            rejected += 1
        assert rejected == 10
