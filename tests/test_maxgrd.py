"""Tests for MaxGRD (Algorithm 2)."""

import pytest

from repro.allocation import Allocation
from repro.core.maxgrd import maxgrd
from repro.core.seqgrd import seqgrd_nm
from repro.diffusion.estimators import estimate_welfare
from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions
from repro.utility.configs import two_item_config
from repro.utility.items import ItemCatalog
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.valuation import TableValuation

FAST = IMMOptions(max_rr_sets=6_000)


class TestMaxGRD:
    def test_allocates_exactly_one_item(self, small_er_graph, c1_model):
        result = maxgrd(small_er_graph, c1_model, {"i": 4, "j": 4},
                        n_marginal_samples=30, options=FAST, rng=1)
        assert len(result.allocation.items) == 1
        chosen = result.details["chosen_item"]
        assert result.allocation.seed_count(chosen) == 4

    def test_budget_respected_per_item(self, small_er_graph, c1_model):
        result = maxgrd(small_er_graph, c1_model, {"i": 2, "j": 6},
                        n_marginal_samples=30, options=FAST, rng=2)
        chosen = result.details["chosen_item"]
        assert result.allocation.seed_count(chosen) == {"i": 2, "j": 6}[chosen]

    def test_candidate_scores_recorded(self, small_er_graph, c1_model):
        result = maxgrd(small_er_graph, c1_model, {"i": 3, "j": 3},
                        n_marginal_samples=30, options=FAST, rng=3)
        scores = result.details["candidate_scores"]
        assert set(scores) == {"i", "j"}
        assert scores[result.details["chosen_item"]] == max(scores.values())

    def test_prefers_much_better_item(self, medium_graph):
        model = two_item_config("C2", noise_sigma=0.0)  # U(i) = 10 * U(j)
        result = maxgrd(medium_graph, model, {"i": 5, "j": 5},
                        n_marginal_samples=40, options=FAST, rng=4)
        assert result.details["chosen_item"] == "i"

    def test_analytic_scoring_path(self, small_er_graph, c1_model):
        result = maxgrd(small_er_graph, c1_model, {"i": 3, "j": 3},
                        use_simulation=False, options=FAST, rng=5)
        assert result.details["chosen_item"] in {"i", "j"}

    def test_no_positive_budget_rejected(self, small_er_graph, c1_model):
        with pytest.raises(AlgorithmError):
            maxgrd(small_er_graph, c1_model, {"i": 0, "j": 0}, options=FAST)

    def test_overlap_with_fixed_items_rejected(self, small_er_graph, c1_model):
        with pytest.raises(AlgorithmError):
            maxgrd(small_er_graph, c1_model, {"i": 2},
                   fixed_allocation=Allocation({"i": [0]}), options=FAST)

    def test_evaluate_welfare(self, small_er_graph, c1_model):
        result = maxgrd(small_er_graph, c1_model, {"i": 2, "j": 2},
                        n_marginal_samples=20, options=FAST,
                        evaluate_welfare=True, n_evaluation_samples=50, rng=6)
        assert result.estimated_welfare is not None


class TestPaperExample:
    """The 4-node example of §5.2 where MaxGRD beats SeqGRD: nodes
    {u, v, w, x}, edges u->v, v->w, x->w (probability 1), items i, j with
    U(i)=10, U(j)=1, U({i,j})=0 and budget 1 each."""

    @pytest.fixture
    def instance(self):
        graph = DirectedGraph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 1.0), (3, 2, 1.0)])
        catalog = ItemCatalog(["i", "j"])
        # utilities U(i)=10, U(j)=1, U({i,j})=0 exactly as in §5.2
        valuation = TableValuation(catalog, {"i": 10.0, "j": 1.0,
                                             ("i", "j"): 0.0})
        model = UtilityModel(valuation, {"i": 0.0, "j": 0.0}, ZeroNoise())
        return graph, model

    def test_maxgrd_allocates_only_the_strong_item(self, instance):
        graph, model = instance
        result = maxgrd(graph, model, {"i": 1, "j": 1},
                        n_marginal_samples=20, options=FAST, rng=7)
        assert result.details["chosen_item"] == "i"
        welfare = estimate_welfare(graph, model,
                                   result.combined_allocation(),
                                   n_samples=20, rng=8).mean
        # seeding u (or any node reaching 3 nodes) with i alone gives 30
        assert welfare >= 20.0

    def test_maxgrd_can_beat_seqgrd(self, instance):
        graph, model = instance
        max_result = maxgrd(graph, model, {"i": 1, "j": 1},
                            n_marginal_samples=20, options=FAST, rng=9)
        seq_result = seqgrd_nm(graph, model, {"i": 1, "j": 1},
                               options=FAST, rng=9)
        max_welfare = estimate_welfare(graph, model,
                                       max_result.combined_allocation(),
                                       n_samples=20, rng=10).mean
        seq_welfare = estimate_welfare(graph, model,
                                       seq_result.combined_allocation(),
                                       n_samples=20, rng=10).mean
        # the paper's point: hypothetically MaxGRD can produce more welfare
        # than SeqGRD because allocating j anywhere blocks i somewhere
        assert max_welfare >= seq_welfare
