"""Unit tests for edge-probability weighting schemes."""

import numpy as np
import pytest

from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph


class TestWeightedCascade:
    def test_probability_is_inverse_in_degree(self):
        g = DirectedGraph.from_edges(
            4, [(0, 3, 1.0), (1, 3, 1.0), (2, 3, 1.0), (0, 1, 1.0)])
        wc = weighting.weighted_cascade(g)
        assert wc.edge_probability(0, 3) == pytest.approx(1.0 / 3.0)
        assert wc.edge_probability(1, 3) == pytest.approx(1.0 / 3.0)
        assert wc.edge_probability(0, 1) == pytest.approx(1.0)

    def test_structure_preserved(self):
        g = generators.erdos_renyi(80, 4.0, rng=1)
        wc = weighting.weighted_cascade(g)
        assert wc.num_edges == g.num_edges
        assert set((u, v) for u, v, _ in wc.edges()) == \
            set((u, v) for u, v, _ in g.edges())

    def test_all_probabilities_valid(self):
        g = generators.preferential_attachment(100, 3, rng=2)
        wc = weighting.weighted_cascade(g)
        probs = [p for _, _, p in wc.edges()]
        assert all(0 < p <= 1 for p in probs)

    def test_incoming_probabilities_sum_to_one(self):
        g = generators.erdos_renyi(60, 5.0, rng=3)
        wc = weighting.weighted_cascade(g)
        for node in range(60):
            _, probs = wc.in_neighbors(node)
            if len(probs):
                assert probs.sum() == pytest.approx(1.0)


class TestUniform:
    def test_constant_probability(self):
        g = generators.line_graph(10)
        u = weighting.uniform(g, 0.05)
        assert all(p == pytest.approx(0.05) for _, _, p in u.edges())

    def test_invalid_probability(self):
        g = generators.line_graph(3)
        with pytest.raises(ValueError):
            weighting.uniform(g, 1.5)


class TestTrivalency:
    def test_values_from_choices(self):
        g = generators.erdos_renyi(50, 4.0, rng=4)
        t = weighting.trivalency(g, rng=5)
        values = {round(p, 4) for _, _, p in t.edges()}
        assert values <= {0.1, 0.01, 0.001}

    def test_custom_choices(self):
        g = generators.line_graph(20)
        t = weighting.trivalency(g, rng=5, choices=(0.5,))
        assert all(p == pytest.approx(0.5) for _, _, p in t.edges())

    def test_invalid_choice(self):
        g = generators.line_graph(3)
        with pytest.raises(ValueError):
            weighting.trivalency(g, rng=1, choices=(2.0,))
