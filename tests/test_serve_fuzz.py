"""Protocol fuzzing: malformed frames must never crash or hang serving.

Feeds adversarial JSON-lines input — truncated/malformed JSON, random
binary garbage, invalid UTF-8, oversized (> max_line_bytes) frames,
interleaved and split frames — to both the synchronous stdio dispatch
core and the concurrent TCP endpoint.  Every frame must be answered with
a typed error envelope (``error.code`` in
:data:`repro.api.protocol.ERROR_CODES`) or served, the connection must
stay usable afterwards, and nothing may raise or deadlock (every await
is bounded by ``asyncio.wait_for``).

The generator is seeded (no hypothesis dependency): the same corpus is
replayed on every run.
"""

from __future__ import annotations

import asyncio
import io
import json
import random
import string

import pytest

from repro.api import EngineConfig, RunSpec, WorkloadSpec, make_request
from repro.api.protocol import ERROR_CODES
from repro.cli import main
from repro.index import build_index
from repro.serve import AllocationServer, IndexRegistry
from repro.utility.configs import configuration_model

#: frame cap used by the fuzz servers — small enough that the oversized
#: corpus stays fast, still large enough for real requests
MAX_LINE = 64 * 1024

SPEC = RunSpec(
    algorithm="SeqGRD-NM",
    workload=WorkloadSpec(network="nethept", scale=0.01,
                          configuration="C1", budgets={"i": 2, "j": 2}),
    engine=EngineConfig(seed=4, samples=10, max_rr_sets=2000))


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory):
    from repro.graphs.datasets import load_network

    tmp = tmp_path_factory.mktemp("fuzz-indexes")
    graph = load_network("nethept", scale=0.01, rng=4)
    model = configuration_model("C1")
    index = build_index(
        graph, model, sampler="marginal",
        budgets=dict(SPEC.workload.budgets),
        options=SPEC.engine.imm_options(), seed=SPEC.engine.seed,
        meta_extra={"network": "nethept", "scale": 0.01,
                    "configuration": "C1", "graph_seed": 4,
                    "fixed_imm_item": None, "fixed_imm_budget": 50})
    index.save(tmp / "fuzz-idx")
    return tmp


@pytest.fixture()
def server(index_dir):
    registry = IndexRegistry(directory=index_dir, capacity=2)
    return AllocationServer(registry, max_line_bytes=MAX_LINE)


def fuzz_corpus(seed: int, count: int = 120):
    """Seeded adversarial frames: ``(label, bytes)`` pairs."""
    rng = random.Random(seed)
    valid = json.dumps(make_request(SPEC)).encode()
    corpus = [
        ("empty", b""),
        ("whitespace", b"   \t  "),
        ("null", b"null"),
        ("number", b"42"),
        ("array", b"[1, 2, 3]"),
        ("string", b'"just a string"'),
        ("truncated-object", b'{"v": 1, "spec": {"algorithm": "SeqG'),
        ("unterminated-string", b'{"v": 1, "x": "never closed'),
        ("trailing-comma", b'{"v": 1,}'),
        ("two-objects-one-line", b'{"op": "ping"} {"op": "ping"}'),
        ("invalid-utf8", b"\xff\xfe\x00\x80 not utf-8"),
        ("utf8-continuation", b"\x80\x80\x80"),
        ("nul-bytes", b"\x00\x00\x00"),
        ("wrong-version", b'{"v": 999, "spec": {}}'),
        ("spec-not-object", b'{"v": 1, "spec": 17}'),
        ("bogus-spec-fields", b'{"v": 1, "spec": {"algorithm": '
                              b'"SeqGRD-NM", "workload": {"bogus": 1}}}'),
        ("unknown-algorithm", b'{"v": 1, "spec": {"algorithm": "Nope"}}'),
        ("unknown-op", b'{"op": "explode"}'),
        ("op-wrong-type", b'{"op": [1, 2]}'),
        ("metrics-op", b'{"op": "metrics"}'),
        ("metrics-op-with-id", b'{"op": "metrics", "id": 1}'),
        ("metrics-op-weird-id", b'{"op": "metrics", "id": [1, {"a": 2}]}'),
        ("metrics-op-extra-keys", b'{"op": "metrics", "spec": 7, "x": null}'),
        ("oversized", b"x" * (MAX_LINE + 1024)),
        ("oversized-json", b'{"pad": "' + b"y" * (MAX_LINE + 64)
                           + b'"}'),
        ("deep-nesting", b'{"v": ' + b'[' * 40 + b']' * 40 + b"}"),
    ]
    for i in range(count - len(corpus)):
        kind = rng.randrange(4)
        if kind == 0:  # random binary garbage
            frame = bytes(rng.randrange(256)
                          for _ in range(rng.randrange(1, 200)))
            # keep it one frame
            frame = frame.replace(b"\n", b"?")
        elif kind == 1:  # truncated valid request
            cut = rng.randrange(1, len(valid))
            frame = valid[:cut]
        elif kind == 2:  # valid JSON, adversarial shape
            frame = json.dumps({
                "v": rng.choice([0, 1, 2, "1", None]),
                "id": rng.choice([1, "x", None, [1]]),
                "spec": rng.choice([{}, [], 7, "spec", None]),
            }).encode()
        else:  # printable noise
            frame = "".join(rng.choice(string.printable.replace("\n", ""))
                            for _ in range(rng.randrange(1, 120))).encode()
        yield f"generated-{i}", frame


def assert_envelope_or_served(label, response):
    """A fuzz response is a typed envelope or a legitimate answer."""
    assert isinstance(response, dict), label
    if response.get("ok"):
        return
    error = response.get("error")
    assert error is not None, (label, response)
    if isinstance(error, dict):  # typed v1 envelope
        assert error.get("code") in ERROR_CODES, (label, response)
        assert error.get("message"), (label, response)
    else:  # legacy dialect answers with a message string
        assert isinstance(error, str) and error, (label, response)


class TestStdioCoreFuzz:
    def test_corpus_never_raises(self, server):
        served = 0
        for label, frame in fuzz_corpus(seed=2020):
            response = server.dispatch_line(frame)
            if response is None:  # blank line
                continue
            served += 1
            assert_envelope_or_served(label, response)
        assert served > 90

    def test_text_frames_match_bytes_frames(self, server):
        for label, frame in fuzz_corpus(seed=7, count=60):
            try:
                text = frame.decode("utf-8")
            except UnicodeDecodeError:
                continue
            from_text = server.dispatch_line(text)
            from_bytes = server.dispatch_line(frame)
            if from_text is None or from_bytes is None:
                assert from_text == from_bytes, label
                continue
            # responses may differ in volatile fields (latency, counters);
            # the verdict and error code must agree
            assert from_text.get("ok") == from_bytes.get("ok"), label
            error_t, error_b = from_text.get("error"), from_bytes.get("error")
            if isinstance(error_t, dict) or isinstance(error_b, dict):
                assert error_t["code"] == error_b["code"], label

    def test_oversized_text_line_enveloped(self, server):
        response = server.dispatch_line("z" * (MAX_LINE + 5))
        assert response["ok"] is False
        assert response["error"]["code"] == "oversized-request"

    def test_valid_request_after_garbage(self, server):
        for _label, frame in fuzz_corpus(seed=11, count=40):
            server.dispatch_line(frame)
        response = server.dispatch_line(json.dumps(make_request(SPEC)))
        assert response["ok"] is True
        assert set(response["allocation"]) == {"i", "j"}


class TestStdioLoopFuzz:
    def test_cli_stdin_loop_survives_garbage(self, index_dir, capsys,
                                             monkeypatch):
        frames = ['{"op": "ping"}', "garbage", '{"v": 1}', "[1,2]",
                  "x" * 2048, json.dumps(make_request(SPEC, request_id=9))]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(frames) + "\n"))
        assert main(["serve", "--index", str(index_dir / "fuzz-idx")]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert len(lines) == len(frames)
        assert lines[0]["pong"] is True
        for response in lines[1:-1]:
            assert response["ok"] is False
            assert response["error"]["code"] in ERROR_CODES
        assert lines[-1]["ok"] is True and lines[-1]["id"] == 9


class TestTcpFuzz:
    def _run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=120))

    def test_tcp_corpus_then_valid_request(self, server):
        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            sent = 0
            for label, frame in fuzz_corpus(seed=2021, count=80):
                if not frame.strip():
                    continue
                writer.write(frame + b"\n")
                await writer.drain()
                sent += 1
                line = await asyncio.wait_for(reader.readline(), 30)
                assert line, f"{label}: connection died"
                assert_envelope_or_served(label, json.loads(line))
            assert sent > 50
            # the same connection still serves a real request
            writer.write(json.dumps(make_request(SPEC, request_id=1))
                         .encode() + b"\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 60))
            assert response["ok"] is True, response
            writer.close()
            await server.shutdown(drain=True)
            return response

        response = self._run(scenario())
        assert response["server"]["index"] == "fuzz-idx"

    def test_oversized_frame_resynchronizes(self, server):
        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            # a 3x-oversized frame streamed in chunks, then a ping on the
            # same connection: the server must discard + resync
            writer.write(b"a" * (3 * MAX_LINE) + b"\n" + b'{"op": "ping"}\n')
            await writer.drain()
            first = json.loads(await asyncio.wait_for(reader.readline(), 30))
            second = json.loads(await asyncio.wait_for(reader.readline(), 30))
            writer.close()
            await server.shutdown(drain=True)
            return first, second

        first, second = self._run(scenario())
        assert first["error"]["code"] == "oversized-request"
        assert second["pong"] is True

    def test_interleaved_and_split_frames(self, server):
        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            # one write carrying: a complete ping, an interleaved double
            # object (malformed), and the first half of a split request
            request = json.dumps(make_request(SPEC, request_id=3)).encode()
            writer.write(b'{"op": "ping"}\n'
                         b'{"op": "ping"} {"op": "ping"}\n' + request[:20])
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.write(request[20:] + b"\n")
            await writer.drain()
            responses = []
            for _ in range(3):
                responses.append(json.loads(await asyncio.wait_for(
                    reader.readline(), 60)))
            writer.close()
            await server.shutdown(drain=True)
            return responses

        ping, interleaved, split = self._run(scenario())
        assert ping["pong"] is True
        assert interleaved["ok"] is False
        assert interleaved["error"]["code"] == "malformed-request"
        assert split["ok"] is True and split["id"] == 3

    def test_truncated_frame_then_disconnect(self, server):
        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "pi')  # no newline, then vanish
            await writer.drain()
            writer.close()
            # the server must survive and accept a new client
            reader2, writer2 = await asyncio.open_connection(host, port)
            writer2.write(b'{"op": "ping"}\n')
            await writer2.drain()
            response = json.loads(await asyncio.wait_for(
                reader2.readline(), 30))
            writer2.close()
            await server.shutdown(drain=True)
            return response

        assert self._run(scenario())["pong"] is True

    def test_invalid_utf8_on_tcp(self, server):
        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"\xff\xfe\xfd{\x80}\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 30))
            writer.close()
            await server.shutdown(drain=True)
            return response

        response = self._run(scenario())
        assert response["error"]["code"] == "malformed-request"
        assert "UTF-8" in response["error"]["message"]


def http_fuzz_corpus(seed: int, count: int = 40):
    """Seeded adversarial HTTP requests for the metrics exporter."""
    rng = random.Random(seed)
    corpus = [
        ("empty-line", b"\r\n"),
        ("bare-newline", b"\n"),
        ("no-version", b"GET /metrics\r\n\r\n"),
        ("bad-version", b"GET /metrics JUNK/9\r\n\r\n"),
        ("post", b"POST /metrics HTTP/1.1\r\n\r\n"),
        ("put", b"PUT / HTTP/1.0\r\n\r\n"),
        ("unknown-path", b"GET /secrets HTTP/1.1\r\n\r\n"),
        ("query-string", b"GET /metrics?x=1 HTTP/1.1\r\n\r\n"),
        ("extra-tokens", b"GET /metrics HTTP/1.1 junk\r\n\r\n"),
        ("binary", b"\xff\xfe\x80\x00garbage\r\n\r\n"),
        ("long-uri", b"GET /" + b"a" * 4096 + b" HTTP/1.1\r\n\r\n"),
        ("many-headers", b"GET /metrics HTTP/1.1\r\n"
                         + b"X-Pad: y\r\n" * 64 + b"\r\n"),
    ]
    yield from corpus
    for i in range(count - len(corpus)):
        frame = bytes(rng.randrange(256)
                      for _ in range(rng.randrange(1, 120)))
        yield f"http-generated-{i}", frame.replace(b"\n", b"?") + b"\r\n\r\n"


class TestMetricsHttpFuzz:
    """The Prometheus exporter must answer garbage with an HTTP status
    and keep scraping after every adversarial connection."""

    def _run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=120))

    async def _request(self, host, port, raw):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(raw)
        await writer.drain()
        body = await asyncio.wait_for(reader.read(), 30)
        writer.close()
        return body

    def test_exporter_survives_http_garbage(self, server):
        from repro.obs.httpexp import MetricsExporter

        async def scenario():
            exporter = MetricsExporter([server.metrics])
            await exporter.start("127.0.0.1", 0)
            host, port = exporter.addresses[0]
            # a serve request so the scrape has nonzero counters
            server.dispatch_line('{"op": "ping"}')
            try:
                for label, frame in http_fuzz_corpus(seed=2022):
                    body = await self._request(host, port, frame)
                    assert body.startswith(b"HTTP/1.1 "), (label, body[:60])
                    status = int(body.split(b" ", 2)[1])
                    assert status in (200, 400, 404, 405, 408), (label, status)
                # the exporter still serves a clean scrape afterwards
                scrape = await self._request(
                    host, port, b"GET /metrics HTTP/1.1\r\n\r\n")
                assert scrape.startswith(b"HTTP/1.1 200 OK"), scrape[:60]
                assert b"repro_requests_total" in scrape
            finally:
                await exporter.close()

        self._run(scenario())
