"""Tests for the CELF-accelerated greedy welfare maximizer."""

import pytest

from repro.baselines.celf import celf_greedy_wm
from repro.baselines.greedy_wm import greedy_wm
from repro.diffusion.estimators import estimate_welfare
from repro.graphs import generators, weighting
from repro.utility.configs import two_item_config


class TestCelfGreedyWM:
    def test_budgets_respected(self, small_er_graph, c1_model):
        result = celf_greedy_wm(small_er_graph, c1_model, {"i": 2, "j": 1},
                                n_marginal_samples=10,
                                candidate_pool=range(20), rng=1)
        assert result.allocation.seed_count("i") == 2
        assert result.allocation.seed_count("j") == 1
        assert result.algorithm == "CELF-greedyWM"

    def test_records_evaluation_count(self, small_er_graph, c1_model):
        pool = range(15)
        result = celf_greedy_wm(small_er_graph, c1_model, {"i": 2, "j": 2},
                                n_marginal_samples=10, candidate_pool=pool,
                                rng=2)
        evaluations = result.details["marginal_evaluations"]
        candidates = result.details["candidate_evaluations"]
        # every candidate is still scored in the initial pass ...
        assert candidates >= 2 * len(pool)
        assert candidates <= 2 * len(pool) * 4
        # ... but as one batched estimator call per item, so far fewer
        # Monte-Carlo invocations than candidate scores
        assert result.details["initial_pass_calls"] == 2
        assert result.details["initial_pass_calls_saved"] == \
            2 * (len(pool) - 1)
        assert 2 <= evaluations < candidates

    def test_fewer_evaluations_than_exhaustive_greedy(self, small_er_graph):
        model = two_item_config("C1", noise_sigma=0.0)
        pool = list(range(20))
        budgets = {"i": 3, "j": 3}
        celf = celf_greedy_wm(small_er_graph, model, budgets,
                              n_marginal_samples=8, candidate_pool=pool,
                              rng=3)
        exhaustive_evaluations = len(pool) * 2 * sum(budgets.values())
        assert celf.details["candidate_evaluations"] < exhaustive_evaluations
        assert celf.details["marginal_evaluations"] < \
            celf.details["candidate_evaluations"]

    def test_quality_matches_greedy_wm_on_small_instance(self, star10):
        model = two_item_config("C1", noise_sigma=0.0)
        budgets = {"i": 1, "j": 1}
        celf = celf_greedy_wm(star10, model, budgets, n_marginal_samples=10,
                              rng=4)
        greedy = greedy_wm(star10, model, budgets, n_marginal_samples=10,
                           rng=4)
        celf_welfare = estimate_welfare(star10, model,
                                        celf.combined_allocation(),
                                        n_samples=50, rng=5).mean
        greedy_welfare = estimate_welfare(star10, model,
                                          greedy.combined_allocation(),
                                          n_samples=50, rng=5).mean
        assert celf_welfare == pytest.approx(greedy_welfare, rel=0.1)

    def test_first_pick_is_best_candidate(self, star10):
        model = two_item_config("C2", noise_sigma=0.0)
        result = celf_greedy_wm(star10, model, {"i": 1, "j": 0},
                                n_marginal_samples=10, rng=6)
        assert result.allocation.seeds_for("i") == (0,)

    def test_zero_budget_returns_empty(self, small_er_graph, c1_model):
        result = celf_greedy_wm(small_er_graph, c1_model, {"i": 0}, rng=1)
        assert result.allocation.is_empty()
        assert result.details["marginal_evaluations"] == 0
        assert result.details["zero_budget"] is True

    def test_evaluate_welfare_option(self, small_er_graph, c1_model):
        result = celf_greedy_wm(small_er_graph, c1_model, {"i": 1, "j": 1},
                                n_marginal_samples=10,
                                candidate_pool=range(10),
                                evaluate_welfare=True,
                                n_evaluation_samples=30, rng=7)
        assert result.estimated_welfare is not None
