"""Tests for the packed-transport parallel index builder.

Covers the PR-10 rework: :class:`PackedRRBatch` shard transport, the
zero-copy merges into :class:`RRCollection` / :class:`StreamingIndexWriter`,
the warm shared-memory worker pools, and the failure paths (worker death
fallback, spawn transport, shared-memory cleanup).
"""

import glob
import multiprocessing
import os
import subprocess
import sys
import textwrap
import time
import warnings

import numpy as np
import pytest

from repro.graphs import generators, weighting
from repro.index import build_index, pool_stats, shutdown_worker_pools
from repro.index.builder import (
    DEFAULT_SHARD_SIZE,
    ParallelRRSampler,
    ShardSpec,
    _sample_shard,
)
from repro.index.pool import SHM_PREFIX
from repro.index.stream import StreamingIndexWriter
from repro.rrsets.coverage import PackedRRBatch, RRCollection
from repro.rrsets.imm import IMMOptions
from repro.utility.configs import two_item_config

OPTIONS = IMMOptions(max_rr_sets=2000)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def graph():
    g = generators.erdos_renyi(150, avg_degree=4.0, rng=11, directed=True,
                               name="er150")
    return weighting.weighted_cascade(g)


@pytest.fixture(autouse=True)
def _drain_pools():
    """Each test starts and ends with an empty warm-pool registry."""
    shutdown_worker_pools()
    yield
    shutdown_worker_pools()


def batches_equal(a: PackedRRBatch, b: PackedRRBatch) -> bool:
    return (np.array_equal(a.offsets, b.offsets)
            and np.array_equal(a.nodes, b.nodes)
            and np.array_equal(a.weights, b.weights))


def shm_blocks():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}-*")


def _exit_worker(task):
    """Simulated worker crash; module-level so it pickles by reference."""
    os._exit(1)


# ----------------------------------------------------------------------
# PackedRRBatch container
# ----------------------------------------------------------------------
class TestPackedRRBatch:
    def test_from_pairs_round_trips(self):
        pairs = [(np.array([3, 1, 4], dtype=np.int64), 1.0),
                 (np.array([], dtype=np.int64), 0.5),
                 (np.array([2], dtype=np.int64), 2.25)]
        batch = PackedRRBatch.from_pairs(pairs, num_nodes=10)
        assert len(batch) == 3
        assert batch.num_members == 4
        out = list(batch)
        for (want_nodes, want_w), (got_nodes, got_w) in zip(pairs, out):
            np.testing.assert_array_equal(want_nodes, got_nodes)
            assert want_w == got_w

    def test_from_arrays_validates_bounds_before_narrowing(self):
        # an id past the int32 range must be caught, not silently wrapped
        offsets = np.array([0, 1], dtype=np.int64)
        nodes = np.array([2**40], dtype=np.int64)
        with pytest.raises(Exception):
            PackedRRBatch.from_arrays(offsets, nodes,
                                      np.ones(1), num_nodes=100,
                                      id_dtype=np.int32)

    def test_concat_matches_from_pairs(self):
        rng = np.random.default_rng(7)
        pairs = [(rng.choice(20, size=int(rng.integers(0, 6)),
                             replace=False).astype(np.int64),
                  float(rng.random()))
                 for _ in range(30)]
        whole = PackedRRBatch.from_pairs(pairs, num_nodes=20)
        parts = [PackedRRBatch.from_pairs(pairs[i:i + 7], num_nodes=20)
                 for i in range(0, 30, 7)]
        assert batches_equal(whole, PackedRRBatch.concat(parts))

    def test_concat_skips_none_and_empty_input(self):
        empty = PackedRRBatch.concat([])
        assert len(empty) == 0 and empty.num_members == 0
        one = PackedRRBatch.from_pairs(
            [(np.array([1], dtype=np.int64), 1.0)], num_nodes=5)
        assert batches_equal(one, PackedRRBatch.concat([None, one, None]))

    def test_rejects_malformed_offsets(self):
        with pytest.raises(Exception):
            PackedRRBatch(offsets=np.array([1, 2], dtype=np.int64),
                          nodes=np.array([0], dtype=np.int64),
                          weights=np.ones(1))
        with pytest.raises(Exception):
            PackedRRBatch(offsets=np.array([0, 2, 1], dtype=np.int64),
                          nodes=np.array([0, 1], dtype=np.int64),
                          weights=np.ones(2))


# ----------------------------------------------------------------------
# zero-copy merges
# ----------------------------------------------------------------------
class TestPackedMerge:
    def pairs(self, n=200, num_nodes=50, seed=3):
        rng = np.random.default_rng(seed)
        return [(rng.choice(num_nodes, size=int(rng.integers(0, 8)),
                            replace=False).astype(np.int64),
                 float(rng.random()) if i % 3 else 1.0)
                for i in range(n)]

    def test_extend_packed_matches_repeated_add(self):
        pairs = self.pairs()
        loop = RRCollection(50)
        for nodes, weight in pairs:
            loop.add(nodes, weight)
        packed = RRCollection(50)
        packed.extend(PackedRRBatch.from_pairs(pairs, num_nodes=50))
        for want, got in zip(loop._packed(), packed._packed()):
            np.testing.assert_array_equal(want, got)
        # float accumulation order is part of the bit-identity contract
        assert loop.total_weight == packed.total_weight

    def test_extend_packed_rejects_out_of_range_ids(self):
        bad = PackedRRBatch.from_pairs(
            [(np.array([49], dtype=np.int64), 1.0)], num_nodes=50)
        small = RRCollection(10)
        with pytest.raises(Exception):
            small.extend_packed(bad)

    def test_streaming_append_packed_bit_identical_files(self, tmp_path):
        pairs = self.pairs(n=300)
        batch = PackedRRBatch.from_pairs(pairs, num_nodes=50)

        w1 = StreamingIndexWriter(tmp_path / "pairs", 50, chunk_members=64)
        w1.append(iter(pairs))
        npz1, _ = w1.finalize(meta={"sampler": "standard"})

        w2 = StreamingIndexWriter(tmp_path / "packed", 50, chunk_members=64)
        w2.append(batch)
        npz2, _ = w2.finalize(meta={"sampler": "standard"})

        assert npz1.read_bytes() == npz2.read_bytes()


# ----------------------------------------------------------------------
# worker-count invariance on the packed path
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestWorkerCountInvariance:
    def test_packed_arrays_identical_across_worker_counts(self, graph):
        spec = ShardSpec(kind="standard", graph=graph)
        reference = None
        for workers in (1, 2, 4):
            with ParallelRRSampler(spec, seed=99, workers=workers,
                                   shard_sets=64) as sampler:
                batch = sampler.generate(300)
            assert isinstance(batch, PackedRRBatch)
            assert len(batch) == 300
            if reference is None:
                reference = batch
            else:
                assert batches_equal(reference, batch)

    def test_odd_shard_remainders(self, graph):
        # counts that do not divide the shard size exercise the trailing
        # partial shard on both the serial and the pooled path
        spec = ShardSpec(kind="marginal", graph=graph,
                         blocked=frozenset({0, 5}))
        for count in (1, 63, 65, 129):
            with ParallelRRSampler(spec, seed=17, workers=1,
                                   shard_sets=64) as serial:
                want = serial.generate(count)
            with ParallelRRSampler(spec, seed=17, workers=3,
                                   shard_sets=64) as pooled:
                got = pooled.generate(count)
            assert len(got) == count
            assert batches_equal(want, got)

    def test_chunked_calls_match_one_shot_on_shard_multiples(self, graph):
        spec = ShardSpec(kind="standard", graph=graph)
        with ParallelRRSampler(spec, seed=5, workers=1,
                               shard_sets=64) as one:
            whole = one.generate(320)
        with ParallelRRSampler(spec, seed=5, workers=2,
                               shard_sets=64) as two:
            chunks = [two.generate(128), two.generate(192)]
        assert batches_equal(whole, PackedRRBatch.concat(chunks))

    def test_build_index_fingerprints_identical(self, graph):
        model = two_item_config("C1")
        kwargs = dict(sampler="marginal", budgets={"i": 3, "j": 2},
                      options=OPTIONS, seed=1234)
        one = build_index(graph, model, workers=1, **kwargs)
        four = build_index(graph, model, workers=4, **kwargs)
        np.testing.assert_array_equal(one._offsets, four._offsets)
        np.testing.assert_array_equal(one._nodes, four._nodes)
        np.testing.assert_array_equal(one._weights, four._weights)
        assert one.fingerprint == four.fingerprint


# ----------------------------------------------------------------------
# pool lifecycle: warm reuse, graceful close, death fallback
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestPoolLifecycle:
    def test_pool_stays_warm_across_samplers(self, graph):
        spec = ShardSpec(kind="standard", graph=graph)
        with ParallelRRSampler(spec, seed=1, workers=2,
                               shard_sets=32) as first:
            first.generate(128)
            assert pool_stats()["pools"] == 1
        # close() released the reference but kept the workers warm
        assert pool_stats() == {"pools": 1, "busy": 0}
        with ParallelRRSampler(spec, seed=2, workers=2,
                               shard_sets=32) as second:
            second.generate(128)
            assert pool_stats()["pools"] == 1  # reused, not respawned
        shutdown_worker_pools()
        assert pool_stats() == {"pools": 0, "busy": 0}

    def test_worker_death_falls_back_to_identical_results(self, graph,
                                                          monkeypatch):
        spec = ShardSpec(kind="standard", graph=graph)
        with ParallelRRSampler(spec, seed=21, workers=1,
                               shard_sets=32) as serial:
            want = serial.generate(160)

        # fork workers inherit the patched task runner and die on dispatch
        import repro.index.pool as pool_mod

        monkeypatch.setattr(pool_mod, "_run_shard_task", _exit_worker)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with ParallelRRSampler(spec, seed=21, workers=2,
                                   shard_sets=32) as sampler:
                got = sampler.generate(160)
                # a later call must not retry the broken pool
                sampler.generate(32)
        assert batches_equal(want, got)
        assert any("falling back to in-process" in str(w.message)
                   for w in caught)
        assert pool_stats() == {"pools": 0, "busy": 0}


# ----------------------------------------------------------------------
# spawn / shared-memory transport
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods()
    or not os.path.isdir("/dev/shm"),
    reason="spawn start method or /dev/shm unavailable")
class TestSpawnTransport:
    def test_spawn_path_bit_identical_and_cleaned_up(self, graph):
        spec = ShardSpec(kind="standard", graph=graph)
        with ParallelRRSampler(spec, seed=77, workers=1,
                               shard_sets=64) as serial:
            want = serial.generate(256)
        with ParallelRRSampler(spec, seed=77, workers=2, shard_sets=64,
                               start_method="spawn") as sampler:
            got = sampler.generate(256)
            assert shm_blocks(), "spawn transport should use shared memory"
        assert batches_equal(want, got)
        shutdown_worker_pools()
        assert shm_blocks() == []

    def test_shm_cleaned_after_abnormal_parent_exit(self, graph, tmp_path):
        # a parent that dies without running atexit hooks must not leak
        # /dev/shm blocks: the resource tracker owns the creator-side
        # registration and unlinks on its behalf
        script = tmp_path / "crash.py"
        script.write_text(textwrap.dedent("""
            import os
            from repro.graphs import generators, weighting
            from repro.index.builder import ParallelRRSampler, ShardSpec

            g = weighting.weighted_cascade(
                generators.erdos_renyi(80, avg_degree=3.0, rng=1,
                                       directed=True, name="er80"))
            sampler = ParallelRRSampler(
                ShardSpec(kind="standard", graph=g), seed=3, workers=2,
                shard_sets=32, start_method="spawn")
            sampler.generate(128)
            os._exit(3)  # skip atexit + finalizers on purpose
        """))
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
        proc = subprocess.run([sys.executable, str(script)], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 3, proc.stderr
        deadline = time.monotonic() + 30.0
        while shm_blocks() and time.monotonic() < deadline:
            time.sleep(0.2)  # the tracker reaps asynchronously
        assert shm_blocks() == []


# ----------------------------------------------------------------------
# shard sampling building blocks
# ----------------------------------------------------------------------
class TestSampleShard:
    def test_python_and_vectorized_engines_both_pack(self, graph):
        seq = np.random.SeedSequence(41)
        for kind in ("standard", "marginal"):
            spec = ShardSpec(kind=kind, graph=graph, engine="python")
            batch = _sample_shard(spec, graph, seq, 16)
            assert isinstance(batch, PackedRRBatch)
            assert len(batch) == 16
            assert np.all(batch.weights == 1.0)

    def test_default_shard_size_is_smoke_friendly(self):
        # the pool only wins if smoke-scale calls split into several
        # shards; guard against the old serial-by-default regression
        assert DEFAULT_SHARD_SIZE <= 1024
