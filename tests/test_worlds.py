"""Tests for possible-world sampling (edge worlds and noise worlds)."""

import numpy as np
import pytest

from repro.diffusion.worlds import EdgeWorld, LazyEdgeWorld, sample_edge_world
from repro.graphs import generators
from repro.graphs.graph import DirectedGraph


class TestSampleEdgeWorld:
    def test_probability_one_keeps_all_edges(self, rng):
        g = generators.line_graph(6, prob=1.0)
        world = sample_edge_world(g, rng)
        assert world.num_live_edges() == g.num_edges

    def test_probability_zero_removes_all_edges(self, rng):
        g = generators.line_graph(6, prob=0.0)
        world = sample_edge_world(g, rng)
        assert world.num_live_edges() == 0

    def test_live_edges_subset_of_graph_edges(self, rng):
        g = generators.erdos_renyi(80, 4.0, rng=1)
        world = sample_edge_world(g, rng)
        for u in range(g.num_nodes):
            graph_nbrs = set(g.out_neighbors(u)[0].tolist())
            for v in world.out_neighbors(u):
                assert int(v) in graph_nbrs

    def test_live_fraction_close_to_probability(self, rng):
        g = generators.complete_graph(40, prob=0.3)
        world = sample_edge_world(g, rng)
        fraction = world.num_live_edges() / g.num_edges
        assert 0.2 < fraction < 0.4

    def test_num_nodes(self, rng):
        g = generators.line_graph(7)
        assert sample_edge_world(g, rng).num_nodes == 7


class TestLazyEdgeWorld:
    def test_caching_is_consistent(self):
        g = generators.complete_graph(20, prob=0.5)
        world = LazyEdgeWorld(g, rng=3)
        first = world.out_neighbors(0)
        second = world.out_neighbors(0)
        assert np.array_equal(first, second)

    def test_deterministic_probability_extremes(self):
        g = DirectedGraph.from_edges(3, [(0, 1, 1.0), (0, 2, 0.0)])
        world = LazyEdgeWorld(g, rng=1)
        live = world.out_neighbors(0).tolist()
        assert live == [1]

    def test_no_out_edges(self):
        g = generators.line_graph(3)
        world = LazyEdgeWorld(g, rng=1)
        assert len(world.out_neighbors(2)) == 0

    def test_num_nodes(self):
        g = generators.line_graph(4)
        assert LazyEdgeWorld(g, rng=1).num_nodes == 4

    def test_same_seed_same_world(self):
        g = generators.erdos_renyi(50, 4.0, rng=2)
        w1 = LazyEdgeWorld(g, rng=9)
        w2 = LazyEdgeWorld(g, rng=9)
        for node in range(50):
            assert np.array_equal(w1.out_neighbors(node),
                                  w2.out_neighbors(node))


class TestEdgeWorldDataclass:
    def test_manual_world(self):
        world = EdgeWorld(live_out=[np.array([1]), np.array([], dtype=np.int64)])
        assert world.num_nodes == 2
        assert world.num_live_edges() == 1
        assert world.out_neighbors(0).tolist() == [1]
