"""Tests for RR-set collections and greedy weighted maximum coverage."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AlgorithmError
from repro.rrsets.coverage import RRCollection, node_selection


def make_collection(num_nodes, sets_and_weights):
    collection = RRCollection(num_nodes)
    for nodes, weight in sets_and_weights:
        collection.add(np.array(nodes, dtype=np.int64), weight)
    return collection


class TestRRCollection:
    def test_basic_counts(self):
        c = make_collection(5, [([0, 1], 1.0), ([2], 2.0), ([], 1.0)])
        assert c.num_sets == 3
        assert c.num_nodes == 5
        assert c.total_weight == 4.0
        assert c.average_set_size() == pytest.approx(1.0)

    def test_covered_weight(self):
        c = make_collection(5, [([0, 1], 1.0), ([1, 2], 2.0), ([3], 4.0)])
        assert c.covered_weight([1]) == 3.0
        assert c.covered_weight([0, 3]) == 5.0
        assert c.covered_weight([4]) == 0.0
        assert c.covered_weight([]) == 0.0

    def test_coverage_fraction(self):
        c = make_collection(4, [([0], 1.0), ([1], 1.0)])
        assert c.coverage_fraction([0]) == pytest.approx(0.5)
        assert RRCollection(4).coverage_fraction([0]) == 0.0

    def test_empty_sets_count_but_cannot_be_covered(self):
        c = make_collection(4, [([], 1.0), ([0], 1.0)])
        assert c.num_sets == 2
        assert c.covered_weight([0]) == 1.0
        assert c.coverage_fraction([0]) == pytest.approx(0.5)

    def test_sets_covered_by(self):
        c = make_collection(4, [([0, 1], 1.0), ([1], 1.0)])
        assert list(c.sets_covered_by(1)) == [0, 1]
        assert list(c.sets_covered_by(3)) == []

    def test_extend(self):
        c = RRCollection(3)
        c.extend([(np.array([0]), 1.0), (np.array([1]), 0.5)])
        assert c.num_sets == 2
        assert c.weights().tolist() == [1.0, 0.5]


class TestNodeSelection:
    def test_single_best_node(self):
        c = make_collection(4, [([0, 1], 1.0), ([1, 2], 1.0), ([3], 1.0)])
        result = node_selection(c, 1)
        assert result.seeds == [1]
        assert result.covered_weight == 2.0

    def test_greedy_order_and_prefixes(self):
        c = make_collection(5, [([0], 1.0), ([0], 1.0), ([1], 1.0),
                                ([2], 1.0), ([2], 1.0), ([2], 1.0)])
        result = node_selection(c, 3)
        assert result.seeds == [2, 0, 1]
        assert result.prefix_weights == [3.0, 5.0, 6.0]
        assert result.prefix(2) == [2, 0]

    def test_weights_matter(self):
        c = make_collection(3, [([0], 10.0), ([1], 1.0), ([1], 1.0)])
        result = node_selection(c, 1)
        assert result.seeds == [0]

    def test_k_zero(self):
        c = make_collection(3, [([0], 1.0)])
        result = node_selection(c, 0)
        assert result.seeds == []
        assert result.covered_weight == 0.0

    def test_k_larger_than_nodes(self):
        c = make_collection(2, [([0], 1.0), ([1], 1.0)])
        result = node_selection(c, 10)
        assert len(result.seeds) == 2

    def test_negative_k_rejected(self):
        with pytest.raises(AlgorithmError):
            node_selection(RRCollection(2), -1)

    def test_matches_bruteforce_on_small_instances(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            sets = [(rng.choice(6, size=rng.integers(1, 4), replace=False),
                     float(rng.integers(1, 5)))
                    for _ in range(8)]
            c = make_collection(6, sets)
            greedy = node_selection(c, 2).covered_weight
            best = max(c.covered_weight(pair)
                       for pair in itertools.combinations(range(6), 2))
            # greedy max coverage is a (1 - 1/e) approximation; on these tiny
            # instances it is usually optimal but never worse than the bound
            assert greedy >= (1 - 1 / np.e) * best - 1e-9


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
rr_sets_strategy = st.lists(
    st.tuples(st.lists(st.integers(min_value=0, max_value=9), min_size=0,
                       max_size=5),
              st.floats(min_value=0.0, max_value=10.0)),
    min_size=1, max_size=20)


@settings(max_examples=40, deadline=None)
@given(sets=rr_sets_strategy, k=st.integers(min_value=1, max_value=5))
def test_selection_coverage_matches_collection_coverage(sets, k):
    collection = make_collection(10, [(list(set(nodes)), w)
                                      for nodes, w in sets])
    result = node_selection(collection, k)
    assert result.covered_weight == pytest.approx(
        collection.covered_weight(result.seeds))
    # prefix weights are non-decreasing
    assert all(a <= b + 1e-9 for a, b in
               zip(result.prefix_weights, result.prefix_weights[1:]))


@settings(max_examples=40, deadline=None)
@given(sets=rr_sets_strategy)
def test_greedy_first_pick_is_best_single_node(sets):
    collection = make_collection(10, [(list(set(nodes)), w)
                                      for nodes, w in sets])
    result = node_selection(collection, 1)
    if result.seeds:
        best_single = max(collection.covered_weight([v]) for v in range(10))
        assert result.covered_weight == pytest.approx(best_single)
