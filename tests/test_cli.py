"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import CONFIGURATIONS, EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_configurations_buildable(self):
        for name, factory in CONFIGURATIONS.items():
            model = factory()
            assert model.num_items >= 1, name

    def test_experiment_registry_names(self):
        assert "figure3" in EXPERIMENTS
        assert "table6" in EXPERIMENTS


class TestNetworksCommand:
    def test_lists_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for name in ("nethept", "orkut", "twitter"):
            assert name in out

    def test_with_statistics(self, capsys):
        assert main(["networks", "--stats", "--scale", "0.005",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "standin_nodes" in out


class TestGenerateCommand:
    def test_writes_edge_list(self, tmp_path, capsys):
        output = tmp_path / "net.txt"
        assert main(["generate", "nethept", str(output),
                     "--scale", "0.005", "--seed", "3"]) == 0
        assert output.exists()
        content = output.read_text()
        assert "nodes" in content.splitlines()[0]

    def test_generated_file_is_loadable_by_run(self, tmp_path, capsys):
        output = tmp_path / "net.txt"
        main(["generate", "nethept", str(output), "--scale", "0.005",
              "--seed", "3"])
        code = main(["run", "--network", str(output), "--budget", "2",
                     "--samples", "30", "--max-rr-sets", "2000",
                     "--seed", "5"])
        assert code == 0


class TestRunCommand:
    def test_default_run_text_output(self, capsys):
        code = main(["run", "--network", "nethept", "--scale", "0.01",
                     "--budget", "2", "--samples", "30",
                     "--max-rr-sets", "2000", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "expected welfare" in out
        assert "seeds[i]" in out

    def test_json_output(self, capsys):
        code = main(["run", "--network", "nethept", "--scale", "0.01",
                     "--budget", "2", "--samples", "30",
                     "--max-rr-sets", "2000", "--seed", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "SeqGRD-NM"
        assert payload["expected_welfare"] > 0
        assert set(payload["allocation"]) <= {"i", "j"}

    def test_explicit_budgets(self, capsys):
        code = main(["run", "--network", "nethept", "--scale", "0.01",
                     "--budgets", '{"i": 3, "j": 1}', "--samples", "20",
                     "--max-rr-sets", "2000", "--seed", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["allocation"]["i"]) == 3
        assert len(payload["allocation"]["j"]) == 1

    def test_supgrd_with_fixed_imm_item(self, capsys):
        code = main(["run", "--algorithm", "SupGRD", "--configuration", "C6",
                     "--network", "nethept", "--scale", "0.01",
                     "--budget", "2", "--fixed-imm-item", "j",
                     "--fixed-imm-budget", "3", "--samples", "20",
                     "--max-rr-sets", "2000", "--seed", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "SupGRD"
        assert "i" in payload["allocation"]

    @pytest.mark.parametrize("algorithm", ["MaxGRD", "TCIM", "Round-robin",
                                           "Snake"])
    def test_other_algorithms(self, algorithm, capsys):
        code = main(["run", "--algorithm", algorithm, "--network", "nethept",
                     "--scale", "0.01", "--budget", "2", "--samples", "20",
                     "--marginal-samples", "10", "--max-rr-sets", "2000",
                     "--seed", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["expected_welfare"] >= 0


class TestExperimentCommand:
    def test_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "nethept" in out

    def test_json_output(self, capsys):
        assert main(["experiment", "table5", "--scale", "smoke",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4


class TestLearnCommand:
    def test_learn_from_file(self, tmp_path, capsys):
        logfile = tmp_path / "selections.txt"
        lines = ["rock"] * 30 + ["indie"] * 60 + ["rock,indie"] * 2 + ["other"] * 8
        logfile.write_text("\n".join(lines))
        assert main(["learn", str(logfile), "--items", "rock,indie",
                     "--json"]) == 0
        utilities = json.loads(capsys.readouterr().out)
        assert utilities["indie"] > utilities["rock"]

    def test_text_output(self, tmp_path, capsys):
        logfile = tmp_path / "selections.txt"
        logfile.write_text("a\nb\na\n# comment\n\n")
        assert main(["learn", str(logfile)]) == 0
        assert "learned utilities" in capsys.readouterr().out


class TestIndexCommands:
    BUILD = ["index", "build", "--network", "nethept", "--scale", "0.01",
             "--budget", "2", "--max-rr-sets", "2000", "--seed", "4"]
    RUN = ["run", "--network", "nethept", "--scale", "0.01", "--budget", "2",
           "--samples", "10", "--max-rr-sets", "2000", "--seed", "4"]

    def test_build_then_query_reproduces_run(self, tmp_path, capsys):
        assert main(self.RUN + ["--json"]) == 0
        run_payload = json.loads(capsys.readouterr().out)
        out = tmp_path / "idx"
        assert main(self.BUILD + ["--out", str(out), "--json"]) == 0
        build_payload = json.loads(capsys.readouterr().out)
        assert build_payload["num_rr_sets"] > 0
        assert (tmp_path / "idx.npz").exists()
        assert (tmp_path / "idx.manifest.json").exists()
        assert main(["index", "query", "--index", str(out), "--json"]) == 0
        query_payload = json.loads(capsys.readouterr().out)
        assert query_payload["allocation"] == run_payload["allocation"]

    def test_query_rejects_stale_manifest(self, tmp_path, capsys):
        out = tmp_path / "idx"
        assert main(self.BUILD + ["--out", str(out)]) == 0
        capsys.readouterr()
        manifest = tmp_path / "idx.manifest.json"
        data = json.loads(manifest.read_text())
        data["meta"]["fingerprint_extra"]["budgets"]["i"] = 99
        manifest.write_text(json.dumps(data))
        assert main(["index", "query", "--index", str(out)]) == 2
        assert "stale" in capsys.readouterr().err
        assert main(["index", "query", "--index", str(out),
                     "--no-verify"]) == 0

    def test_query_with_explicit_budget(self, tmp_path, capsys):
        out = tmp_path / "idx"
        assert main(self.BUILD + ["--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["index", "query", "--index", str(out), "--algorithm",
                     "select", "--budget", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["allocation"]["seeds"]) == 1

    def test_index_info_json_is_enriched(self, tmp_path, capsys):
        out = tmp_path / "idx"
        assert main(self.BUILD + ["--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["index", "info", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_sets"] > 0 and payload["num_nodes"] > 0
        assert payload["network"] == "nethept"
        assert payload["scale"] == 0.01
        assert payload["fingerprint"]
        # build provenance surfaced for ops tooling
        assert payload["budgets"] == {"i": 2, "j": 2}
        assert "engine" in payload and "workers" in payload
        assert "options" in payload

    def test_index_info_text_mentions_budgets(self, tmp_path, capsys):
        out = tmp_path / "idx"
        assert main(self.BUILD + ["--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["index", "info", str(out)]) == 0
        assert "budgets" in capsys.readouterr().out

    def test_serve_loop_round_trip(self, tmp_path, capsys, monkeypatch):
        import io

        out = tmp_path / "idx"
        assert main(self.BUILD + ["--out", str(out)]) == 0
        capsys.readouterr()
        requests = "\n".join([
            '{"id": 1, "op": "ping"}',
            '{"id": 2, "op": "query", "budgets": {"i": 2, "j": 1}}',
            '{"id": 3, "op": "query", "budgets": {"i": 2, "j": 1}}',
            "garbage",
            '{"id": 4, "op": "stats"}',
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(["serve", "--index", str(out)]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert lines[0]["pong"] is True
        assert lines[1]["cached"] is False and lines[2]["cached"] is True
        assert lines[1]["allocation"] == lines[2]["allocation"]
        assert lines[3]["ok"] is False
        assert lines[4]["stats"]["hits"] == 1


class TestTcpAddressArgument:
    def test_host_port_forms(self):
        from repro.api.cliargs import tcp_address_argument

        assert tcp_address_argument("127.0.0.1:7411") == ("127.0.0.1", 7411)
        assert tcp_address_argument(":8080") == ("127.0.0.1", 8080)
        assert tcp_address_argument("0") == ("127.0.0.1", 0)
        assert tcp_address_argument("0.0.0.0:0") == ("0.0.0.0", 0)

    def test_malformed_addresses_rejected(self):
        import argparse

        from repro.api.cliargs import tcp_address_argument

        for bad in ("host:port", "1.2.3.4:", "1.2.3.4:99999", "x"):
            with pytest.raises(argparse.ArgumentTypeError):
                tcp_address_argument(bad)

    def test_serve_requires_an_index_source(self, capsys):
        assert main(["serve"]) == 2
        assert "--index" in capsys.readouterr().err


class TestMetricsCli:
    def test_metrics_requires_an_endpoint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["metrics"])
        assert excinfo.value.code == 2
        assert "required" in capsys.readouterr().err

    def test_unreachable_server_is_exit_code_2(self, tmp_path, capsys):
        assert main(["metrics", "--unix", str(tmp_path / "nope.sock")]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_metrics_tcp_needs_concurrent_endpoint(self, capsys):
        assert main(["serve", "--index", "whatever",
                     "--metrics-tcp", "127.0.0.1:0"]) == 2
        assert "--metrics-tcp" in capsys.readouterr().err


class TestBudgetsArgument:
    RUN = ["run", "--network", "nethept", "--scale", "0.01", "--samples",
           "20", "--max-rr-sets", "2000", "--seed", "1"]

    def test_item_count_pairs_accepted(self, capsys):
        code = main(self.RUN + ["--budgets", "i=3,j=1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["allocation"]["i"]) == 3
        assert len(payload["allocation"]["j"]) == 1

    def test_malformed_pair_is_a_clean_parse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.RUN + ["--budgets", "i:3"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "malformed budget pair" in err
        assert "Traceback" not in err

    def test_non_integer_count_is_a_clean_parse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.RUN + ["--budgets", '{"i": "lots"}'])
        assert excinfo.value.code == 2
        assert "must be an integer" in capsys.readouterr().err

    def test_unknown_item_rejected_at_spec_validation(self, capsys):
        assert main(self.RUN + ["--budgets", "zebra=3"]) == 2
        err = capsys.readouterr().err
        assert "zebra" in err and "C1" in err

    def test_unsupported_knob_combination_fails_fast(self, capsys):
        assert main(self.RUN + ["--algorithm", "TCIM",
                    "--selection-strategy", "eager"]) == 2
        assert "selection_strategy" in capsys.readouterr().err


class TestErrorHandling:
    def test_library_errors_become_exit_code_2(self, tmp_path, capsys):
        logfile = tmp_path / "empty.txt"
        logfile.write_text("\n")
        assert main(["learn", str(logfile)]) == 2
        assert "error" in capsys.readouterr().err
