"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import CONFIGURATIONS, EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_configurations_buildable(self):
        for name, factory in CONFIGURATIONS.items():
            model = factory()
            assert model.num_items >= 1, name

    def test_experiment_registry_names(self):
        assert "figure3" in EXPERIMENTS
        assert "table6" in EXPERIMENTS


class TestNetworksCommand:
    def test_lists_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for name in ("nethept", "orkut", "twitter"):
            assert name in out

    def test_with_statistics(self, capsys):
        assert main(["networks", "--stats", "--scale", "0.005",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "standin_nodes" in out


class TestGenerateCommand:
    def test_writes_edge_list(self, tmp_path, capsys):
        output = tmp_path / "net.txt"
        assert main(["generate", "nethept", str(output),
                     "--scale", "0.005", "--seed", "3"]) == 0
        assert output.exists()
        content = output.read_text()
        assert "nodes" in content.splitlines()[0]

    def test_generated_file_is_loadable_by_run(self, tmp_path, capsys):
        output = tmp_path / "net.txt"
        main(["generate", "nethept", str(output), "--scale", "0.005",
              "--seed", "3"])
        code = main(["run", "--network", str(output), "--budget", "2",
                     "--samples", "30", "--max-rr-sets", "2000",
                     "--seed", "5"])
        assert code == 0


class TestRunCommand:
    def test_default_run_text_output(self, capsys):
        code = main(["run", "--network", "nethept", "--scale", "0.01",
                     "--budget", "2", "--samples", "30",
                     "--max-rr-sets", "2000", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "expected welfare" in out
        assert "seeds[i]" in out

    def test_json_output(self, capsys):
        code = main(["run", "--network", "nethept", "--scale", "0.01",
                     "--budget", "2", "--samples", "30",
                     "--max-rr-sets", "2000", "--seed", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "SeqGRD-NM"
        assert payload["expected_welfare"] > 0
        assert set(payload["allocation"]) <= {"i", "j"}

    def test_explicit_budgets(self, capsys):
        code = main(["run", "--network", "nethept", "--scale", "0.01",
                     "--budgets", '{"i": 3, "j": 1}', "--samples", "20",
                     "--max-rr-sets", "2000", "--seed", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["allocation"]["i"]) == 3
        assert len(payload["allocation"]["j"]) == 1

    def test_supgrd_with_fixed_imm_item(self, capsys):
        code = main(["run", "--algorithm", "SupGRD", "--configuration", "C6",
                     "--network", "nethept", "--scale", "0.01",
                     "--budget", "2", "--fixed-imm-item", "j",
                     "--fixed-imm-budget", "3", "--samples", "20",
                     "--max-rr-sets", "2000", "--seed", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "SupGRD"
        assert "i" in payload["allocation"]

    @pytest.mark.parametrize("algorithm", ["MaxGRD", "TCIM", "Round-robin",
                                           "Snake"])
    def test_other_algorithms(self, algorithm, capsys):
        code = main(["run", "--algorithm", algorithm, "--network", "nethept",
                     "--scale", "0.01", "--budget", "2", "--samples", "20",
                     "--marginal-samples", "10", "--max-rr-sets", "2000",
                     "--seed", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["expected_welfare"] >= 0


class TestExperimentCommand:
    def test_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "nethept" in out

    def test_json_output(self, capsys):
        assert main(["experiment", "table5", "--scale", "smoke",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4


class TestLearnCommand:
    def test_learn_from_file(self, tmp_path, capsys):
        logfile = tmp_path / "selections.txt"
        lines = ["rock"] * 30 + ["indie"] * 60 + ["rock,indie"] * 2 + ["other"] * 8
        logfile.write_text("\n".join(lines))
        assert main(["learn", str(logfile), "--items", "rock,indie",
                     "--json"]) == 0
        utilities = json.loads(capsys.readouterr().out)
        assert utilities["indie"] > utilities["rock"]

    def test_text_output(self, tmp_path, capsys):
        logfile = tmp_path / "selections.txt"
        logfile.write_text("a\nb\na\n# comment\n\n")
        assert main(["learn", str(logfile)]) == 0
        assert "learned utilities" in capsys.readouterr().out


class TestErrorHandling:
    def test_library_errors_become_exit_code_2(self, tmp_path, capsys):
        logfile = tmp_path / "empty.txt"
        logfile.write_text("\n")
        assert main(["learn", str(logfile)]) == 2
        assert "error" in capsys.readouterr().err
