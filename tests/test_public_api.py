"""The public API surface: everything advertised in ``repro.__all__`` works."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            assert hasattr(repro, name), f"{name} missing from repro"

    @pytest.mark.parametrize("module", [
        "repro.graphs", "repro.utility", "repro.diffusion", "repro.rrsets",
        "repro.core", "repro.baselines", "repro.experiments", "repro.utils",
        "repro.index",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{name} missing from {module}"

    def test_exception_hierarchy(self):
        assert issubclass(repro.GraphError, repro.ReproError)
        assert issubclass(repro.UtilityModelError, repro.ReproError)
        assert issubclass(repro.AllocationError, repro.ReproError)
        assert issubclass(repro.AlgorithmError, repro.ReproError)

    def test_docstrings_on_public_callables(self):
        for name in ("seqgrd", "seqgrd_nm", "maxgrd", "supgrd", "best_of",
                     "greedy_wm", "tcim", "balance_c", "imm", "simulate_uic",
                     "estimate_welfare", "load_network", "two_item_config"):
            assert getattr(repro, name).__doc__, f"{name} lacks a docstring"

    def test_quickstart_workflow(self):
        """The README / module docstring workflow runs end to end."""
        graph = repro.load_network("nethept", scale=0.01, rng=7)
        model = repro.two_item_config("C1")
        result = repro.seqgrd_nm(graph, model, budgets={"i": 2, "j": 2},
                                 options=repro.IMMOptions(max_rr_sets=3000),
                                 rng=7)
        welfare = repro.estimate_welfare(graph, model,
                                         result.combined_allocation(),
                                         n_samples=40, rng=7)
        assert welfare.mean > 0
