"""Integration test of the Theorem 2 reduction gadget.

The hardness proof builds a CWelMax instance from a SET COVER instance using
the Table 1 utility configuration: seeds of i2/i3/i4 are fixed on dedicated
gadget nodes, and choosing good seeds for i1 (covering all ground elements)
lets the mass of "d" nodes adopt the high-utility bundle {i1, i4}, while a
bad choice lets {i2, i3} block i4.  We build a miniature version of one copy
of the gadget and check both behaviours, which exercises the interaction of
bundle utilities, blocking and timing that the reduction relies on.
"""

import pytest

from repro.allocation import Allocation
from repro.diffusion.uic import simulate_uic
from repro.graphs.graph import DirectedGraph
from repro.utility.configs import hardness_config


def build_gadget(subsets, n_elements, n_d_nodes):
    """One copy of the Figure 2(a) gadget (without the N-fold replication).

    Node layout (ids in construction order):
      s_0..s_{r-1}        set nodes
      g_0..g_{n-1}        ground-element nodes
      a_0..a_{n-1}        seeds of i2 (a_i -> g_i)
      b_0..b_{n-1}, e_0..e_{n-1}, f_0..f_{n-1}
                          b_i -> e_i -> f_i, g_i -> f_i  (seeds of i3 at b)
      j_0..j_{n-1}, l_i, m_i, o_i
                          j_i -> l_i -> m_i -> o_i (seeds of i4 at j)
      d_0..d_{D-1}        welfare mass, fed by every f_i and o_i
    """
    r = len(subsets)
    n = n_elements
    ids = {}
    next_id = 0

    def new(name, count):
        nonlocal next_id
        ids[name] = list(range(next_id, next_id + count))
        next_id += count

    for name, count in (("s", r), ("g", n), ("a", n), ("b", n), ("e", n),
                        ("f", n), ("j", n), ("l", n), ("m", n), ("o", n),
                        ("d", n_d_nodes)):
        new(name, count)

    edges = []
    for i, subset in enumerate(subsets):
        for element in subset:
            edges.append((ids["s"][i], ids["g"][element], 1.0))
    for i in range(n):
        edges.append((ids["a"][i], ids["g"][i], 1.0))
        edges.append((ids["g"][i], ids["f"][i], 1.0))
        edges.append((ids["b"][i], ids["e"][i], 1.0))
        edges.append((ids["e"][i], ids["f"][i], 1.0))
        edges.append((ids["j"][i], ids["l"][i], 1.0))
        edges.append((ids["l"][i], ids["m"][i], 1.0))
        edges.append((ids["m"][i], ids["o"][i], 1.0))
    for i in range(n):
        for d in ids["d"]:
            edges.append((ids["f"][i], d, 1.0))
            edges.append((ids["o"][i], d, 1.0))

    graph = DirectedGraph.from_edges(next_id, edges, name="hardness-gadget")
    return graph, ids


@pytest.fixture
def gadget():
    # SET COVER instance: F = {S1={0,1}, S2={1,2}, S3={2}}, X = {0,1,2}, k=2
    subsets = [[0, 1], [1, 2], [2]]
    graph, ids = build_gadget(subsets, n_elements=3, n_d_nodes=12)
    model = hardness_config()
    fixed = Allocation({
        "i2": ids["a"],
        "i3": ids["b"],
        "i4": ids["j"],
    })
    return graph, ids, model, fixed, subsets


class TestHardnessGadget:
    def test_yes_instance_seeding_gives_high_welfare(self, gadget):
        """Seeding i1 at a covering collection of set nodes: every d node
        ends up with the high-utility bundle {i1, i4}."""
        graph, ids, model, fixed, _ = gadget
        cover = Allocation({"i1": [ids["s"][0], ids["s"][1]]})  # S1, S2 cover X
        result = simulate_uic(graph, model, cover.union(fixed), rng=1)
        mask_i1_i4 = model.catalog.mask_of(["i1", "i4"])
        d_masks = [int(result.adoption_masks[d]) for d in ids["d"]]
        assert all(mask == mask_i1_i4 for mask in d_masks)
        per_d_welfare = model.deterministic_utility(["i1", "i4"])
        assert result.welfare >= len(ids["d"]) * per_d_welfare

    def test_non_covering_seeding_blocks_i4(self, gadget):
        """Seeding i1 at a non-covering collection: some g node adopts i2,
        the f nodes adopt the bundle {i2, i3} and the d nodes are blocked
        from adopting i4 — welfare collapses."""
        graph, ids, model, fixed, _ = gadget
        not_cover = Allocation({"i1": [ids["s"][1], ids["s"][2]]})  # misses 0
        result = simulate_uic(graph, model, not_cover.union(fixed), rng=1)
        mask_i2_i3 = model.catalog.mask_of(["i2", "i3"])
        d_masks = [int(result.adoption_masks[d]) for d in ids["d"]]
        assert all(mask == mask_i2_i3 for mask in d_masks)

    def test_welfare_gap_between_yes_and_no_seedings(self, gadget):
        graph, ids, model, fixed, _ = gadget
        cover = Allocation({"i1": [ids["s"][0], ids["s"][1]]})
        not_cover = Allocation({"i1": [ids["s"][1], ids["s"][2]]})
        yes_welfare = simulate_uic(graph, model, cover.union(fixed),
                                   rng=1).welfare
        no_welfare = simulate_uic(graph, model, not_cover.union(fixed),
                                  rng=1).welfare
        d = len(ids["d"])
        u_good = model.deterministic_utility(["i1", "i4"])   # 105.1
        u_bad = model.deterministic_utility(["i2", "i3"])    # 10.0
        # the d-node mass dominates: the welfare ratio approaches
        # U({i1,i4}) / U({i2,i3}) as the number of d nodes grows
        assert yes_welfare > no_welfare
        assert yes_welfare - no_welfare >= 0.8 * d * (u_good - u_bad)

    def test_timing_of_the_races(self, gadget):
        """The distances are what make the gadget work: the i2/i3 seeds are
        3 hops from the d nodes while the i4 seeds are 4 hops away, so
        without i1 the bundle {i2, i3} always arrives first."""
        graph, ids, model, fixed, _ = gadget
        result = simulate_uic(graph, model, fixed, rng=1)
        mask_i2_i3 = model.catalog.mask_of(["i2", "i3"])
        for d in ids["d"]:
            assert int(result.adoption_masks[d]) == mask_i2_i3
        # the o nodes adopt i4 (it reaches them unopposed)
        i4_mask = model.catalog.singleton_mask("i4")
        for o in ids["o"]:
            assert int(result.adoption_masks[o]) == i4_mask
