"""Tests for the traced UIC diffusion."""

import numpy as np
import pytest

from repro.allocation import Allocation
from repro.diffusion.trace import render_trace, trace_uic
from repro.diffusion.uic import simulate_uic
from repro.diffusion.worlds import EdgeWorld
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.utility.configs import single_item_config, theorem1_config, two_item_config


class TestTraceSemantics:
    def test_matches_plain_simulation_on_deterministic_graphs(self):
        graph = generators.line_graph(5)
        model = two_item_config("C1", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [2]})
        plain = simulate_uic(graph, model, allocation, rng=1)
        traced = trace_uic(graph, model, allocation, rng=1)
        assert traced.welfare == pytest.approx(plain.welfare)
        adopters = {v for v in range(5) if plain.adoption_masks[v]}
        assert set(traced.final_adoption) == adopters

    def test_matches_plain_simulation_on_random_world(self):
        graph = weighting.weighted_cascade(
            generators.erdos_renyi(80, 4.0, rng=2))
        model = two_item_config("C1", noise_sigma=0.0)
        allocation = Allocation({"i": [0, 1], "j": [2, 3]})
        world = EdgeWorld([graph.out_neighbors(v)[0]
                           for v in range(graph.num_nodes)])
        plain = simulate_uic(graph, model, allocation, edge_world=world,
                             noise_world=np.zeros(2))
        traced = trace_uic(graph, model, allocation, edge_world=world,
                           noise_world=np.zeros(2))
        assert traced.welfare == pytest.approx(plain.welfare)

    def test_seed_events_at_time_one(self):
        graph = generators.line_graph(3)
        model = single_item_config()
        trace = trace_uic(graph, model, Allocation({"item": [0]}), rng=1)
        seed_events = trace.events_at(1)
        assert len(seed_events) == 1
        assert seed_events[0].node == 0
        assert seed_events[0].informed_by == ()
        assert seed_events[0].new_items == ("item",)

    def test_events_record_informers(self):
        graph = generators.line_graph(3)
        model = single_item_config()
        trace = trace_uic(graph, model, Allocation({"item": [0]}), rng=1)
        event = trace.events_for(2)[0]
        assert event.informed_by == (1,)
        assert event.time == 3

    def test_rounds_and_adopters(self):
        graph = generators.line_graph(4)
        model = single_item_config()
        trace = trace_uic(graph, model, Allocation({"item": [0]}), rng=1)
        # three propagation rounds produce adoptions, plus one final round
        # that only confirms the frontier is exhausted
        assert trace.rounds == 4
        assert trace.adopters_of("item") == [0, 1, 2, 3]

    def test_blocking_events_detected(self):
        """In the Theorem-1 monotonicity example, node v declines i1 because
        it already adopted i2 — that shows up as a blocking event."""
        graph = DirectedGraph.from_edges(2, [(0, 1, 1.0)])
        model = theorem1_config()
        allocation = Allocation({"i1": [0], "i2": [1]})
        trace = trace_uic(graph, model, allocation, rng=1)
        # node 1 never adds i1 (the bundle {i1, i2} is worse than {i2});
        # since its adoption never changes after t=1, the decline shows up
        # as the absence of any later event for node 1
        assert trace.final_adoption[1] == ("i2",)
        assert all(event.time == 1 for event in trace.events_for(1))

    def test_blocking_events_method(self):
        # a node informed of two items at once adopts one and declines the
        # other -> recorded as a blocking event
        graph = DirectedGraph.from_edges(3, [(0, 2, 1.0), (1, 2, 1.0)])
        model = two_item_config("C2", noise_sigma=0.0)
        allocation = Allocation({"i": [0], "j": [1]})
        trace = trace_uic(graph, model, allocation, rng=1)
        blocking = trace.blocking_events()
        assert any(event.node == 2 and "j" in event.rejected_items
                   for event in blocking)


class TestRenderTrace:
    def test_render_contains_key_facts(self):
        graph = generators.line_graph(3)
        model = single_item_config()
        trace = trace_uic(graph, model, Allocation({"item": [0]}), rng=1)
        text = render_trace(trace)
        assert "welfare" in text
        assert "t=1" in text
        assert "node 0" in text

    def test_render_truncates_long_traces(self):
        graph = generators.star_graph(30)
        model = single_item_config()
        trace = trace_uic(graph, model, Allocation({"item": [0]}), rng=1)
        text = render_trace(trace, max_events=5)
        assert "more events" in text
