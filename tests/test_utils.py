"""Tests for the shared utilities (RNG, timer, validation)."""

import time

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_int_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestRng:
    def test_ensure_rng_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_ensure_rng_from_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_ensure_rng_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")

    def test_spawn_rngs_independent_and_deterministic(self):
        children_a = spawn_rngs(3, 4)
        children_b = spawn_rngs(3, 4)
        assert len(children_a) == 4
        for a, b in zip(children_a, children_b):
            assert np.array_equal(a.integers(0, 100, 5), b.integers(0, 100, 5))

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_derive_seed(self):
        assert derive_seed(5) == derive_seed(5)
        assert isinstance(derive_seed(5), int)


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure("work"):
            time.sleep(0.01)
        with timer.measure("work"):
            time.sleep(0.01)
        assert timer.total("work") >= 0.02
        assert timer.count("work") == 2
        assert len(timer.laps("work")) == 2

    def test_total_over_all_labels(self):
        timer = Timer()
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.total() == pytest.approx(3.0)
        assert timer.as_dict() == {"a": 1.0, "b": 2.0}

    def test_unknown_label(self):
        timer = Timer()
        assert timer.total("missing") == 0.0
        assert timer.count("missing") == 0
        assert timer.laps("missing") == []


class TestValidation:
    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        assert check_probability(0) == 0.0
        with pytest.raises(ValueError):
            check_probability(1.2)

    def test_check_positive(self):
        assert check_positive(3) == 3.0
        with pytest.raises(ValueError):
            check_positive(0)

    def test_check_non_negative(self):
        assert check_non_negative(0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1)

    def test_check_fraction(self):
        assert check_fraction(0.3) == 0.3
        assert check_fraction(1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction(0.0)
        assert check_fraction(0.0, allow_zero=True) == 0.0

    def test_check_int_in_range(self):
        assert check_int_in_range(5, "x", 0, 10) == 5
        with pytest.raises(ValueError):
            check_int_in_range(11, "x", 0, 10)
        with pytest.raises(ValueError):
            check_int_in_range(2.5, "x", 0)


class TestResults:
    def test_allocation_result_combined(self):
        from repro.allocation import Allocation
        from repro.core.results import AllocationResult
        result = AllocationResult(
            allocation=Allocation({"i": [1]}),
            fixed_allocation=Allocation({"j": [2]}),
            algorithm="test")
        combined = result.combined_allocation()
        assert combined.seeds_for("i") == (1,)
        assert combined.seeds_for("j") == (2,)
        assert result.seeds_for("i") == (1,)
        assert result.estimated_welfare is None
