"""Shared degenerate-input behaviour: zero budgets and empty graphs.

Every allocator that can meaningfully receive an all-zero budget vector must
return an *empty* :class:`AllocationResult` instead of raising — the
behaviour SupGRD always had for ``budget == 0`` — and the RR samplers must
return empty sets instead of crashing on the empty graph.
"""

import numpy as np
import pytest

from repro.allocation import Allocation
from repro.baselines.celf import celf_greedy_wm
from repro.baselines.greedy_wm import greedy_wm
from repro.baselines.heuristics import (
    degree_allocation,
    random_allocation,
    round_robin,
    snake,
)
from repro.core.supgrd import supgrd
from repro.diffusion.estimators import estimate_spread, estimate_welfare
from repro.graphs.graph import DirectedGraph
from repro.rrsets.rrset import (
    WeightedRRSampler,
    marginal_rr_set,
    random_rr_set,
)
from repro.utility.configs import two_item_config


ZERO_BUDGET_ALGORITHMS = [
    pytest.param(celf_greedy_wm, id="celf_greedy_wm"),
    pytest.param(greedy_wm, id="greedy_wm"),
    pytest.param(round_robin, id="round_robin"),
    pytest.param(snake, id="snake"),
    pytest.param(degree_allocation, id="degree_allocation"),
    pytest.param(random_allocation, id="random_allocation"),
]


class TestZeroBudgetConsistency:
    @pytest.mark.parametrize("algorithm", ZERO_BUDGET_ALGORITHMS)
    def test_all_zero_budgets_return_empty_result(self, algorithm,
                                                  small_er_graph, c1_model):
        result = algorithm(small_er_graph, c1_model, {"i": 0, "j": 0}, rng=1)
        assert result.allocation.is_empty()
        assert result.allocation == Allocation.empty()
        assert result.estimated_welfare is None

    def test_supgrd_zero_budget_returns_empty_result(self, line4):
        model = two_item_config("C6", bounded_noise=True)
        fixed = Allocation({"j": [1]})
        result = supgrd(line4, model, 0, fixed, superior_item="i", rng=1)
        assert result.allocation.is_empty()
        assert result.algorithm == "SupGRD"
        assert result.details["zero_budget"] is True

    def test_zero_budget_evaluates_fixed_allocation_welfare(self, line4):
        model = two_item_config("C6", bounded_noise=True)
        fixed = Allocation({"j": [0]})
        result = supgrd(line4, model, 0, fixed, superior_item="i",
                        evaluate_welfare=True, n_evaluation_samples=40,
                        rng=1)
        # the welfare that actually propagates is the fixed allocation's
        assert result.estimated_welfare is not None
        assert result.estimated_welfare > 0.0

    def test_supgrd_empty_graph_returns_empty_result(self):
        graph = DirectedGraph.from_edges(0, [])
        model = two_item_config("C6", bounded_noise=True)
        result = supgrd(graph, model, 3, Allocation.empty(),
                        superior_item="i", enforce_preconditions=False,
                        rng=1)
        assert result.allocation.is_empty()


class TestEmptyGraphSamplers:
    @pytest.fixture
    def empty_graph(self):
        return DirectedGraph.from_edges(0, [])

    def test_random_rr_set_empty_graph(self, empty_graph, rng):
        assert random_rr_set(empty_graph, rng).tolist() == []

    def test_marginal_rr_set_empty_graph(self, empty_graph, rng):
        assert marginal_rr_set(empty_graph, {0}, rng).tolist() == []

    def test_weighted_rr_sampler_empty_graph(self, empty_graph, rng):
        model = two_item_config("C6", bounded_noise=True)
        sampler = WeightedRRSampler(empty_graph, model, "i",
                                    Allocation.empty(), rng=1)
        rr = sampler.sample(rng)
        assert rr.nodes.tolist() == []
        assert rr.weight == 0.0
        assert rr.root == -1

    def test_weighted_rr_sampler_empty_graph_batch(self, empty_graph, rng):
        model = two_item_config("C6", bounded_noise=True)
        sampler = WeightedRRSampler(empty_graph, model, "i",
                                    Allocation.empty(), rng=1)
        batch = sampler.sample_batch(rng, count=3)
        assert len(batch) == 3
        assert all(rr.nodes.tolist() == [] and rr.weight == 0.0
                   for rr in batch)

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_estimators_empty_graph(self, empty_graph, engine):
        model = two_item_config("C1", noise_sigma=0.0)
        estimate = estimate_welfare(empty_graph, model, Allocation.empty(),
                                    n_samples=5, rng=1, engine=engine)
        assert estimate.mean == 0.0
        assert estimate_spread(empty_graph, [], n_samples=5, rng=1,
                               engine=engine) == 0.0
