"""Concurrency soak: 32 async clients against a multi-index registry.

Covers the acceptance properties of the concurrent server:

* 32 concurrent TCP clients with mixed spec fingerprints against a
  2-index registry all receive allocations **bit-identical** to a direct
  ``repro run`` of their spec, with the coalesce counter > 0;
* LRU eviction order of loaded indexes under a capacity-1 registry;
* graceful shutdown drains in-flight requests (the response of a request
  admitted before ``shutdown`` is still delivered).

Marked ``slow`` but tier-1 runnable (a few seconds at smoke scale).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import (
    EngineConfig,
    RunSpec,
    WorkloadSpec,
    make_request,
    run as run_spec,
)
from repro.index import build_index
from repro.serve import AllocationServer, IndexRegistry
from repro.utility.configs import configuration_model

pytestmark = pytest.mark.slow

NETWORK, SCALE, CONFIGURATION = "nethept", 0.01, "C1"
SEED = 4

SPEC_A = RunSpec(
    algorithm="SeqGRD-NM",
    workload=WorkloadSpec(network=NETWORK, scale=SCALE,
                          configuration=CONFIGURATION,
                          budgets={"i": 2, "j": 2}),
    engine=EngineConfig(seed=SEED, samples=10, max_rr_sets=2000))
#: same workload shape, different accuracy knob -> different index
SPEC_B = RunSpec(
    algorithm="SeqGRD-NM",
    workload=WorkloadSpec(network=NETWORK, scale=SCALE,
                          configuration=CONFIGURATION,
                          budgets={"i": 3, "j": 1}),
    engine=EngineConfig(seed=SEED, samples=10, max_rr_sets=1500))


def _variants(spec: RunSpec, budgets_list):
    import dataclasses

    return [dataclasses.replace(
        spec, workload=dataclasses.replace(spec.workload, budgets=b))
        for b in budgets_list]


@pytest.fixture(scope="module")
def instance():
    from repro.graphs.datasets import load_network

    return load_network(NETWORK, scale=SCALE, rng=SEED), \
        configuration_model(CONFIGURATION)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory, instance):
    graph, model = instance
    tmp = tmp_path_factory.mktemp("soak-indexes")
    for name, spec in (("idx-a", SPEC_A), ("idx-b", SPEC_B)):
        index = build_index(
            graph, model, sampler="marginal",
            budgets=dict(spec.workload.budgets),
            options=spec.engine.imm_options(), seed=spec.engine.seed,
            meta_extra={"network": NETWORK, "scale": SCALE,
                        "configuration": CONFIGURATION, "graph_seed": SEED,
                        "fixed_imm_item": None, "fixed_imm_budget": 50})
        index.save(tmp / name)
    return tmp


@pytest.fixture(scope="module")
def direct_allocations(instance):
    graph, model = instance
    out = {}
    for spec in (SPEC_A, SPEC_B):
        record = run_spec(spec, graph=graph, model=model)
        out[spec.fingerprint()] = {
            item: list(nodes) for item, nodes
            in record.result.allocation.as_dict().items()}
    return out


def _run(coro, timeout=300):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestThirtyTwoClientSoak:
    def test_soak_mixed_fingerprints(self, index_dir, direct_allocations):
        registry = IndexRegistry(directory=index_dir, capacity=2,
                                 cache_size=0)
        server = AllocationServer(registry)

        async def client(host, port, client_id):
            spec = SPEC_A if client_id % 2 == 0 else SPEC_B
            reader, writer = await asyncio.open_connection(host, port)
            responses = []
            for round_no in range(3):
                writer.write(json.dumps(
                    make_request(spec, request_id=f"{client_id}-{round_no}")
                ).encode() + b"\n")
                await writer.drain()
                responses.append(json.loads(await asyncio.wait_for(
                    reader.readline(), 120)))
            writer.close()
            return spec, responses

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            results = await asyncio.gather(
                *[client(host, port, i) for i in range(32)])
            stats = server.stats_payload()
            await server.shutdown(drain=True)
            return results, stats

        results, stats = _run(scenario())
        assert len(results) == 32
        for spec, responses in results:
            expected = direct_allocations[spec.fingerprint()]
            for response in responses:
                assert response["ok"] is True, response
                assert response["allocation"] == expected
                assert response["fingerprint"] == spec.fingerprint()
                assert response["server"]["index"] in ("idx-a", "idx-b")
        # 96 requests over 2 distinct fingerprints with response caching
        # off: concurrency must have coalesced many of them
        coalesced = sum(c["coalesced"]
                        for c in stats["coalescer"].values())
        assert coalesced > 0
        assert stats["server"]["requests"] == 96
        assert stats["server"]["errors"] == 0
        assert set(stats["coalescer"]) == {"idx-a", "idx-b"}
        assert stats["registry"]["entries"] == 2
        assert stats["registry"]["evictions"] == 0

    def test_batching_distinct_budgets(self, index_dir):
        registry = IndexRegistry(directory=index_dir, capacity=2,
                                 cache_size=0)
        server = AllocationServer(registry)
        variants = _variants(SPEC_A, [{"i": 1, "j": 1}, {"i": 2, "j": 1},
                                      {"i": 1, "j": 2}, {"i": 2, "j": 2}])

        async def client(host, port, spec):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps(make_request(spec)).encode() + b"\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            writer.close()
            return response

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            responses = await asyncio.gather(
                *[client(host, port, spec)
                  for spec in variants for _ in range(4)])
            counters = server.coalescer.counters("idx-a")
            await server.shutdown(drain=True)
            return responses, counters

        responses, counters = _run(scenario())
        assert all(r["ok"] for r in responses)
        # 16 requests, 4 distinct fingerprints: dedup + batching must have
        # collapsed executions well below the request count
        assert counters["executed"] < len(responses)
        assert counters["coalesced"] + counters["batched_requests"] \
            == len(responses)

    def test_incompatible_specs_only_reach_their_index(self, index_dir):
        registry = IndexRegistry(directory=index_dir, capacity=2)
        server = AllocationServer(registry)
        response_a = server.dispatch_line(json.dumps(make_request(SPEC_A)))
        response_b = server.dispatch_line(json.dumps(make_request(SPEC_B)))
        assert response_a["server"]["index"] == "idx-a"
        assert response_b["server"]["index"] == "idx-b"


class TestLegacyDialectRouting:
    def test_legacy_query_needs_index_name_with_two_indexes(self,
                                                            index_dir):
        registry = IndexRegistry(directory=index_dir, capacity=2)
        server = AllocationServer(registry)
        ambiguous = server.dispatch_line(
            '{"op": "query", "budgets": {"i": 1, "j": 1}}')
        assert ambiguous["ok"] is False
        assert "index" in ambiguous["error"]
        named = server.dispatch_line(
            '{"op": "query", "index": "idx-a", '
            '"budgets": {"i": 1, "j": 1}}')
        assert named["ok"] is True
        assert named["server"]["index"] == "idx-a"
        unknown = server.dispatch_line(
            '{"op": "query", "index": "nope", "budgets": {"i": 1}}')
        assert unknown["ok"] is False

    def test_no_coalesce_server_still_bit_identical(self, index_dir,
                                                    direct_allocations):
        registry = IndexRegistry(directory=index_dir, capacity=2,
                                 cache_size=0)
        server = AllocationServer(registry, coalesce=False)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)

            async def one():
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(json.dumps(make_request(SPEC_A)).encode()
                             + b"\n")
                await writer.drain()
                out = json.loads(await asyncio.wait_for(
                    reader.readline(), 120))
                writer.close()
                return out
            responses = await asyncio.gather(*[one() for _ in range(6)])
            counters = server.coalescer.counters()
            await server.shutdown(drain=True)
            return responses, counters

        responses, counters = _run(scenario())
        expected = direct_allocations[SPEC_A.fingerprint()]
        for response in responses:
            assert response["ok"] is True
            assert response["allocation"] == expected
            assert response["server"]["coalesced"] is False
        assert counters == {}  # the coalescer never saw the requests


class TestRegistryLRU:
    def test_eviction_order_capacity_one(self, index_dir,
                                         direct_allocations):
        registry = IndexRegistry(directory=index_dir, capacity=1)
        server = AllocationServer(registry)
        sequence = [SPEC_A, SPEC_B, SPEC_A, SPEC_B]
        for spec in sequence:
            response = server.dispatch_line(json.dumps(make_request(spec)))
            assert response["ok"] is True
            assert response["allocation"] == \
                direct_allocations[spec.fingerprint()]
        stats = registry.stats()
        # each switch evicts the other index: a, b, a evicted in order
        assert stats["eviction_order"] == ["idx-a", "idx-b", "idx-a"]
        assert stats["evictions"] == 3
        assert stats["loaded"] == ["idx-b"]
        assert stats["indexes"]["idx-a"]["loads"] == 2
        assert stats["indexes"]["idx-b"]["loads"] == 2

    def test_reload_drops_changed_manifest(self, index_dir, instance):
        graph, model = instance
        registry = IndexRegistry(directory=index_dir, capacity=2)
        registry.get("idx-a")
        assert registry.entry("idx-a").loaded is not None
        # rebuild idx-a with different budgets: manifest changes on disk
        index = build_index(
            graph, model, sampler="marginal", budgets={"i": 1, "j": 1},
            options=SPEC_A.engine.imm_options(), seed=SEED,
            meta_extra={"network": NETWORK, "scale": SCALE,
                        "configuration": CONFIGURATION, "graph_seed": SEED,
                        "fixed_imm_item": None, "fixed_imm_budget": 50})
        index.save(index_dir / "idx-a")
        summary = registry.reload()
        assert "idx-a" in summary["changed"]
        assert registry.entry("idx-a").loaded is None
        # restore for the other tests (module-scoped fixture directory)
        restore = build_index(
            graph, model, sampler="marginal",
            budgets=dict(SPEC_A.workload.budgets),
            options=SPEC_A.engine.imm_options(), seed=SEED,
            meta_extra={"network": NETWORK, "scale": SCALE,
                        "configuration": CONFIGURATION, "graph_seed": SEED,
                        "fixed_imm_item": None, "fixed_imm_budget": 50})
        restore.save(index_dir / "idx-a")
        registry.reload()


class TestUnixSocketEndpoint:
    def test_unix_round_trip_and_cleanup(self, index_dir, tmp_path,
                                         direct_allocations):
        registry = IndexRegistry(directory=index_dir, capacity=2)
        server = AllocationServer(registry)
        socket_path = tmp_path / "serve.sock"

        async def scenario():
            await server.start_unix(socket_path)
            assert socket_path.exists()
            reader, writer = await asyncio.open_unix_connection(
                str(socket_path))
            writer.write(json.dumps(make_request(SPEC_A, request_id=1))
                         .encode() + b"\n")
            writer.write(b'{"op": "stats"}\n')
            await writer.drain()
            first = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            second = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            writer.close()
            await server.shutdown(drain=True)
            return first, second

        first, second = _run(scenario())
        assert first["ok"] is True
        assert first["allocation"] == direct_allocations[SPEC_A.fingerprint()]
        assert second["ok"] is True and "registry" in second
        # the socket file is removed on shutdown
        assert not socket_path.exists()


class TestServeForeverSignals:
    def test_sighup_reloads_and_sigterm_drains(self, index_dir, tmp_path):
        import os
        import signal

        registry = IndexRegistry(directory=index_dir, capacity=2)
        server = AllocationServer(registry)
        socket_path = tmp_path / "forever.sock"
        endpoints = []

        async def scenario():
            forever = asyncio.create_task(server.serve_forever(
                tcp=("127.0.0.1", 0), unix=socket_path,
                ready=endpoints.extend))
            while not endpoints:
                await asyncio.sleep(0.01)
            host, port = endpoints[0].rsplit("://", 1)[1].rsplit(":", 1)
            reader, writer = await asyncio.open_connection(host, int(port))
            reloads_before = registry.stats()["reloads"]
            os.kill(os.getpid(), signal.SIGHUP)
            await asyncio.sleep(0.05)
            assert registry.stats()["reloads"] == reloads_before + 1
            writer.write(json.dumps(make_request(SPEC_A)).encode() + b"\n")
            await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), 120))
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(forever, 60)
            return response

        response = _run(scenario())
        assert response["ok"] is True
        assert len(endpoints) == 2
        assert not socket_path.exists()


class TestGracefulDrain:
    def test_shutdown_drains_in_flight_requests(self, index_dir,
                                                direct_allocations):
        # cache off so the request really computes while we shut down
        registry = IndexRegistry(directory=index_dir, capacity=2,
                                 cache_size=0)
        server = AllocationServer(registry)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps(make_request(SPEC_A, request_id=1))
                         .encode() + b"\n")
            await writer.drain()
            # give the server a tick to admit the request, then drain
            await asyncio.sleep(0.05)
            shutdown = asyncio.create_task(
                server.shutdown(drain=True, timeout=60))
            line = await asyncio.wait_for(reader.readline(), 120)
            await shutdown
            # the connection is closed afterwards
            rest = await asyncio.wait_for(reader.read(), 30)
            return line, rest

        line, rest = _run(scenario())
        assert line, "draining shutdown dropped an in-flight response"
        response = json.loads(line)
        assert response["ok"] is True
        assert response["allocation"] == \
            direct_allocations[SPEC_A.fingerprint()]
        assert rest == b""

    def test_new_connections_refused_after_shutdown(self, index_dir):
        registry = IndexRegistry(directory=index_dir, capacity=2)
        server = AllocationServer(registry)

        async def scenario():
            host, port = await server.start_tcp("127.0.0.1", 0)
            await server.shutdown(drain=True)
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), 5)
            except (ConnectionRefusedError, OSError, asyncio.TimeoutError):
                return True
            # some platforms accept then immediately close
            data = await asyncio.wait_for(reader.read(), 10)
            writer.close()
            return data == b""

        assert _run(scenario()) is True
