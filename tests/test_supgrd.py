"""Tests for SupGRD (superior-item special case, §5.3)."""

import pytest

from repro.allocation import Allocation
from repro.core.supgrd import supgrd
from repro.diffusion.estimators import estimate_welfare
from repro.exceptions import AlgorithmError
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions, imm
from repro.utility.configs import two_item_config
from repro.utility.items import ItemCatalog
from repro.utility.model import UtilityModel
from repro.utility.noise import UniformNoise, ZeroNoise
from repro.utility.valuation import TableValuation

FAST = IMMOptions(max_rr_sets=6_000)


def superior_two_item_model():
    """Bounded-noise model with a clear superior item and pure competition:
    U(top) = 9, U(weak) = 1, U({top, weak}) = 0.5 (never preferred over
    either member, so no node ever adopts both)."""
    catalog = ItemCatalog(["top", "weak"])
    valuation = TableValuation(catalog, {"top": 10.0, "weak": 2.0,
                                         ("top", "weak"): 2.5})
    return UtilityModel(valuation, {"top": 1.0, "weak": 1.0},
                        UniformNoise(0.2))


class TestPreconditions:
    def test_requires_superior_item(self, small_er_graph, c1_model):
        # C1 has unbounded Gaussian noise -> no certifiable superior item
        with pytest.raises(AlgorithmError, match="superior"):
            supgrd(small_er_graph, c1_model, budget=2,
                   fixed_allocation=Allocation({"j": [0]}), options=FAST)

    def test_wrong_superior_item_rejected(self, small_er_graph):
        model = superior_two_item_model()
        with pytest.raises(AlgorithmError, match="not the superior item"):
            supgrd(small_er_graph, model, budget=2, superior_item="weak",
                   fixed_allocation=Allocation({"top": [0]}), options=FAST)

    def test_inferior_items_must_be_fixed(self, small_er_graph):
        model = superior_two_item_model()
        with pytest.raises(AlgorithmError, match="fixed"):
            supgrd(small_er_graph, model, budget=2,
                   fixed_allocation=Allocation.empty(), options=FAST)

    def test_superior_item_must_not_be_prefixed(self, small_er_graph):
        model = superior_two_item_model()
        with pytest.raises(AlgorithmError):
            supgrd(small_er_graph, model, budget=2,
                   fixed_allocation=Allocation({"top": [1], "weak": [0]}),
                   options=FAST)

    def test_pure_competition_required(self, small_er_graph):
        catalog = ItemCatalog(["top", "weak"])
        valuation = TableValuation(catalog, {"top": 10.0, "weak": 2.0,
                                             ("top", "weak"): 12.0})
        model = UtilityModel(valuation, {"top": 1.0, "weak": 1.0}, ZeroNoise())
        with pytest.raises(AlgorithmError, match="pure competition"):
            supgrd(small_er_graph, model, budget=2,
                   fixed_allocation=Allocation({"weak": [0]}), options=FAST)

    def test_preconditions_can_be_disabled(self, small_er_graph, c1_model):
        result = supgrd(small_er_graph, c1_model, budget=2,
                        fixed_allocation=Allocation({"j": [0]}),
                        superior_item="i", enforce_preconditions=False,
                        options=FAST, rng=1)
        assert result.allocation.seed_count("i") == 2

    def test_negative_budget_rejected(self, small_er_graph):
        model = superior_two_item_model()
        with pytest.raises(AlgorithmError):
            supgrd(small_er_graph, model, budget=-1,
                   fixed_allocation=Allocation({"weak": [0]}), options=FAST)


class TestSelection:
    def test_budget_respected(self, small_er_graph):
        model = superior_two_item_model()
        result = supgrd(small_er_graph, model, budget=4,
                        fixed_allocation=Allocation({"weak": [0, 1]}),
                        options=FAST, rng=1)
        assert result.allocation.seed_count("top") == 4
        assert result.algorithm == "SupGRD"
        assert result.details["superior_item"] == "top"

    def test_star_graph_picks_hub(self, star10):
        model = superior_two_item_model()
        result = supgrd(star10, model, budget=1,
                        fixed_allocation=Allocation({"weak": [3]}),
                        options=FAST, rng=2)
        assert result.allocation.seeds_for("top") == (0,)

    def test_welfare_beats_random_seeding(self, medium_graph):
        model = superior_two_item_model()
        fixed = Allocation({"weak": imm(medium_graph, 5, options=FAST,
                                        rng=1).seeds})
        result = supgrd(medium_graph, model, budget=5,
                        fixed_allocation=fixed, options=FAST, rng=2)
        sup_welfare = estimate_welfare(medium_graph, model,
                                       result.combined_allocation(),
                                       n_samples=300, rng=3).mean
        random_alloc = Allocation({"top": [100, 101, 102, 103, 104]})
        rand_welfare = estimate_welfare(medium_graph, model,
                                        random_alloc.union(fixed),
                                        n_samples=300, rng=3).mean
        assert sup_welfare >= rand_welfare

    def test_details_contain_sampling_metadata(self, small_er_graph):
        model = superior_two_item_model()
        result = supgrd(small_er_graph, model, budget=3,
                        fixed_allocation=Allocation({"weak": [0]}),
                        options=FAST, rng=4)
        assert result.details["num_rr_sets"] > 0
        assert result.details["superior_truncated_utility"] > 0

    def test_unadoptable_superior_item_returns_empty(self, line4):
        # the superior item's utility is always negative -> nothing to gain
        catalog = ItemCatalog(["top", "weak"])
        valuation = TableValuation(catalog, {"top": 1.0, "weak": 0.5,
                                             ("top", "weak"): 1.2})
        model = UtilityModel(valuation, {"top": 5.0, "weak": 5.0}, ZeroNoise())
        result = supgrd(line4, model, budget=2,
                        fixed_allocation=Allocation({"weak": [0]}),
                        enforce_preconditions=False, options=FAST, rng=5)
        assert result.allocation.is_empty()

    def test_c6_configuration_end_to_end(self, medium_graph):
        model = two_item_config("C6", bounded_noise=True)
        fixed = Allocation({"j": imm(medium_graph, 8, options=FAST,
                                     rng=6).seeds})
        result = supgrd(medium_graph, model, budget=4,
                        fixed_allocation=fixed, options=FAST, rng=7)
        assert result.allocation.seed_count("i") == 4
        assert result.details["superior_item"] == "i"
