"""Tests for the memory-tier refactor: dtype-adaptive stores, the v2
mmap-backed on-disk format (with v1 read-compat), the streaming build
path, and resident-bytes accounting in the serving layer."""

import json

import numpy as np
import pytest

from repro.exceptions import AlgorithmError, IndexStoreError
from repro.graphs import generators, weighting
from repro.index import (
    AllocationService,
    FORMAT_VERSION,
    FrozenRRIndex,
    StreamingIndexWriter,
    build_index,
    build_streaming_index,
    index_paths,
)
from repro.rrsets.coverage import (
    RRCollection,
    SELECTION_STRATEGIES,
    min_id_dtype,
    min_set_dtype,
    node_selection,
)
from repro.rrsets.imm import IMMOptions
from repro.serve.registry import IndexRegistry


@pytest.fixture(scope="module")
def graph():
    g = generators.erdos_renyi(150, avg_degree=4.0, rng=9, directed=True,
                               name="er150-tiers")
    return weighting.weighted_cascade(g)


def sample_collection(num_nodes=60, num_sets=80, seed=17, weighted=False,
                      id_dtype=None):
    rng = np.random.default_rng(seed)
    collection = RRCollection(num_nodes, id_dtype=id_dtype)
    for _ in range(num_sets):
        size = int(rng.integers(1, 6))
        nodes = rng.choice(num_nodes, size=size, replace=False)
        weight = float(rng.random()) + 0.25 if weighted else 1.0
        collection.add(nodes.astype(np.int64), weight)
    return collection


class TestDtypeAdaptation:
    def test_small_store_uses_int32_ids(self):
        collection = sample_collection()
        frozen = collection.freeze()
        assert collection.id_dtype == np.dtype(np.int32)
        assert frozen.id_dtype == np.dtype(np.int32)
        assert frozen.set_dtype == np.dtype(np.int32)

    def test_min_dtype_policy_boundary(self):
        assert min_id_dtype(2 ** 31 - 1) == np.dtype(np.int32)
        assert min_id_dtype(2 ** 31) == np.dtype(np.int64)
        assert min_set_dtype(10) == np.dtype(np.int32)
        assert min_set_dtype(2 ** 31) == np.dtype(np.int64)

    def test_explicit_int64_store_honoured(self):
        collection = sample_collection(id_dtype=np.int64)
        assert collection.id_dtype == np.dtype(np.int64)
        assert collection.freeze().id_dtype == np.dtype(np.int64)

    def test_too_narrow_dtype_rejected(self):
        with pytest.raises(AlgorithmError, match="dtype"):
            RRCollection(2 ** 31 + 5, id_dtype=np.int32)

    def test_selection_identical_across_id_dtypes(self):
        narrow = sample_collection(weighted=True)
        wide = sample_collection(weighted=True, id_dtype=np.int64)
        results = {}
        for label, store in (("int32", narrow.freeze()),
                             ("int64", wide.freeze())):
            for strategy in SELECTION_STRATEGIES:
                got = node_selection(store, 6, strategy=strategy)
                results.setdefault(label, []).append(
                    (got.seeds, got.prefix_weights))
        assert results["int32"] == results["int64"]

    def test_array_nbytes_reflects_narrow_ids(self):
        frozen = sample_collection().freeze()
        packed_nodes = frozen._packed()[1]
        assert packed_nodes.dtype == np.dtype(np.int32)
        # accounting must use real nbytes, not an assumed 8-byte id width
        assert frozen.array_nbytes() >= packed_nodes.nbytes
        total = sum(array.nbytes for array in frozen._arrays().values())
        assert frozen.array_nbytes() == total

    def test_repair_widens_members_across_int32_boundary(self):
        """Regression: node insertions pushing ``num_nodes`` past 2**31
        must widen an int32 member store to int64 instead of silently
        overflowing when a repaired set references a new high node id.
        ``replace_sets`` never allocates O(num_nodes), so the policy is
        testable at the exact boundary."""
        from repro.dynamic import replace_sets

        offsets = np.array([0, 2, 3], dtype=np.int64)
        nodes = np.array([7, 2 ** 31 - 1, 4], dtype=np.int32)
        weights = np.ones(2)
        boundary = 2 ** 31  # first id int32 cannot hold
        new_offsets, new_nodes, new_weights = replace_sets(
            offsets, nodes, weights,
            {1: (np.array([boundary, boundary + 3], dtype=np.int64), 2.0)},
            num_nodes=boundary + 4)
        assert new_nodes.dtype == np.dtype(np.int64)
        assert new_nodes.tolist() == [7, 2 ** 31 - 1, boundary,
                                      boundary + 3]
        assert new_offsets.tolist() == [0, 2, 4]
        assert new_weights[1] == 2.0
        # narrowing never happens: an int64 store stays int64 even when
        # num_nodes would fit int32 again
        _, shrunk_nodes, _ = replace_sets(
            new_offsets, new_nodes, new_weights,
            {0: (np.array([1], dtype=np.int64), 1.0)}, num_nodes=100)
        assert shrunk_nodes.dtype == np.dtype(np.int64)


class TestV2Format:
    def test_save_records_format_and_dtypes(self, tmp_path):
        frozen = sample_collection().freeze()
        _, manifest_path = frozen.save(tmp_path / "idx")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format_version"] == FORMAT_VERSION == 2
        assert manifest["dtypes"]["nodes"] == "int32"
        assert manifest["dtypes"]["offsets"] == "int64"
        assert manifest["array_bytes"] == frozen.array_nbytes()

    def test_mmap_load_round_trip(self, tmp_path):
        frozen = sample_collection(weighted=True).freeze()
        frozen.save(tmp_path / "idx")
        mapped = FrozenRRIndex.load(tmp_path / "idx", mmap=True)
        assert mapped.mmapped is True
        assert mapped.resident_nbytes() == 0
        frozen.initial_gains()  # materialize gains0 so both sides have it
        assert mapped.array_nbytes() == frozen.array_nbytes()
        ours_by_name = frozen._arrays()
        for name, theirs in mapped._arrays().items():
            ours = ours_by_name[name]
            np.testing.assert_array_equal(np.asarray(ours),
                                          np.asarray(theirs))
            assert ours.dtype == theirs.dtype
        assert mapped.total_weight == pytest.approx(frozen.total_weight)

    def test_mmap_selection_matches_heap_selection(self, tmp_path):
        frozen = sample_collection(weighted=True).freeze()
        frozen.save(tmp_path / "idx")
        mapped = FrozenRRIndex.load(tmp_path / "idx", mmap=True)
        heap = FrozenRRIndex.load(tmp_path / "idx")
        assert heap.mmapped is False
        assert heap.resident_nbytes() == heap.array_nbytes() > 0
        for strategy in SELECTION_STRATEGIES:
            a = node_selection(mapped, 5, strategy=strategy)
            b = node_selection(heap, 5, strategy=strategy)
            assert a.seeds == b.seeds
            assert a.prefix_weights == b.prefix_weights


class TestV1ReadCompat:
    """Indexes written by the old (compressed, int64-only) code still load."""

    def _write_v1(self, frozen, stem):
        """Emulate the pre-v2 save: compressed npz, int64 ids, no
        inverted CSR / gains members, format_version 1 manifest."""
        npz_path, manifest_path = index_paths(stem)
        offsets, nodes, weights = frozen._packed()
        np.savez_compressed(npz_path, offsets=offsets.astype(np.int64),
                            nodes=nodes.astype(np.int64), weights=weights)
        manifest_path.write_text(json.dumps({
            "format_version": 1,
            "num_nodes": frozen.num_nodes,
            "num_sets": frozen.num_sets,
            "total_weight": frozen.total_weight,
            "meta": {"fingerprint": "cafe" * 16},
        }), encoding="utf-8")
        return npz_path, manifest_path

    def test_v1_round_trips_bit_identically(self, tmp_path):
        frozen = sample_collection(weighted=True).freeze()
        self._write_v1(frozen, tmp_path / "legacy")
        loaded = FrozenRRIndex.load(tmp_path / "legacy")
        offsets, nodes, weights = frozen._packed()
        got_offsets, got_nodes, got_weights = loaded._packed()
        np.testing.assert_array_equal(got_offsets, offsets)
        np.testing.assert_array_equal(np.asarray(got_nodes),
                                      np.asarray(nodes).astype(np.int64))
        np.testing.assert_array_equal(got_weights, weights)
        # the lazily rebuilt inverted CSR and gains match the v2 ones
        for a, b in zip(frozen._inverted(), loaded._inverted()):
            np.testing.assert_array_equal(np.asarray(a).astype(np.int64),
                                          np.asarray(b).astype(np.int64))
        np.testing.assert_array_equal(frozen.initial_gains(),
                                      loaded.initial_gains())
        for strategy in SELECTION_STRATEGIES:
            a = node_selection(frozen, 5, strategy=strategy)
            b = node_selection(loaded, 5, strategy=strategy)
            assert a.seeds == b.seeds
            assert a.prefix_weights == b.prefix_weights

    def test_v1_mmap_request_falls_back_to_heap(self, tmp_path):
        frozen = sample_collection().freeze()
        self._write_v1(frozen, tmp_path / "legacy")
        loaded = FrozenRRIndex.load(tmp_path / "legacy", mmap=True)
        assert loaded.mmapped is False
        assert loaded.num_sets == frozen.num_sets

    def test_v1_rejected_only_on_fingerprint_mismatch(self, tmp_path):
        frozen = sample_collection().freeze()
        self._write_v1(frozen, tmp_path / "legacy")
        loaded = FrozenRRIndex.load(tmp_path / "legacy",
                                    expected_fingerprint="cafe" * 16)
        assert loaded.num_sets == frozen.num_sets
        with pytest.raises(IndexStoreError, match="stale"):
            FrozenRRIndex.load(tmp_path / "legacy",
                               expected_fingerprint="dead" * 16)

    def test_unknown_format_version_rejected(self, tmp_path):
        frozen = sample_collection().freeze()
        _, manifest_path = self._write_v1(frozen, tmp_path / "legacy")
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(IndexStoreError, match="format version"):
            FrozenRRIndex.load(tmp_path / "legacy")


class TestStreamingWriter:
    def test_spilled_chunks_match_freeze(self, tmp_path):
        for weighted in (False, True):
            collection = sample_collection(weighted=weighted, num_sets=120,
                                           seed=23)
            frozen = collection.freeze()
            offsets, nodes, weights = frozen._packed()
            sets = [(np.asarray(nodes[start:stop]), float(weights[i]))
                    for i, (start, stop) in enumerate(
                        zip(offsets[:-1], offsets[1:]))]
            with StreamingIndexWriter(tmp_path / f"s{int(weighted)}",
                                      collection.num_nodes,
                                      chunk_members=64) as writer:
                for batch_start in range(0, len(sets), 7):
                    writer.append(sets[batch_start:batch_start + 7])
                npz_path, _ = writer.finalize(meta={"fingerprint": "x"})
            loaded = FrozenRRIndex.load(npz_path)
            ours_by_name = frozen._arrays()
            for name in ("offsets", "nodes", "weights", "inv_offsets",
                         "inv_sets"):
                np.testing.assert_array_equal(
                    np.asarray(ours_by_name[name]),
                    np.asarray(loaded._arrays()[name]))
            np.testing.assert_array_equal(frozen.initial_gains(),
                                          loaded.initial_gains())

    def test_abort_removes_temporaries(self, tmp_path):
        with pytest.raises(RuntimeError):
            with StreamingIndexWriter(tmp_path / "gone", 10) as writer:
                writer.append([(np.array([1, 2]), 1.0)])
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []


class TestStreamingBuild:
    def test_streamed_build_matches_one_shot(self, graph, tmp_path):
        options = IMMOptions(max_rr_sets=3000)
        one_shot = build_index(graph, None, sampler="standard", k=4,
                               options=options, seed=21, workers=1)
        streamed = build_streaming_index(graph, k=4, out=tmp_path / "s",
                                         options=options, seed=21,
                                         workers=1)
        assert streamed.fingerprint == one_shot.fingerprint
        assert streamed.meta["seeds"] == one_shot.meta["seeds"]
        for ours, theirs in zip(one_shot._packed(), streamed._packed()):
            np.testing.assert_array_equal(np.asarray(ours),
                                          np.asarray(theirs))

    def test_chunk_size_invariance(self, graph, tmp_path):
        a = build_streaming_index(graph, k=3, out=tmp_path / "a",
                                  rr_sets=2100, seed=5, chunk_sets=2048)
        b = build_streaming_index(graph, k=3, out=tmp_path / "b",
                                  rr_sets=2100, seed=5, chunk_sets=6144)
        np.testing.assert_array_equal(np.asarray(a._packed()[1]),
                                      np.asarray(b._packed()[1]))
        assert a.meta["seeds"] == b.meta["seeds"]

    def test_fixed_theta_is_fingerprinted_separately(self, graph, tmp_path):
        options = IMMOptions(max_rr_sets=3000)
        adaptive = build_streaming_index(graph, k=3, out=tmp_path / "ad",
                                         options=options, seed=5)
        fixed = build_streaming_index(graph, k=3, out=tmp_path / "fx",
                                      options=options, rr_sets=2048, seed=5)
        assert fixed.num_sets == 2048
        assert adaptive.fingerprint != fixed.fingerprint


@pytest.fixture(scope="module")
def catalog_graph():
    from repro.graphs.datasets import load_network

    # the registry rebuilds each index's instance from its manifest, so the
    # accounting tests build on a real catalog workload it can reconstruct
    return load_network("nethept", scale=0.01, rng=5)


class TestServingMemoryAccounting:
    def _served_index(self, graph, tmp_path, name="svc"):
        build_streaming_index(graph, k=3, out=tmp_path / name,
                              rr_sets=2048, seed=5,
                              meta_extra={"network": "nethept",
                                          "scale": 0.01,
                                          "configuration": "C1",
                                          "graph_seed": 5})
        return tmp_path / f"{name}.npz"

    def test_service_memory_stats(self, catalog_graph, tmp_path):
        path = self._served_index(catalog_graph, tmp_path)
        mapped = AllocationService(FrozenRRIndex.load(path, mmap=True))
        heap = AllocationService(FrozenRRIndex.load(path))
        assert mapped.memory_stats["mmapped"] is True
        assert mapped.memory_stats["resident_bytes"] == 0
        assert heap.memory_stats["mmapped"] is False
        assert (heap.memory_stats["resident_bytes"]
                == heap.memory_stats["array_bytes"]
                == heap.index.array_nbytes())

    def test_registry_reports_resident_bytes(self, catalog_graph,
                                            tmp_path):
        path = self._served_index(catalog_graph, tmp_path)
        registry = IndexRegistry(paths=[path], verify=False)
        (key,) = registry.keys()
        registry.get(key)
        stats = registry.stats()
        assert stats["mmap"] is True
        assert stats["resident_bytes"] == 0
        assert stats["indexes"][key]["mmapped"] is True

    def test_registry_heap_mode_counts_bytes(self, catalog_graph,
                                             tmp_path):
        path = self._served_index(catalog_graph, tmp_path)
        registry = IndexRegistry(paths=[path], verify=False, mmap=False)
        (key,) = registry.keys()
        service = registry.get(key).service
        stats = registry.stats()
        assert stats["resident_bytes"] == service.index.array_nbytes() > 0

    def test_memory_budget_evicts_lru(self, catalog_graph, tmp_path):
        paths = [self._served_index(catalog_graph, tmp_path,
                                    name=f"idx{i}")
                 for i in range(3)]
        registry = IndexRegistry(paths=paths, verify=False, mmap=False,
                                 memory_budget=1)  # evict beyond one entry
        for key in list(registry.keys()):
            registry.get(key)
        stats = registry.stats()
        assert stats["evictions"] >= 2
        # the most recently used index always stays loaded
        assert len(stats["loaded"]) == 1

    def test_mmap_registry_fits_budget_without_eviction(self, catalog_graph,
                                                        tmp_path):
        paths = [self._served_index(catalog_graph, tmp_path, name=f"m{i}")
                 for i in range(3)]
        registry = IndexRegistry(paths=paths, verify=False, memory_budget=1)
        for key in list(registry.keys()):
            registry.get(key)
        stats = registry.stats()
        # mmapped indexes are page-cache resident, not heap resident
        assert stats["evictions"] == 0
        assert len(stats["loaded"]) == 3
