"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import Allocation
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.utility.configs import (
    blocking_config,
    lastfm_config,
    multi_item_config,
    single_item_config,
    theorem1_config,
    two_item_config,
)


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_node_graph():
    """The Theorem-1 counterexample network: u -> v with probability 1."""
    return DirectedGraph.from_edges(2, [(0, 1, 1.0)], name="two-node")


@pytest.fixture
def line4():
    """Directed path 0 -> 1 -> 2 -> 3 with probability 1."""
    return generators.line_graph(4)


@pytest.fixture
def star10():
    """Star: node 0 points at 10 leaves with probability 1."""
    return generators.star_graph(10)


@pytest.fixture
def small_er_graph():
    """A small weighted-cascade Erdős–Rényi graph (150 nodes)."""
    graph = generators.erdos_renyi(150, avg_degree=4.0, rng=7, directed=True,
                                   name="er150")
    return weighting.weighted_cascade(graph)


@pytest.fixture
def medium_graph():
    """A medium preferential-attachment graph used by integration tests."""
    graph = generators.preferential_attachment(300, 3, rng=11, directed=True,
                                               name="pa300")
    return weighting.weighted_cascade(graph)


@pytest.fixture
def c1_model():
    """Two-item configuration C1."""
    return two_item_config("C1")


@pytest.fixture
def c1_model_no_noise():
    """C1 utilities with the noise switched off (deterministic)."""
    return two_item_config("C1", noise_sigma=0.0)


@pytest.fixture
def c3_model():
    """Two-item soft-competition configuration C3."""
    return two_item_config("C3")


@pytest.fixture
def blocking_model():
    """Three-item blocking configuration (Table 4)."""
    return blocking_config()


@pytest.fixture
def lastfm_model():
    """Learned Last.fm genre configuration (Table 5)."""
    return lastfm_config()


@pytest.fixture
def single_model():
    """Single item with utility 1 (welfare == spread)."""
    return single_item_config()


@pytest.fixture
def theorem1_model():
    """Figure 1(a) configuration used in the Theorem 1 counterexamples."""
    return theorem1_config()


@pytest.fixture
def empty_allocation():
    return Allocation.empty()
