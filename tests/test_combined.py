"""Tests for the best-of (SeqGRD, MaxGRD) combination."""

import pytest

from repro.core.combined import best_of
from repro.rrsets.imm import IMMOptions

FAST = IMMOptions(max_rr_sets=5_000)


class TestBestOf:
    def test_returns_the_better_allocation(self, small_er_graph, c1_model):
        result = best_of(small_er_graph, c1_model, {"i": 3, "j": 3},
                         marginal_check=False, n_marginal_samples=20,
                         n_evaluation_samples=80, options=FAST, rng=1)
        details = result.details
        assert result.estimated_welfare == pytest.approx(
            max(details["seqgrd_welfare"], details["maxgrd_welfare"]))
        assert result.algorithm in ("BestOf(SeqGRD)", "BestOf(SeqGRD-NM)",
                                    "BestOf(MaxGRD)")

    def test_details_contain_both_sub_results(self, small_er_graph, c1_model):
        result = best_of(small_er_graph, c1_model, {"i": 2, "j": 2},
                         marginal_check=False, n_marginal_samples=20,
                         n_evaluation_samples=50, options=FAST, rng=2)
        assert result.details["seqgrd_result"].algorithm == "SeqGRD-NM"
        assert result.details["maxgrd_result"].algorithm == "MaxGRD"

    def test_budgets_respected_by_winner(self, small_er_graph, c1_model):
        result = best_of(small_er_graph, c1_model, {"i": 3, "j": 2},
                         marginal_check=False, n_marginal_samples=20,
                         n_evaluation_samples=50, options=FAST, rng=3)
        for item in result.allocation.items:
            assert result.allocation.seed_count(item) <= {"i": 3, "j": 2}[item]
