"""Observability subsystem tests.

Covers the metrics primitives (counters, gauges, fixed-bucket log-scale
histograms and their quantiles), per-request tracing, structured JSON
logging, both exposition formats (JSON summary and Prometheus text
0.0.4), the asyncio HTTP exporter, and the serve-layer integration:

* a **golden schema test** pins the key paths of the ``stats`` op
  payload to ``tests/data/golden_stats_schema.json`` — regenerate with
  ``REPRO_REGEN_GOLDEN=1`` after intentional schema changes;
* a **bit-identity test** pins the hard invariant that instrumentation
  observes but never participates: allocations are identical with
  metrics enabled and disabled;
* a regression test for the ``default=str`` serialization fallback
  (counter + structured warning + the client still gets a frame).
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import os
import re
from pathlib import Path

import pytest

from repro.api import EngineConfig, RunSpec, WorkloadSpec, make_request
from repro.graphs.datasets import load_network
from repro.index import build_index
from repro.obs import (
    MetricsRegistry,
    Trace,
    get_logger,
    log_event,
    new_trace_id,
    set_global_metrics_enabled,
)
from repro.obs.httpexp import MetricsExporter
from repro.obs.logging import JsonFormatter, KeyValueFormatter, configure_logging
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.serve import AllocationServer, IndexRegistry
from repro.utility.configs import configuration_model

GOLDEN_SCHEMA = Path(__file__).parent / "data" / "golden_stats_schema.json"

SPEC = RunSpec(
    algorithm="SeqGRD-NM",
    workload=WorkloadSpec(network="nethept", scale=0.01,
                          configuration="C1", budgets={"i": 2, "j": 2}),
    engine=EngineConfig(seed=4, samples=10, max_rr_sets=2000))


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("obs-indexes")
    graph = load_network("nethept", scale=0.01, rng=4)
    model = configuration_model("C1")
    index = build_index(
        graph, model, sampler="marginal",
        budgets=dict(SPEC.workload.budgets),
        options=SPEC.engine.imm_options(), seed=SPEC.engine.seed,
        meta_extra={"network": "nethept", "scale": 0.01,
                    "configuration": "C1", "graph_seed": 4,
                    "fixed_imm_item": None, "fixed_imm_budget": 50})
    index.save(tmp / "obs-idx")
    return tmp


def make_server(index_dir, enabled: bool = True) -> AllocationServer:
    registry = IndexRegistry(directory=index_dir, capacity=2)
    return AllocationServer(registry,
                            metrics=MetricsRegistry(enabled=enabled))


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("x_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_labeled_instruments_are_distinct_and_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", kind="a")
        b = reg.counter("x_total", kind="b")
        assert a is not b
        a.inc()
        assert reg.counter("x_total", kind="a") is a
        assert reg.counter("x_total", kind="a").value == 1.0
        assert b.value == 0.0

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(7)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 5.0

    def test_gauge_fn_reads_callback(self):
        reg = MetricsRegistry()
        state = {"v": 1.0}
        gauge = reg.gauge_fn("dyn", lambda: state["v"])
        assert gauge.value == 1.0
        state["v"] = 9.0
        assert gauge.value == 9.0

    def test_broken_gauge_callback_reports_nan(self):
        reg = MetricsRegistry()
        gauge = reg.gauge_fn("boom", lambda: 1 / 0)
        assert math.isnan(gauge.value)
        # the scrape survives too
        assert "boom" in reg.render_prometheus()


class TestHistogram:
    def test_percentiles_from_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in [0.5] * 50 + [3.0] * 45 + [7.0] * 5:
            hist.observe(value)
        # nearest-rank over bucket upper bounds
        assert hist.percentile(50) == 1.0
        assert hist.percentile(95) == 4.0
        assert hist.percentile(99) == 8.0
        assert hist.count == 100
        assert hist.sum == pytest.approx(0.5 * 50 + 3.0 * 45 + 7.0 * 5)

    def test_overflow_bucket_reports_observed_max(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0,))
        hist.observe(40.0)
        assert hist.percentile(99) == 40.0

    def test_empty_percentile_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.histogram("lat").percentile(50))
        assert reg.histogram("lat").summary() == {"count": 0, "sum": 0.0}

    def test_summary_fields(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0))
        hist.observe(0.25)
        hist.observe(1.75)
        summary = hist.summary()
        assert summary["count"] == 2
        assert summary["min"] == 0.25
        assert summary["max"] == 1.75
        assert summary["mean"] == pytest.approx(1.0)
        assert set(summary) == {"count", "sum", "min", "max", "mean",
                                "p50", "p95", "p99"}

    def test_default_buckets_are_ascending_log_scale(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        ratios = [b / a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("bad", buckets=(2.0, 1.0))


class TestDisabledRegistry:
    def test_disabled_instruments_do_not_record(self):
        reg = MetricsRegistry(enabled=False)
        counter, gauge = reg.counter("c_total"), reg.gauge("g")
        hist = reg.histogram("h")
        counter.inc()
        gauge.set(5)
        hist.observe(1.0)
        assert counter.value == 0.0
        assert gauge.value == 0.0
        assert hist.count == 0

    def test_enable_toggles_existing_handles(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("c_total")
        counter.inc()
        reg.enable(True)
        counter.inc()
        reg.enable(False)
        counter.inc()
        assert counter.value == 1.0

    def test_disabled_registry_still_renders(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c_total", "help text")
        text = reg.render_prometheus()
        assert "c_total 0" in text


# ----------------------------------------------------------------------
# exposition formats
# ----------------------------------------------------------------------
#: a Prometheus sample line: name{labels} value
_SAMPLE_RE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$')


class TestExposition:
    def build_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", "Requests", dialect="v1").inc(3)
        reg.counter("repro_requests_total", dialect="legacy").inc()
        reg.gauge("repro_queue_depth", "Depth").set(2)
        hist = reg.histogram("repro_latency_seconds", "Latency",
                             buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.5):
            hist.observe(value)
        return reg

    def test_summary_shape(self):
        summary = self.build_registry().summary()
        assert summary["counters"]["repro_requests_total"][
            '{dialect="v1"}'] == 3.0
        assert summary["gauges"]["repro_queue_depth"][""] == 2.0
        latency = summary["histograms"]["repro_latency_seconds"][""]
        assert latency["count"] == 4
        assert latency["p50"] == 0.01
        assert json.loads(json.dumps(summary))  # JSON-able end to end

    def test_prometheus_render_is_valid(self):
        text = self.build_registry().render_prometheus()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                continue
            match = _SAMPLE_RE.match(line)
            assert match, line
            float(match.group(3))  # every sample value parses as a float
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{dialect="v1"} 3' in text

    def test_prometheus_buckets_are_cumulative(self):
        text = self.build_registry().render_prometheus()
        buckets = {}
        for line in text.splitlines():
            match = re.match(
                r'repro_latency_seconds_bucket\{le="([^"]+)"\} (\d+)', line)
            if match:
                buckets[match.group(1)] = int(match.group(2))
        assert buckets == {"0.001": 1, "0.01": 3, "0.1": 3, "+Inf": 4}
        assert "repro_latency_seconds_count 4" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", path='a"b\\c\nd').inc()
        line = [l for l in reg.render_prometheus().splitlines()
                if l.startswith("c_total{")][0]
        assert line == 'c_total{path="a\\"b\\\\c\\nd"} 1'

    def test_collector_families_merge_into_both_formats(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda: [
            ("repro_index_loaded", "gauge", "Residency",
             [({"index": "idx"}, 1.0)])])
        reg.register_collector(lambda: 1 / 0)  # broken: must be skipped
        assert reg.summary()["gauges"]["repro_index_loaded"][
            '{index="idx"}'] == 1.0
        assert 'repro_index_loaded{index="idx"} 1' in reg.render_prometheus()


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTrace:
    def test_trace_ids_are_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{16}", t) for t in ids)

    def test_spans_accumulate_in_first_seen_order(self):
        trace = Trace()
        trace.add("parse", 0.001)
        trace.add("queue", 0.002)
        trace.add("queue", 0.003)
        assert trace.spans() == [("parse", 0.001), ("queue", 0.005)]
        assert trace.timings_ms() == {"parse": 1.0, "queue": 5.0}

    def test_span_context_manager_times_block(self):
        trace = Trace()
        with trace.span("work"):
            pass
        [(name, seconds)] = trace.spans()
        assert name == "work" and 0.0 <= seconds < 1.0
        assert trace.elapsed() >= seconds


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestStructuredLogging:
    def record_for(self, formatter, **fields):
        logger = logging.getLogger("repro.test-obs")
        logger.setLevel(logging.DEBUG)
        captured = []
        handler = logging.Handler()
        handler.emit = captured.append
        logger.addHandler(handler)
        try:
            log_event(logger, logging.INFO, "unit-test-event",
                      "hello", **fields)
        finally:
            logger.removeHandler(handler)
        [record] = captured
        return formatter.format(record)

    def test_json_formatter_round_trips(self):
        payload = json.loads(self.record_for(JsonFormatter(), index="idx",
                                             count=3))
        assert payload["event"] == "unit-test-event"
        assert payload["message"] == "hello"
        assert payload["index"] == "idx" and payload["count"] == 3
        assert payload["level"] == "info"

    def test_json_formatter_coerces_unserializable_fields(self):
        payload = json.loads(self.record_for(JsonFormatter(),
                                             bad={1, 2, 3}))
        assert "bad" in str(payload)  # stringified, not dropped

    def test_key_value_formatter(self):
        text = self.record_for(KeyValueFormatter(), index="idx")
        assert "unit-test-event" in text and "index=idx" in text

    def test_get_logger_prefixes_namespace(self):
        assert get_logger("serve").name == "repro.serve"
        assert get_logger("repro.serve").name == "repro.serve"

    def test_configure_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="chatty")


# ----------------------------------------------------------------------
# serve-layer integration
# ----------------------------------------------------------------------
def _key_paths(obj, prefix=""):
    """Sorted dotted key paths of a nested dict (leaves included)."""
    if not isinstance(obj, dict) or not obj:
        return [prefix] if prefix else []
    paths = []
    for key, value in obj.items():
        paths.extend(_key_paths(value, f"{prefix}.{key}" if prefix else key))
    return sorted(paths)


class TestServerObservability:
    def exercise(self, server):
        assert server.dispatch_line('{"op": "ping"}')["pong"] is True
        response = server.dispatch_line(
            json.dumps(make_request(SPEC, request_id=1)))
        assert response["ok"] is True
        bad = server.dispatch_line("garbage")
        assert bad["ok"] is False
        return response

    def test_stats_schema_matches_golden(self, index_dir):
        server = make_server(index_dir)
        self.exercise(server)
        paths = _key_paths(server.stats_payload())
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_SCHEMA.write_text(json.dumps(paths, indent=2) + "\n")
        golden = json.loads(GOLDEN_SCHEMA.read_text())
        assert paths == golden, (
            "stats payload schema drifted; if intentional, regenerate "
            "with REPRO_REGEN_GOLDEN=1 pytest tests/test_obs.py")

    def test_stats_exposes_serving_signals(self, index_dir):
        server = make_server(index_dir)
        self.exercise(server)
        stats = server.stats_payload()
        assert stats["server"]["metrics_enabled"] is True
        metrics = stats["metrics"]
        requests = metrics["counters"]["repro_requests_total"]
        assert requests['{dialect="v1",outcome="ok"}'] == 1.0
        assert requests['{dialect="legacy",outcome="ok"}'] == 1.0
        assert requests['{dialect="invalid",outcome="error"}'] == 1.0
        latency = metrics["histograms"]["repro_request_latency_seconds"][""]
        assert latency["count"] == 3
        assert {"p50", "p95", "p99"} <= set(latency)
        hit_rate = metrics["gauges"]["repro_index_cache_hit_rate"]
        assert '{index="obs-idx"}' in hit_rate
        # spans recorded on the sync path
        spans = metrics["histograms"]["repro_span_seconds"]
        assert {'{stage="parse"}', '{stage="validate"}',
                '{stage="execute"}'} <= set(spans)

    def test_metrics_op(self, index_dir):
        server = make_server(index_dir)
        self.exercise(server)
        response = server.dispatch({"op": "metrics", "id": 7})
        assert response["ok"] is True and response["id"] == 7
        assert set(response["metrics"]) == {"server", "process"}
        assert "repro_requests_total" in response["metrics"]["server"][
            "counters"]

    def test_trace_in_response_timings(self, index_dir):
        server = make_server(index_dir)
        response = server.dispatch_line(
            json.dumps(make_request(SPEC, request_id=2)))
        timings = response["timings"]
        assert re.fullmatch(r"[0-9a-f]{16}", timings["trace_id"])
        assert {"parse", "validate", "execute"} <= set(timings["spans"])
        assert all(isinstance(v, float) and v >= 0
                   for v in timings["spans"].values())

    def test_resync_counter_labels_oversized_and_malformed(self, index_dir):
        server = make_server(index_dir)
        server.dispatch_line("not json")
        server.dispatch_line("z" * (server.max_line_bytes + 1))
        resync = server.metrics.summary()["counters"]["repro_resync_total"]
        assert resync['{reason="malformed"}'] == 1.0
        assert resync['{reason="oversized"}'] == 1.0

    def test_unserializable_response_fallback(self, index_dir):
        server = make_server(index_dir)
        logger = logging.getLogger("repro.serve.server")
        captured = []
        handler = logging.Handler()
        handler.emit = captured.append
        logger.addHandler(handler)
        try:
            frame = server.encode_response(
                {"ok": True, "id": 5, "weird": {1, 2}})
        finally:
            logger.removeHandler(handler)
        # the client still gets a frame ...
        payload = json.loads(frame)
        assert payload["ok"] is True and payload["id"] == 5
        # ... the event is counted ...
        counters = server.metrics.summary()["counters"]
        assert counters["repro_unserializable_responses_total"][""] == 1.0
        # ... and a structured warning names the offending response
        [record] = [r for r in captured
                    if getattr(r, "repro_event", "")
                    == "response-unserializable"]
        assert record.levelno == logging.WARNING
        assert record.repro_fields["id"] == 5

    def test_plain_responses_do_not_count_as_unserializable(self, index_dir):
        server = make_server(index_dir)
        server.encode_response({"ok": True})
        counters = server.metrics.summary()["counters"]
        assert "repro_unserializable_responses_total" not in counters or \
            counters["repro_unserializable_responses_total"][""] == 0.0


class TestBitIdentity:
    """Instrumentation observes — it never participates.

    Allocations must be bit-identical with metrics enabled and disabled
    (trace ids come from ``os.urandom``, not any seeded RNG stream).
    """

    STABLE_KEYS = ("allocation", "welfare", "fingerprint", "budgets",
                   "algorithm", "spec")

    def allocate(self, index_dir, enabled):
        set_global_metrics_enabled(enabled)
        try:
            server = make_server(index_dir, enabled=enabled)
            response = server.dispatch_line(
                json.dumps(make_request(SPEC, request_id=1)))
        finally:
            set_global_metrics_enabled(True)
        assert response["ok"] is True, response
        return {key: response[key] for key in self.STABLE_KEYS}

    def test_allocations_identical_with_and_without_metrics(self, index_dir):
        on = self.allocate(index_dir, enabled=True)
        off = self.allocate(index_dir, enabled=False)
        assert json.dumps(on, sort_keys=True) == \
            json.dumps(off, sort_keys=True)

    def test_node_selection_identical_with_and_without_metrics(self):
        import numpy as np

        from repro.rrsets import RRCollection, node_selection

        def build():
            rng = np.random.default_rng(11)
            collection = RRCollection(60)
            for _ in range(300):
                size = int(rng.integers(1, 6))
                members = rng.choice(60, size=size, replace=False)
                collection.add(members.astype(np.int64),
                               float(rng.random()) + 0.1)
            return collection

        set_global_metrics_enabled(True)
        on = node_selection(build(), k=5)
        set_global_metrics_enabled(False)
        try:
            off = node_selection(build(), k=5)
        finally:
            set_global_metrics_enabled(True)
        assert on.seeds == off.seeds
        assert on.covered_weight == off.covered_weight
        assert on.prefix_weights == off.prefix_weights


# ----------------------------------------------------------------------
# HTTP exporter
# ----------------------------------------------------------------------
async def _http_get(host, port, raw: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    body = await asyncio.wait_for(reader.read(), 30)
    writer.close()
    return body


class TestMetricsExporter:
    def run(self, scenario):
        async def wrapper():
            reg = MetricsRegistry()
            reg.counter("obs_test_total", "A counter").inc(5)
            exporter = MetricsExporter([reg], health=lambda: {"uptime": 1})
            await exporter.start("127.0.0.1", 0)
            host, port = exporter.addresses[0]
            try:
                return await asyncio.wait_for(scenario(host, port), 60)
            finally:
                await exporter.close()
        return asyncio.run(wrapper())

    def test_metrics_route(self):
        body = self.run(lambda host, port: _http_get(
            host, port, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"))
        head, _, payload = body.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"text/plain; version=0.0.4" in head
        assert b"obs_test_total 5" in payload

    def test_healthz_route(self):
        body = self.run(lambda host, port: _http_get(
            host, port, b"GET /healthz HTTP/1.0\r\n\r\n"))
        assert body.startswith(b"HTTP/1.1 200 OK")
        payload = json.loads(body.partition(b"\r\n\r\n")[2])
        assert payload == {"ok": True, "uptime": 1}

    def _healthz_with(self, health):
        async def wrapper():
            exporter = MetricsExporter([MetricsRegistry()], health=health)
            await exporter.start("127.0.0.1", 0)
            host, port = exporter.addresses[0]
            try:
                return await asyncio.wait_for(_http_get(
                    host, port, b"GET /healthz HTTP/1.0\r\n\r\n"), 60)
            finally:
                await exporter.close()
        return asyncio.run(wrapper())

    def test_healthz_ok_state_is_200(self):
        body = self._healthz_with(lambda: {"state": "ok", "ok": True})
        assert body.startswith(b"HTTP/1.1 200 OK")

    def test_healthz_degraded_is_503(self):
        body = self._healthz_with(
            lambda: {"state": "degraded", "ok": False})
        assert body.startswith(b"HTTP/1.1 503 Service Unavailable")
        payload = json.loads(body.partition(b"\r\n\r\n")[2])
        assert payload["state"] == "degraded"

    def test_healthz_draining_is_503(self):
        body = self._healthz_with(
            lambda: {"state": "draining", "ok": False})
        assert body.startswith(b"HTTP/1.1 503 Service Unavailable")

    def test_healthz_failing_callback_is_503(self):
        def boom():
            raise RuntimeError("health probe exploded")
        body = self._healthz_with(boom)
        assert body.startswith(b"HTTP/1.1 503 Service Unavailable")
        payload = json.loads(body.partition(b"\r\n\r\n")[2])
        assert payload == {"ok": False, "state": "error"}

    def test_unknown_route_is_404(self):
        body = self.run(lambda host, port: _http_get(
            host, port, b"GET /nope HTTP/1.1\r\n\r\n"))
        assert body.startswith(b"HTTP/1.1 404")

    def test_post_is_405(self):
        body = self.run(lambda host, port: _http_get(
            host, port, b"POST /metrics HTTP/1.1\r\n\r\n"))
        assert body.startswith(b"HTTP/1.1 405")

    def test_garbage_request_line_is_400(self):
        body = self.run(lambda host, port: _http_get(
            host, port, b"\xff\xfe not http at all\r\n\r\n"))
        assert body.startswith(b"HTTP/1.1 400")

    def test_render_concatenates_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("a_total").inc()
        b.counter("b_total").inc()
        text = MetricsExporter([a, b]).render()
        assert "a_total 1" in text and "b_total 1" in text
