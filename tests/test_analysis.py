"""Tests for the graph analysis helpers."""

import numpy as np
import pytest

from repro.graphs import generators, weighting
from repro.graphs.analysis import (
    DegreeSummary,
    degree_summaries,
    extended_statistics,
    gini_coefficient,
    largest_component_fraction,
    probability_summary,
    reachable_fraction,
    weakly_connected_components,
)
from repro.graphs.graph import DirectedGraph


class TestGini:
    def test_uniform_distribution_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_distribution_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_scale_invariant(self):
        values = [1, 2, 3, 10]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([10 * v for v in values]))


class TestDegreeSummaries:
    def test_star_graph(self, star10):
        summary = degree_summaries(star10)
        assert summary["out"].maximum == 10
        assert summary["out"].mean == pytest.approx(10 / 11)
        assert summary["in"].maximum == 1

    def test_skewed_graph_has_higher_gini_than_er(self):
        er = generators.erdos_renyi(300, 4.0, rng=1)
        pa = generators.preferential_attachment(300, 2, rng=1, directed=False)
        er_gini = degree_summaries(er)["out"].gini
        pa_gini = degree_summaries(pa)["out"].gini
        assert pa_gini > er_gini

    def test_empty_graph(self):
        empty = DirectedGraph.from_edges(0, [])
        summary = DegreeSummary.from_degrees(empty.out_degrees())
        assert summary.mean == 0.0 and summary.maximum == 0


class TestComponents:
    def test_two_components(self):
        graph = DirectedGraph.from_edges(
            5, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        components = weakly_connected_components(graph)
        assert sorted(len(c) for c in components) == [2, 3]
        assert largest_component_fraction(graph) == pytest.approx(0.6)

    def test_direction_ignored(self):
        graph = DirectedGraph.from_edges(3, [(2, 1, 1.0), (1, 0, 1.0)])
        assert len(weakly_connected_components(graph)) == 1

    def test_isolated_nodes(self):
        graph = DirectedGraph.from_edges(4, [(0, 1, 1.0)])
        assert len(weakly_connected_components(graph)) == 3

    def test_empty_graph(self):
        empty = DirectedGraph.from_edges(0, [])
        assert weakly_connected_components(empty) == []
        assert largest_component_fraction(empty) == 0.0


class TestProbabilityAndReachability:
    def test_probability_summary(self):
        graph = DirectedGraph.from_edges(3, [(0, 1, 0.2), (1, 2, 0.8)])
        summary = probability_summary(graph)
        assert summary["mean"] == pytest.approx(0.5)
        assert summary["min"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.8)

    def test_probability_summary_empty(self):
        assert probability_summary(DirectedGraph.from_edges(2, []))["sum"] == 0.0

    def test_reachable_fraction_line(self, line4):
        assert reachable_fraction(line4, 0) == pytest.approx(1.0)
        assert reachable_fraction(line4, 3) == pytest.approx(0.25)

    def test_reachable_fraction_bounds_spread(self):
        graph = weighting.weighted_cascade(
            generators.erdos_renyi(100, 4.0, rng=3))
        from repro.diffusion.estimators import estimate_spread
        node = int(np.argmax(graph.out_degrees()))
        upper = reachable_fraction(graph, node) * graph.num_nodes
        spread = estimate_spread(graph, [node], n_samples=300, rng=4)
        assert spread <= upper + 1e-9


class TestExtendedStatistics:
    def test_keys_and_values(self):
        graph = weighting.weighted_cascade(
            generators.preferential_attachment(200, 3, rng=5))
        stats = extended_statistics(graph)
        assert stats["nodes"] == 200
        assert 0.0 <= stats["out_degree_gini"] <= 1.0
        assert 0.0 < stats["largest_wcc_fraction"] <= 1.0
        assert 0.0 < stats["mean_edge_probability"] <= 1.0
