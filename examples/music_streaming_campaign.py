#!/usr/bin/env python3
"""Music-streaming scenario: campaign over competing genres (paper §6.4).

The paper's motivating example is a music platform (Last.fm) recommending
songs of competing genres: the host controls all promotions and wants to
maximize user satisfaction (social welfare), not the adoption count of any
single genre.  This example walks the full pipeline:

1. generate synthetic listening logs calibrated to the published Last.fm
   genre adoption probabilities (the real logs are not redistributable),
2. learn per-genre utilities with the discrete-choice procedure of §6.4.1
   (reproducing Table 5),
3. run SeqGRD-NM and the Round-robin baseline with equal genre budgets, and
4. compare welfare and per-genre adoption counts (the Table 6 effect:
   welfare rises because the inferior genres lose some adoptions to the
   superior ones while the *total* number of adoptions stays the same).

Run with:  python examples/music_streaming_campaign.py
"""

from repro import estimate_welfare, load_network, round_robin, seqgrd_nm
from repro.utility.learning import (
    learn_utilities,
    synthetic_lastfm_logs,
    utility_model_from_logs,
)

GENRES = ["indie", "rock", "industrial", "progressive metal"]


def main() -> None:
    # --- 1. listening logs and learned utilities -------------------------
    logs = synthetic_lastfm_logs(n_selections=50_000, rng=11)
    learned = learn_utilities(logs, items=GENRES)
    print("learned genre utilities (paper Table 5):")
    for genre in GENRES:
        print(f"  {genre:<18} U = {learned[genre]:.2f}")

    # --- 2. utility model and network ------------------------------------
    model = utility_model_from_logs(logs, items=GENRES)
    graph = load_network("nethept", scale=0.05, rng=3)
    budgets = {genre: 8 for genre in GENRES}
    print(f"\nnetwork: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"budget {budgets['indie']} seeds per genre")

    # --- 3. seed selection -------------------------------------------------
    ours = seqgrd_nm(graph, model, budgets, rng=5)
    baseline = round_robin(graph, model, budgets, rng=5)

    # --- 4. evaluation -----------------------------------------------------
    ours_welfare = estimate_welfare(graph, model, ours.combined_allocation(),
                                    n_samples=300, rng=13)
    base_welfare = estimate_welfare(graph, model,
                                    baseline.combined_allocation(),
                                    n_samples=300, rng=13)

    print(f"\n{'genre':<20}{'SeqGRD-NM adopters':>20}{'Round-robin adopters':>24}")
    for genre in GENRES:
        print(f"{genre:<20}{ours_welfare.adoption_counts[genre]:>20.1f}"
              f"{base_welfare.adoption_counts[genre]:>24.1f}")
    total_ours = sum(ours_welfare.adoption_counts.values())
    total_base = sum(base_welfare.adoption_counts.values())
    print(f"{'total adoptions':<20}{total_ours:>20.1f}{total_base:>24.1f}")
    print(f"\nsocial welfare:  SeqGRD-NM = {ours_welfare.mean:.1f}   "
          f"Round-robin = {base_welfare.mean:.1f}   "
          f"(+{100 * (ours_welfare.mean / base_welfare.mean - 1):.1f}%)")


if __name__ == "__main__":
    main()
