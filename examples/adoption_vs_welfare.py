#!/usr/bin/env python3
"""Adoption count vs social welfare (paper §6.4.3, Table 6).

Does maximizing welfare sacrifice adoptions?  The paper's answer: no — the
*total* number of adoptions stays essentially the same, welfare is gained by
shifting adoptions from inferior items to superior ones.  This example
reproduces that comparison between Round-robin, Snake and SeqGRD-NM under
the three-item blocking configuration of Table 4.

Run with:  python examples/adoption_vs_welfare.py
"""

from repro import (
    blocking_config,
    estimate_welfare,
    load_network,
    round_robin,
    seqgrd_nm,
    snake,
)


def main() -> None:
    graph = load_network("nethept", scale=0.05, rng=17)
    model = blocking_config()
    budgets = {item: 10 for item in model.items}
    print(f"network: {graph.num_nodes} nodes; items and expected utilities:")
    for item in model.items:
        print(f"  {item}: U = {model.deterministic_utility(item):.2f}")
    print(f"  bundle {{i,k}}: U = {model.deterministic_utility(['i', 'k']):.2f} "
          f"(partial competition); every other bundle is negative")

    strategies = {
        "Round-robin": round_robin(graph, model, budgets, rng=4),
        "Snake": snake(graph, model, budgets, rng=4),
        "SeqGRD-NM": seqgrd_nm(graph, model, budgets, rng=4),
    }

    print(f"\n{'strategy':<14}{'welfare':>10}{'total adopt':>13}"
          + "".join(f"{item:>9}" for item in model.items))
    reference = None
    for name, result in strategies.items():
        welfare = estimate_welfare(graph, model, result.combined_allocation(),
                                   n_samples=300, rng=23)
        total = sum(welfare.adoption_counts.values())
        row = (f"{name:<14}{welfare.mean:>10.1f}{total:>13.1f}"
               + "".join(f"{welfare.adoption_counts[item]:>9.1f}"
                         for item in model.items))
        print(row)
        if name == "Round-robin":
            reference = welfare
    if reference is not None:
        print("\n(Compare the last row with the first: welfare is higher, the "
              "total adoption count is similar, and the drop is concentrated "
              "on the inferior items j and k — the Table 6 effect.)")


if __name__ == "__main__":
    main()
