#!/usr/bin/env python3
"""Minimal TCP client for the concurrent ``repro serve`` endpoint.

Start a server over a built index, then run this client against it::

    python -m repro index build --out /tmp/smoke-idx --network nethept \\
        --scale 0.01 --budget 2 --max-rr-sets 2000 --seed 4
    python -m repro serve --index /tmp/smoke-idx --tcp 127.0.0.1:7411 &
    python examples/serve_tcp_client.py 127.0.0.1:7411

The client waits for the endpoint to come up, sends one legacy query, one
versioned spec request and a ``stats`` op over a single connection, and
asserts all three answers — exactly the round trip the CI serve-smoke
step performs.  Exit code 0 means the server accepted, answered and the
responses were well-formed.
"""

from __future__ import annotations

import json
import socket
import sys
import time


def main(argv) -> int:
    address = argv[1] if len(argv) > 1 else "127.0.0.1:7411"
    host, _, port_text = address.rpartition(":")
    host, port = host or "127.0.0.1", int(port_text)

    deadline = time.time() + 30
    while True:
        try:
            connection = socket.create_connection((host, port), timeout=5)
            break
        except OSError:
            if time.time() > deadline:
                print(f"server at {host}:{port} never came up",
                      file=sys.stderr)
                return 1
            time.sleep(0.5)

    stream = connection.makefile("rw", encoding="utf-8", newline="\n")

    def round_trip(request):
        stream.write(json.dumps(request) + "\n")
        stream.flush()
        return json.loads(stream.readline())

    query = round_trip({"op": "query", "budgets": {"i": 2, "j": 2},
                        "id": 1})
    assert query["ok"], query
    assert query["allocation"], query
    print(f"legacy query ok: allocation={query['allocation']}")

    versioned = round_trip({
        "v": 1, "id": 2,
        "spec": {"algorithm": "SeqGRD-NM",
                 "workload": {"network": "nethept", "scale": 0.01,
                              "configuration": "C1", "budget": 2},
                 "engine": {"seed": 4, "samples": 10,
                            "max_rr_sets": 2000}}})
    assert versioned["ok"], versioned
    assert versioned["server"]["index"], versioned
    print(f"versioned query ok: fingerprint={versioned['fingerprint'][:16]}…"
          f" served by {versioned['server']['index']}")

    stats = round_trip({"op": "stats", "id": 3})
    assert stats["ok"], stats
    assert stats["registry"]["entries"] >= 1, stats
    print(f"stats ok: {stats['server']['requests']} requests served, "
          f"{stats['registry']['entries']} index(es) hosted")

    connection.close()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
