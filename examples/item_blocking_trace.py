#!/usr/bin/env python3
"""Watching item blocking happen, round by round.

Competitive welfare maximization is hard precisely because adopting one item
can block a better one (paper §4).  This example uses the traced UIC
simulator to show the phenomenon on the three-item configuration of Table 4:
the inferior item ``j`` seeded close to ``i``'s audience races ahead of
``i`` and blocks it, which is exactly what SeqGRD's marginal check avoids
(Figure 6(c)).

Run with:  python examples/item_blocking_trace.py
"""

from repro import Allocation, blocking_config, load_network, seqgrd, seqgrd_nm
from repro.diffusion.trace import render_trace, trace_uic


def main() -> None:
    graph = load_network("nethept", scale=0.03, rng=31)
    model = blocking_config()
    print("items and expected utilities:")
    for item in model.items:
        print(f"  {item}: U = {model.deterministic_utility(item):.2f}")
    print(f"  {{i,k}}: U = {model.deterministic_utility(['i', 'k']):.2f}  "
          f"(partial competition); {{i,j}} and {{j,k}} are negative\n")

    # a deliberately bad allocation: j seeded right next to i's seeds
    hub = int(graph.out_degrees().argmax())
    neighbours = [int(v) for v in graph.out_neighbors(hub)[0][:2]]
    bad = Allocation({"i": [hub], "j": neighbours[:1], "k": neighbours[1:2]})
    trace = trace_uic(graph, model, bad, rng=5)
    blocked = trace.blocking_events()
    print("=== naive allocation (j seeded next to i) ===")
    print(render_trace(trace, max_events=12))
    print(f"blocking events (a node declined an item it was aware of): "
          f"{len(blocked)}\n")

    # compare SeqGRD (with marginal check) against SeqGRD-NM
    budgets = {"i": 10, "j": 6, "k": 6}
    with_check = seqgrd(graph, model, budgets, n_marginal_samples=100, rng=7,
                        evaluate_welfare=True, n_evaluation_samples=300)
    without = seqgrd_nm(graph, model, budgets, rng=7,
                        evaluate_welfare=True, n_evaluation_samples=300)
    print("=== SeqGRD vs SeqGRD-NM on the same budgets ===")
    print(f"SeqGRD    welfare: {with_check.estimated_welfare:8.1f}   "
          f"(items deferred by the marginal check: "
          f"{with_check.details['appended_items'] or 'none'})")
    print(f"SeqGRD-NM welfare: {without.estimated_welfare:8.1f}")


if __name__ == "__main__":
    main()
