#!/usr/bin/env python3
"""Warm-started follow-up campaign on a drifting network.

A campaign rarely runs once: the host seeds an item, the network keeps
evolving (new follows, unfollows, reweighted ties), and a follow-up
campaign must re-allocate on the *drifted* graph.  The naive loop
rebuilds the RR-set index and re-runs greedy selection from scratch for
every follow-up.  The dynamic subsystem does better:

1. the initial campaign allocates from a *repairable* index (keyed
   per-(set, edge) coins — see :mod:`repro.dynamic`),
2. when the graph drifts, :class:`repro.dynamic.OnlineAllocator`
   repairs only the RR sets whose reverse reachability the delta could
   have touched, and
3. the follow-up allocation is warm-started from the previous CELF
   gains — yet remains **bit-identical** to a cold rebuild + fresh
   selection on the drifted graph.

The example prints the repair fraction, the warm-vs-cold agreement and
timings, and a Monte-Carlo welfare estimate of both campaigns.

Run with:  python examples/followup_campaign.py
"""

import time

from repro import Allocation, estimate_welfare, load_network
from repro.dynamic import OnlineAllocator, build_repairable_index
from repro.dynamic.replay import random_edge_delta
from repro.rrsets.coverage import node_selection
from repro.utility.configs import single_item_config

RR_SETS = 4000
BUDGET = 10
DRIFT_FRACTION = 0.002  # ~0.2% of edges change between campaigns
SEED = 21


def welfare(graph, seeds) -> float:
    model = single_item_config()  # welfare == expected spread
    estimate = estimate_welfare(graph, model,
                                Allocation({"item": list(seeds)}),
                                n_samples=300, rng=9)
    return estimate.mean


def main() -> None:
    graph = load_network("orkut", scale=0.0004, rng=SEED)
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # --- initial campaign: allocate from a repairable index -------------
    start = time.perf_counter()
    index = build_repairable_index(graph, rr_sets=RR_SETS, base_seed=SEED)
    allocator = OnlineAllocator(index, graph)
    initial = allocator.allocate(BUDGET)
    build_s = time.perf_counter() - start
    print(f"\ninitial campaign: {BUDGET} seeds from {RR_SETS} keyed RR "
          f"sets in {build_s:.2f}s")
    print(f"  seeds   : {list(initial.seeds)}")
    print(f"  welfare : {welfare(graph, initial.seeds):.1f} (Monte-Carlo)")

    # --- the network drifts ---------------------------------------------
    delta = random_edge_delta(graph, DRIFT_FRACTION, seed=SEED + 1)
    outcome = allocator.apply(delta)
    report = outcome.report
    print(f"\ngraph drift: {report.delta_ops} edge ops "
          f"({DRIFT_FRACTION:.1%} of edges)")
    print(f"  repaired {report.repaired_sets}/{report.num_sets} RR sets "
          f"({report.repaired_fraction:.1%}) in "
          f"{report.duration_ms:.1f} ms — the other "
          f"{1 - report.repaired_fraction:.1%} replayed bit-for-bit")

    # --- follow-up campaign: warm-started re-allocation -----------------
    start = time.perf_counter()
    followup = allocator.allocate(BUDGET)
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    cold_index = build_repairable_index(allocator.graph, rr_sets=RR_SETS,
                                        base_seed=SEED)
    cold = node_selection(cold_index, BUDGET)
    cold_s = time.perf_counter() - start

    kept = len(set(map(int, followup.seeds))
               & set(map(int, initial.seeds)))
    assert list(followup.seeds) == list(cold.seeds), \
        "warm-started selection must equal the cold rebuild"
    print(f"\nfollow-up campaign ({BUDGET} seeds on the drifted graph):")
    print(f"  seeds   : {list(followup.seeds)} "
          f"({kept}/{BUDGET} carried over from the initial campaign)")
    print(f"  welfare : {welfare(allocator.graph, followup.seeds):.1f}")
    print(f"  warm    : {warm_s * 1e3:7.1f} ms (repair + gains carried "
          f"forward)")
    print(f"  cold    : {cold_s * 1e3:7.1f} ms (full rebuild + fresh "
          f"selection) — identical seeds")
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"\nwarm-started follow-up ran {speedup:.1f}x faster than the "
          f"rebuild, with zero approximation drift")
    print(f"allocator stats: {allocator.stats}")


if __name__ == "__main__":
    main()
