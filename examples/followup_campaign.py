#!/usr/bin/env python3
"""Follow-up campaign on top of an existing allocation (paper §6.2.3).

CWelMax allows part of the allocation to be fixed: some items were seeded by
earlier campaigns and the host now launches a new item.  When the new item
is *superior* (its utility beats every fixed item under any noise), the
SupGRD algorithm gives a (1 - 1/e - ε)-approximation.  This example:

1. fixes the inferior item ``j``'s seeds to the top IMM nodes (the
   influence-maximizing choice a previous campaign would have made),
2. selects the superior item ``i``'s seeds with SupGRD and with SeqGRD-NM,
3. compares the welfare of the two strategies — reproducing the Figure 5
   finding that SupGRD wins when the utility gap between the items is large
   (configuration C6) because it deliberately overlaps with the inferior
   item's audience instead of avoiding it.

Run with:  python examples/followup_campaign.py
"""

from repro import (
    Allocation,
    estimate_welfare,
    imm,
    load_network,
    seqgrd_nm,
    supgrd,
    two_item_config,
)


def main() -> None:
    graph = load_network("orkut", scale=0.0004, rng=21)
    model = two_item_config("C6", bounded_noise=True)
    superior = model.superior_item()
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"superior item: {superior!r} "
          f"(U = {model.deterministic_utility(superior):.2f}) vs "
          f"inferior 'j' (U = {model.deterministic_utility('j'):.2f})")

    # --- previous campaign: item j seeded at the top IMM nodes -----------
    inferior_budget = 20
    previous = imm(graph, inferior_budget, rng=1)
    fixed = Allocation({"j": previous.seeds})
    print(f"\nfixed allocation: {inferior_budget} IMM seeds for item 'j'")

    # --- new campaign for the superior item ------------------------------
    budget = 10
    sup = supgrd(graph, model, budget=budget, fixed_allocation=fixed, rng=2)
    seq = seqgrd_nm(graph, model, budgets={"i": budget},
                    fixed_allocation=fixed, rng=2)

    sup_welfare = estimate_welfare(graph, model, sup.combined_allocation(),
                                   n_samples=300, rng=9)
    seq_welfare = estimate_welfare(graph, model, seq.combined_allocation(),
                                   n_samples=300, rng=9)

    overlap_sup = len(set(sup.allocation.seeds_for("i")) & set(previous.seeds))
    overlap_seq = len(set(seq.allocation.seeds_for("i")) & set(previous.seeds))
    print(f"\nSupGRD    : welfare {sup_welfare.mean:9.1f}   "
          f"runtime {sup.runtime_seconds:6.2f}s   "
          f"seeds overlapping j's audience: {overlap_sup}/{budget}")
    print(f"SeqGRD-NM : welfare {seq_welfare.mean:9.1f}   "
          f"runtime {seq.runtime_seconds:6.2f}s   "
          f"seeds overlapping j's audience: {overlap_seq}/{budget}")
    winner = "SupGRD" if sup_welfare.mean >= seq_welfare.mean else "SeqGRD-NM"
    print(f"\nwinner under C6 (large utility gap): {winner}")


if __name__ == "__main__":
    main()
