#!/usr/bin/env python3
"""Quickstart: competitive welfare maximization in a dozen lines.

Builds a small synthetic stand-in for the NetHEPT network, uses the paper's
two-item configuration C1 (pure competition, comparable utilities), selects
seeds with SeqGRD-NM and reports the resulting expected social welfare and
per-item adoption counts.

Run with:  python examples/quickstart.py
"""

from repro import (
    estimate_welfare,
    load_network,
    seqgrd_nm,
    two_item_config,
)


def main() -> None:
    # 1. a probabilistic social graph (synthetic NetHEPT stand-in,
    #    weighted-cascade edge probabilities p(u,v) = 1/d_in(v))
    graph = load_network("nethept", scale=0.05, rng=42)
    print(f"network: {graph.name} with {graph.num_nodes} nodes and "
          f"{graph.num_edges} edges")

    # 2. a utility configuration: two competing items "i" and "j" (paper C1)
    model = two_item_config("C1")
    for item in model.items:
        print(f"  item {item!r}: expected utility "
              f"{model.deterministic_utility(item):.2f}, "
              f"E[U+] = {model.expected_truncated_utility(item):.3f}")
    print(f"  bundle {{i, j}}: expected utility "
          f"{model.deterministic_utility(['i', 'j']):.2f} (pure competition)")

    # 3. select seeds: 10 per item, maximizing expected social welfare
    result = seqgrd_nm(graph, model, budgets={"i": 10, "j": 10}, rng=42)
    print(f"\nSeqGRD-NM selected (in {result.runtime_seconds:.2f}s):")
    for item in model.items:
        print(f"  {item}: seeds {list(result.seeds_for(item))}")

    # 4. evaluate the allocation by Monte-Carlo simulation of the UIC model
    welfare = estimate_welfare(graph, model, result.combined_allocation(),
                               n_samples=300, rng=7)
    print(f"\nexpected social welfare: {welfare.mean:.1f} "
          f"(± {1.96 * welfare.std_error:.1f})")
    for item, count in welfare.adoption_counts.items():
        print(f"  expected adopters of {item!r}: {count:.1f}")


if __name__ == "__main__":
    main()
