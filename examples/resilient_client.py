#!/usr/bin/env python3
"""Resilient client example: ride out overload, deadlines and drains.

Start a deliberately constrained server over a built index, then point
this client at it::

    python -m repro index build --out /tmp/smoke-idx --network nethept \\
        --scale 0.01 --budget 2 --max-rr-sets 2000 --seed 4
    python -m repro serve --index /tmp/smoke-idx --tcp 127.0.0.1:7411 \\
        --rate-limit 20 --rate-burst 5 &
    python examples/resilient_client.py 127.0.0.1:7411

The client fires a burst of versioned requests through
:class:`repro.serve.ResilientClient`.  Requests the server sheds come
back as typed ``overloaded`` envelopes with a ``retry_after_ms`` hint;
the client backs off (capped exponential + full jitter, hint as floor)
and retries until every request completes.  The summary shows how many
sheds were absorbed — run it against a server without the rate limit to
see the retries disappear.

Also demonstrates a per-request deadline: the final request carries
``deadline_ms`` and may come back ``deadline-exceeded`` on a busy server
— which the client also retries, because a fresh attempt restarts the
deadline clock.
"""

from __future__ import annotations

import asyncio
import sys
import time

from repro.serve.client import ResilientClient, RetriesExhausted, RetryPolicy


def spec_request(request_id, budget=2, deadline_ms=None):
    request = {
        "v": 1, "id": request_id,
        "spec": {"algorithm": "SeqGRD-NM",
                 "workload": {"network": "nethept", "scale": 0.01,
                              "configuration": "C1", "budget": budget},
                 "engine": {"seed": 4, "samples": 10,
                            "max_rr_sets": 2000}}}
    if deadline_ms is not None:
        request["deadline_ms"] = deadline_ms
    return request


async def run(host: str, port: int) -> int:
    sheds = []
    policy = RetryPolicy(max_attempts=10, seed=7,
                         base_delay_s=0.05, max_delay_s=2.0)
    async with ResilientClient(tcp=(host, port), policy=policy,
                               on_retryable=sheds.append) as client:
        started = time.perf_counter()
        burst = [client.request(spec_request(f"burst-{i}",
                                             budget=1 + i % 2))
                 for i in range(40)]
        try:
            responses = await asyncio.gather(*burst)
        except RetriesExhausted as error:
            print(f"gave up after retries: {error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started

        failed = [r for r in responses if not r.get("ok")]
        if failed:
            print(f"non-retryable failures: {failed[:2]}", file=sys.stderr)
            return 1
        print(f"burst of {len(responses)} requests completed in "
              f"{elapsed:.2f}s")
        print(f"  sheds absorbed: {len(sheds)} "
              f"(client retries: {client.stats['retries']}, "
              f"reconnects: {client.stats['reconnects']})")
        for envelope in sheds[:3]:
            error = envelope["error"]
            print(f"  e.g. {error['code']}: queue_depth="
                  f"{error.get('queue_depth')} "
                  f"retry_after_ms={error.get('retry_after_ms')}")

        deadline_response = await client.request(
            spec_request("deadline-demo", deadline_ms=5000))
        assert deadline_response.get("ok"), deadline_response
        latency_ms = deadline_response["timings"]["latency_ms"]
        print(f"deadline_ms=5000 request ok "
              f"(latency {latency_ms:.1f} ms)")
    return 0


def main(argv) -> int:
    address = argv[1] if len(argv) > 1 else "127.0.0.1:7411"
    host, _, port_text = address.rpartition(":")
    return asyncio.run(run(host or "127.0.0.1", int(port_text)))


if __name__ == "__main__":
    sys.exit(main(sys.argv))
