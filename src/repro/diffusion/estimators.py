"""Monte-Carlo estimators of welfare, spread and adoption counts.

These estimators are the shared measurement layer of the library: the greedy
baselines use them to evaluate marginal welfare, the experiment harness uses
them to compare the quality of the allocations produced by the different
algorithms, and the tests use them to validate theoretical relationships
(e.g. Lemma 2's ``u_min·σ(S) ≤ ρ(S) ≤ u_max·σ(S)``).

All estimators accept an explicit sample count and RNG; marginal estimates
use *common random numbers* (the same possible worlds for both allocations)
to reduce variance, which mirrors the paper's practice of averaging 5000
simulations for every marginal-gain evaluation.

Every estimator also accepts ``engine="python"|"vectorized"``
(:mod:`repro.engine.config`): the scalar path simulates one possible world
at a time with the reference simulators, the vectorized path requests
batches of worlds from :mod:`repro.engine.forward`.  Both are unbiased
estimators of the same quantity; they consume the RNG differently, so
point estimates under a fixed seed differ between engines (but each engine
is individually deterministic for a given seed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.allocation import Allocation
from repro.diffusion.ic import simulate_ic
from repro.diffusion.uic import simulate_uic
from repro.diffusion.worlds import LazyEdgeWorld
from repro.engine.config import ENGINE_PYTHON, batch_size, resolve_engine
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


@dataclass
class WelfareEstimate:
    """Monte-Carlo estimate of expected social welfare ``ρ(S)``."""

    mean: float
    std_error: float
    n_samples: int
    adoption_counts: Dict[str, float] = field(default_factory=dict)
    mean_adopters: float = 0.0

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval for the mean."""
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)


def _summarize_welfare(welfare_draws: np.ndarray,
                       counts_total: Dict[str, float],
                       adopters_total: float) -> WelfareEstimate:
    n_samples = len(welfare_draws)
    mean = float(welfare_draws.mean())
    std_error = float(welfare_draws.std(ddof=1) / math.sqrt(n_samples)) \
        if n_samples > 1 else 0.0
    return WelfareEstimate(
        mean=mean,
        std_error=std_error,
        n_samples=n_samples,
        adoption_counts={k: v / n_samples for k, v in counts_total.items()},
        mean_adopters=adopters_total / n_samples,
    )


def estimate_welfare(graph: DirectedGraph, model: UtilityModel,
                     allocation: Allocation, n_samples: int = 1_000,
                     rng: RngLike = None,
                     engine: Optional[str] = None) -> WelfareEstimate:
    """Estimate ``ρ(S)`` by averaging ``n_samples`` independent diffusions."""
    rng = ensure_rng(rng)
    n_samples = max(1, int(n_samples))
    counts_total: Dict[str, float] = {name: 0.0 for name in model.items}
    adopters_total = 0.0

    if resolve_engine(engine) == ENGINE_PYTHON:
        welfare_draws = np.empty(n_samples, dtype=np.float64)
        for s in range(n_samples):
            result = simulate_uic(graph, model, allocation, rng=rng)
            welfare_draws[s] = result.welfare
            for name, count in result.adoption_counts.items():
                counts_total[name] += count
            adopters_total += result.num_adopters
        return _summarize_welfare(welfare_draws, counts_total, adopters_total)

    from repro.engine.forward import simulate_uic_batch

    # bound the batch by nodes *and* edges: the lazy coin cache is (B, m)
    state_size = max(graph.num_nodes, graph.num_edges)
    welfare_draws = np.empty(n_samples, dtype=np.float64)
    done = 0
    while done < n_samples:
        batch = batch_size(state_size, n_samples - done)
        result = simulate_uic_batch(graph, model, allocation,
                                    n_worlds=batch, rng=rng)
        welfare_draws[done:done + batch] = result.welfare
        for name, counts in result.adoption_counts.items():
            counts_total[name] += float(counts.sum())
        adopters_total += float(result.num_adopters.sum())
        done += batch
    return _summarize_welfare(welfare_draws, counts_total, adopters_total)


def estimate_marginal_welfare(graph: DirectedGraph, model: UtilityModel,
                              base: Allocation, extra: Allocation,
                              n_samples: int = 1_000,
                              rng: RngLike = None,
                              engine: Optional[str] = None) -> float:
    """Estimate ``ρ(base ∪ extra) - ρ(base)`` with common random numbers.

    Both allocations are simulated in the *same* possible worlds (same edge
    coins and noise terms), which dramatically reduces the variance of the
    difference — important because marginal gains can be small and even
    negative under competition (item blocking).

    The single-candidate case of :func:`estimate_marginal_welfare_batch`
    (identical world construction and float accumulation, so identical
    seeded results).
    """
    return float(estimate_marginal_welfare_batch(
        graph, model, base, [extra], n_samples=n_samples, rng=rng,
        engine=engine)[0])


def estimate_marginal_welfare_batch(graph: DirectedGraph,
                                    model: UtilityModel,
                                    base: Allocation,
                                    extras: Sequence[Allocation],
                                    n_samples: int = 1_000,
                                    rng: RngLike = None,
                                    engine: Optional[str] = None
                                    ) -> np.ndarray:
    """Estimate ``ρ(base ∪ extra) - ρ(base)`` for many ``extras`` at once.

    All candidates share the *same* possible worlds (edge coins and noise
    terms), and the base allocation is simulated once per world instead of
    once per candidate — so evaluating ``c`` candidates costs ``c + 1``
    simulations per world rather than ``2c``.  This is the first-round
    work-horse of :func:`repro.baselines.celf.celf_greedy_wm`, whose
    initial pass evaluates every candidate exactly once.

    Returns one marginal estimate per entry of ``extras`` (same order).
    The candidate estimates are mutually comparable (common random
    numbers), which is exactly what a greedy argmax over them needs.
    """
    rng = ensure_rng(rng)
    extras = list(extras)
    if not extras:
        return np.zeros(0, dtype=np.float64)
    n_samples = max(1, int(n_samples))
    combined = [base.union(extra) for extra in extras]
    totals = np.zeros(len(extras), dtype=np.float64)

    if resolve_engine(engine) == ENGINE_PYTHON:
        for world_rng in spawn_rngs(rng, n_samples):
            seed = int(world_rng.integers(0, 2**62))
            noise = model.sample_noise_world(world_rng)
            base_result = simulate_uic(
                graph, model, base,
                edge_world=LazyEdgeWorld(graph, np.random.default_rng(seed)),
                noise_world=noise)
            for index, allocation in enumerate(combined):
                result = simulate_uic(
                    graph, model, allocation,
                    edge_world=LazyEdgeWorld(graph,
                                             np.random.default_rng(seed)),
                    noise_world=noise)
                totals[index] += result.welfare - base_result.welfare
        return totals / n_samples

    from repro.engine.coins import FixedCoinBatch, sample_edge_coin_matrix
    from repro.engine.forward import simulate_uic_batch

    # bound the batch by nodes *and* edges: the shared coin matrix is (B, m)
    state_size = max(graph.num_nodes, graph.num_edges)
    done = 0
    while done < n_samples:
        batch = batch_size(state_size, n_samples - done)
        noise = model.sample_noise_worlds(rng, batch)
        coins = FixedCoinBatch(graph,
                               sample_edge_coin_matrix(graph, batch, rng))
        base_welfare = simulate_uic_batch(graph, model, base, n_worlds=batch,
                                          edge_worlds=coins,
                                          noise_worlds=noise).welfare
        for index, allocation in enumerate(combined):
            result = simulate_uic_batch(graph, model, allocation,
                                        n_worlds=batch, edge_worlds=coins,
                                        noise_worlds=noise)
            totals[index] += float((result.welfare - base_welfare).sum())
        done += batch
    return totals / n_samples


def estimate_spread(graph: DirectedGraph, seeds: Iterable[int],
                    n_samples: int = 1_000, rng: RngLike = None,
                    engine: Optional[str] = None) -> float:
    """Estimate the IC influence spread ``σ(S)`` of a seed set."""
    rng = ensure_rng(rng)
    seeds = list(int(v) for v in seeds)
    if not seeds:
        return 0.0
    n_samples = max(1, int(n_samples))

    if resolve_engine(engine) == ENGINE_PYTHON:
        total = 0
        for _ in range(n_samples):
            total += len(simulate_ic(graph, seeds, rng=rng))
        return total / n_samples

    from repro.engine.forward import simulate_ic_batch

    total = 0.0
    done = 0
    while done < n_samples:
        batch = batch_size(graph.num_nodes, n_samples - done)
        active = simulate_ic_batch(graph, seeds, batch, rng=rng)
        total += float(np.count_nonzero(active))
        done += batch
    return total / n_samples


def estimate_marginal_spread(graph: DirectedGraph, base: Iterable[int],
                             extra: Iterable[int], n_samples: int = 1_000,
                             rng: RngLike = None,
                             engine: Optional[str] = None) -> float:
    """Estimate ``σ(base ∪ extra) - σ(base)`` with common random numbers."""
    rng = ensure_rng(rng)
    base = list(int(v) for v in base)
    extra = list(int(v) for v in extra)
    combined = sorted(set(base) | set(extra))
    n_samples = max(1, int(n_samples))

    if resolve_engine(engine) == ENGINE_PYTHON:
        total = 0.0
        for world_rng in spawn_rngs(rng, n_samples):
            seed = int(world_rng.integers(0, 2**62))
            world_a = LazyEdgeWorld(graph, np.random.default_rng(seed))
            world_b = LazyEdgeWorld(graph, np.random.default_rng(seed))
            spread_base = len(simulate_ic(graph, base, edge_world=world_a)) \
                if base else 0
            spread_comb = len(simulate_ic(graph, combined,
                                          edge_world=world_b)) \
                if combined else 0
            total += spread_comb - spread_base
        return total / n_samples

    from repro.engine.coins import sample_edge_coin_matrix
    from repro.engine.forward import simulate_ic_batch

    state_size = max(graph.num_nodes, graph.num_edges)
    total = 0.0
    done = 0
    while done < n_samples:
        batch = batch_size(state_size, n_samples - done)
        live = sample_edge_coin_matrix(graph, batch, rng)
        spread_base = np.count_nonzero(
            simulate_ic_batch(graph, base, batch, edge_live=live)) \
            if base else 0
        spread_comb = np.count_nonzero(
            simulate_ic_batch(graph, combined, batch, edge_live=live)) \
            if combined else 0
        total += float(spread_comb - spread_base)
        done += batch
    return total / n_samples


def estimate_adoption_counts(graph: DirectedGraph, model: UtilityModel,
                             allocation: Allocation, n_samples: int = 1_000,
                             rng: RngLike = None,
                             engine: Optional[str] = None) -> Dict[str, float]:
    """Expected number of adopters of each item (paper Table 6)."""
    estimate = estimate_welfare(graph, model, allocation, n_samples, rng,
                                engine=engine)
    return estimate.adoption_counts


def exact_welfare_enumeration(graph: DirectedGraph, model: UtilityModel,
                              allocation: Allocation,
                              noise_world: Optional[np.ndarray] = None) -> float:
    """Exact expected welfare by enumerating all edge worlds (tiny graphs only).

    Used by tests to validate the Monte-Carlo estimator and the RR-set
    machinery on graphs with a handful of edges.  The noise world can be
    fixed (the default uses zero noise, i.e. deterministic utilities).
    """
    edges = list(graph.edges())
    if len(edges) > 20:
        raise ValueError("exact enumeration supports at most 20 edges")
    from repro.diffusion.worlds import EdgeWorld

    total = 0.0
    for mask in range(1 << len(edges)):
        prob = 1.0
        live_out: List[List[int]] = [[] for _ in range(graph.num_nodes)]
        for index, (u, v, p) in enumerate(edges):
            if mask >> index & 1:
                prob *= p
                live_out[u].append(v)
            else:
                prob *= 1.0 - p
        if prob == 0.0:
            continue
        world = EdgeWorld([np.array(a, dtype=np.int64) for a in live_out])
        result = simulate_uic(graph, model, allocation, edge_world=world,
                              noise_world=noise_world
                              if noise_world is not None
                              else np.zeros(model.num_items))
        total += prob * result.welfare
    return total


__all__ = [
    "WelfareEstimate",
    "estimate_welfare",
    "estimate_marginal_welfare",
    "estimate_marginal_welfare_batch",
    "estimate_spread",
    "estimate_marginal_spread",
    "estimate_adoption_counts",
    "exact_welfare_enumeration",
]
