"""Forward simulation of the UIC (utility-driven independent cascade) model.

The model (paper §3): every node keeps a *desire set* (items it has been
informed about) and an *adoption set* (the utility-maximizing subset of the
desire set it has adopted so far).  At ``t = 1`` the seed nodes' desire sets
are initialised from the allocation and they adopt the best bundle with
non-negative utility.  Whenever a node adopts a new item at time ``t-1`` it
makes one influence attempt on each out-neighbour (success probability
``p_uv``, one coin per edge in possible-world terms); informed neighbours
add the item to their desire set and re-optimize their adoption, which must
be a superset of their previous adoption (adoption is progressive).  The
process stops when no adoption changes.

Both the desire and the adoption set of a node are bitmasks over the item
catalog, and the per-world utilities of all ``2^m`` bundles are tabulated
once, so the adoption ``argmax`` is a submask scan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.allocation import Allocation
from repro.diffusion.worlds import EdgeWorld, LazyEdgeWorld, sample_edge_world
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng

EdgeWorldLike = Union[EdgeWorld, LazyEdgeWorld]


@dataclass
class DiffusionResult:
    """Outcome of one deterministic UIC diffusion (one possible world).

    Attributes
    ----------
    adoption_masks:
        Per-node bitmask of adopted items at convergence.
    welfare:
        Sum over nodes of the utility of their adopted bundle in this world
        (``ρ_w(S)``).
    adoption_counts:
        Number of adopters per item (item name -> count).
    num_adopters:
        Number of nodes that adopted at least one item.
    rounds:
        Number of diffusion rounds until convergence.
    """

    adoption_masks: np.ndarray
    welfare: float
    adoption_counts: Dict[str, int]
    num_adopters: int
    rounds: int

    def adopted_bundle(self, node: int, model: UtilityModel) -> tuple:
        """Item names adopted by ``node``."""
        return model.catalog.items_of(int(self.adoption_masks[node]))


def best_bundle(desire_mask: int, adopted_mask: int,
                utilities: np.ndarray) -> int:
    """Utility-maximizing bundle ``T`` with ``A ⊆ T ⊆ R`` and ``U(T) ≥ 0``.

    Ties are broken towards smaller bundles (fewer items) and then smaller
    masks so the simulation is deterministic.  If no candidate has
    non-negative utility the previous adoption is kept (the previous
    adoption always has non-negative utility by induction, the empty bundle
    having utility 0).
    """
    free = desire_mask & ~adopted_mask
    best_mask = adopted_mask
    best_utility = float(utilities[adopted_mask])
    if best_utility < 0.0:
        best_utility = float("-inf")
        best_mask = adopted_mask
    # enumerate submasks of `free`, including 0 (keep current adoption)
    sub = free
    while True:
        candidate = adopted_mask | sub
        utility = float(utilities[candidate])
        if utility >= 0.0:
            better = utility > best_utility + 1e-12
            tie = abs(utility - best_utility) <= 1e-12
            if better or (tie and _prefer(candidate, best_mask)):
                best_utility = utility
                best_mask = candidate
        if sub == 0:
            break
        sub = (sub - 1) & free
    return best_mask


def _prefer(candidate: int, incumbent: int) -> bool:
    """Tie-break: fewer items first, then smaller mask."""
    c_bits, i_bits = bin(candidate).count("1"), bin(incumbent).count("1")
    if c_bits != i_bits:
        return c_bits < i_bits
    return candidate < incumbent


def simulate_uic(graph: DirectedGraph, model: UtilityModel,
                 allocation: Allocation,
                 rng: RngLike = None,
                 edge_world: Optional[EdgeWorldLike] = None,
                 noise_world: Optional[np.ndarray] = None,
                 max_rounds: Optional[int] = None) -> DiffusionResult:
    """Run one UIC diffusion and return its :class:`DiffusionResult`.

    Parameters
    ----------
    graph, model, allocation:
        The CWelMax instance (graph, utility model) and the seed allocation
        ``S`` (possibly a union of a fixed allocation and a new one).
    rng:
        Randomness source used to sample whatever part of the possible world
        is not supplied explicitly.
    edge_world:
        Fixed edge world; when omitted a :class:`LazyEdgeWorld` is used so
        edge coins are flipped on demand.
    noise_world:
        Fixed noise world (length-``m`` vector); sampled from the model's
        noise distributions when omitted.
    max_rounds:
        Safety cap on the number of rounds (defaults to ``n``).
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    catalog = model.catalog
    if noise_world is None:
        noise_world = model.sample_noise_world(rng)
    utilities = model.utility_table(noise_world)
    if edge_world is None:
        edge_world = LazyEdgeWorld(graph, rng)

    desire = np.zeros(n, dtype=np.int64)
    adopted = np.zeros(n, dtype=np.int64)

    seed_masks = allocation.node_item_masks(catalog, n)
    seeds = np.nonzero(seed_masks)[0]

    # time t = 1: seeds are informed of their allocated items and adopt
    frontier: deque = deque()
    for node in seeds:
        desire[node] = seed_masks[node]
        new_adoption = best_bundle(int(desire[node]), 0, utilities)
        if new_adoption:
            adopted[node] = new_adoption
            frontier.append((int(node), new_adoption))

    rounds = 0
    limit = n if max_rounds is None else int(max_rounds)
    while frontier and rounds < limit:
        rounds += 1
        # synchronous round: first gather every inform event of this time
        # step, then let each informed node re-optimize its adoption once.
        pending: Dict[int, int] = {}
        while frontier:
            node, new_items = frontier.popleft()
            live_targets = edge_world.out_neighbors(node)
            for target in live_targets:
                target = int(target)
                missing = new_items & ~desire[target]
                if missing:
                    pending[target] = pending.get(target, 0) | missing
        next_frontier: deque = deque()
        for target, informed in pending.items():
            desire[target] |= informed
            previous = int(adopted[target])
            updated = best_bundle(int(desire[target]), previous, utilities)
            if updated != previous:
                adopted[target] = updated
                next_frontier.append((target, updated & ~previous))
        frontier = next_frontier

    welfare = float(np.sum(utilities[adopted]))
    counts: Dict[str, int] = {}
    for name, bit in catalog.iter_singletons():
        counts[name] = int(np.count_nonzero(adopted & bit))
    num_adopters = int(np.count_nonzero(adopted))
    return DiffusionResult(adoption_masks=adopted, welfare=welfare,
                           adoption_counts=counts, num_adopters=num_adopters,
                           rounds=rounds)


__all__ = ["simulate_uic", "best_bundle", "DiffusionResult"]
