"""Classic single-item Independent Cascade (IC) simulation.

The IC model is both a baseline substrate (TCIM, Balance-C and IMM reason
about single-item spread) and the backbone of the analysis: the influence
spread ``σ(S)`` bounds the social welfare via ``u_min·σ(S) ≤ ρ(S) ≤
u_max·σ(S)`` (paper Lemma 2).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence, Set, Union

import numpy as np

from repro.diffusion.worlds import EdgeWorld, LazyEdgeWorld
from repro.graphs.graph import DirectedGraph
from repro.utils.rng import RngLike, ensure_rng

EdgeWorldLike = Union[EdgeWorld, LazyEdgeWorld]


def simulate_ic(graph: DirectedGraph, seeds: Iterable[int],
                rng: RngLike = None,
                edge_world: Optional[EdgeWorldLike] = None) -> Set[int]:
    """Run one IC diffusion from ``seeds`` and return the active node set."""
    rng = ensure_rng(rng)
    if edge_world is None:
        edge_world = LazyEdgeWorld(graph, rng)
    active: Set[int] = set(int(v) for v in seeds)
    frontier: deque = deque(active)
    while frontier:
        node = frontier.popleft()
        for target in edge_world.out_neighbors(node):
            target = int(target)
            if target not in active:
                active.add(target)
                frontier.append(target)
    return active


def reachable_set(edge_world: EdgeWorldLike, seeds: Iterable[int]) -> Set[int]:
    """Nodes reachable from ``seeds`` in a fixed edge world (``Γ_w(S)``)."""
    active: Set[int] = set(int(v) for v in seeds)
    frontier: deque = deque(active)
    while frontier:
        node = frontier.popleft()
        for target in edge_world.out_neighbors(node):
            target = int(target)
            if target not in active:
                active.add(target)
                frontier.append(target)
    return active


def spread_in_world(edge_world: EdgeWorldLike, seeds: Iterable[int]) -> int:
    """Number of nodes reachable from ``seeds`` in a fixed edge world."""
    return len(reachable_set(edge_world, seeds))


__all__ = ["simulate_ic", "reachable_set", "spread_in_world"]
