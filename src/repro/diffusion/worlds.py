"""Possible-world semantics of the UIC model.

A possible world ``w = (w1, w2)`` is an *edge world* (a deterministic graph
obtained by flipping one independent coin per edge with probability
``p_uv``) together with a *noise world* (one sampled noise term per item).
Propagation and adoption inside a possible world are fully deterministic,
which is what the analysis in the paper (and the RR-set machinery) exploits.

:class:`EdgeWorld` materializes the live out-edges of every node.
:class:`LazyEdgeWorld` flips the coins for a node's out-edges the first time
that node becomes an influencer and caches the outcome — equivalent in
distribution, and much cheaper when a diffusion only reaches a small part of
a large graph (the common case with weighted-cascade probabilities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graphs.graph import DirectedGraph
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class EdgeWorld:
    """A deterministic edge world: live out-neighbours of every node."""

    live_out: List[np.ndarray]

    def out_neighbors(self, node: int) -> np.ndarray:
        """Live out-neighbours of ``node`` in this world."""
        return self.live_out[node]

    @property
    def num_nodes(self) -> int:
        return len(self.live_out)

    def num_live_edges(self) -> int:
        """Total number of live edges in this world."""
        return int(sum(len(a) for a in self.live_out))


def sample_edge_world(graph: DirectedGraph, rng: RngLike = None) -> EdgeWorld:
    """Sample a full edge world by flipping one coin per edge."""
    rng = ensure_rng(rng)
    live: List[np.ndarray] = []
    for node in range(graph.num_nodes):
        targets, probs = graph.out_neighbors(node)
        if len(targets) == 0:
            live.append(targets)
            continue
        coins = rng.random(len(targets)) < probs
        live.append(targets[coins])
    return EdgeWorld(live_out=live)


class LazyEdgeWorld:
    """Edge world whose coins are flipped on first use and then cached.

    Within one diffusion this is indistinguishable from a fully sampled
    :class:`EdgeWorld`: each edge's coin is flipped exactly once no matter
    how many items its source node eventually adopts.
    """

    def __init__(self, graph: DirectedGraph, rng: RngLike = None) -> None:
        self._graph = graph
        self._rng = ensure_rng(rng)
        self._cache: Dict[int, np.ndarray] = {}

    def out_neighbors(self, node: int) -> np.ndarray:
        """Live out-neighbours of ``node``, sampling coins on first access."""
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        targets, probs = self._graph.out_neighbors(node)
        if len(targets) == 0:
            live = targets
        else:
            coins = self._rng.random(len(targets)) < probs
            live = targets[coins]
        self._cache[node] = live
        return live

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes


@dataclass
class PossibleWorld:
    """A fully specified possible world ``(w1, w2)``."""

    edge_world: EdgeWorld
    noise_world: np.ndarray


__all__ = ["EdgeWorld", "LazyEdgeWorld", "PossibleWorld", "sample_edge_world"]
