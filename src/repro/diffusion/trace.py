"""Traced UIC diffusion: per-round adoption events for inspection.

The plain simulator (:mod:`repro.diffusion.uic`) only returns the final
adoption state, which is what the estimators need.  For debugging utility
configurations, demonstrating item blocking, and teaching examples it is
useful to see *when* and *why* each node adopted each bundle.
:func:`trace_uic` re-runs the same synchronous diffusion while recording an
:class:`AdoptionEvent` for every adoption change, and
:func:`render_trace` pretty-prints the timeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.allocation import Allocation
from repro.diffusion.uic import best_bundle
from repro.diffusion.worlds import EdgeWorld, LazyEdgeWorld
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng

EdgeWorldLike = Union[EdgeWorld, LazyEdgeWorld]


@dataclass(frozen=True)
class AdoptionEvent:
    """One adoption change of one node at one time step."""

    time: int
    node: int
    adopted_items: Tuple[str, ...]
    new_items: Tuple[str, ...]
    utility: float
    informed_by: Tuple[int, ...]
    #: items the node was aware of but did not adopt at this time
    rejected_items: Tuple[str, ...] = ()


@dataclass
class DiffusionTrace:
    """Full record of one traced UIC diffusion."""

    events: List[AdoptionEvent] = field(default_factory=list)
    final_adoption: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    welfare: float = 0.0
    rounds: int = 0

    def events_at(self, time: int) -> List[AdoptionEvent]:
        """Events that happened at a given time step."""
        return [event for event in self.events if event.time == time]

    def events_for(self, node: int) -> List[AdoptionEvent]:
        """Adoption history of one node."""
        return [event for event in self.events if event.node == node]

    def adopters_of(self, item: str) -> List[int]:
        """Nodes whose final adoption contains ``item``."""
        return sorted(node for node, items in self.final_adoption.items()
                      if item in items)

    def blocking_events(self) -> List[AdoptionEvent]:
        """Events where a node declined at least one item it was aware of —
        the signature of competitive blocking."""
        return [event for event in self.events if event.rejected_items]


def trace_uic(graph: DirectedGraph, model: UtilityModel,
              allocation: Allocation,
              rng: RngLike = None,
              edge_world: Optional[EdgeWorldLike] = None,
              noise_world: Optional[np.ndarray] = None,
              max_rounds: Optional[int] = None) -> DiffusionTrace:
    """Run one UIC diffusion and record every adoption event.

    The diffusion semantics are identical to
    :func:`repro.diffusion.uic.simulate_uic` (same synchronous rounds, same
    tie-breaking); only the bookkeeping differs.
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    catalog = model.catalog
    if noise_world is None:
        noise_world = model.sample_noise_world(rng)
    utilities = model.utility_table(noise_world)
    if edge_world is None:
        edge_world = LazyEdgeWorld(graph, rng)

    desire = np.zeros(n, dtype=np.int64)
    adopted = np.zeros(n, dtype=np.int64)
    trace = DiffusionTrace()

    def record(time: int, node: int, previous: int, current: int,
               informed_by: Sequence[int]) -> None:
        new_mask = current & ~previous
        rejected_mask = desire[node] & ~current
        trace.events.append(AdoptionEvent(
            time=time,
            node=int(node),
            adopted_items=catalog.items_of(int(current)),
            new_items=catalog.items_of(int(new_mask)),
            utility=float(utilities[int(current)]),
            informed_by=tuple(sorted(int(v) for v in informed_by)),
            rejected_items=catalog.items_of(int(rejected_mask)),
        ))

    seed_masks = allocation.node_item_masks(catalog, n)
    frontier: deque = deque()
    for node in np.nonzero(seed_masks)[0]:
        desire[node] = seed_masks[node]
        choice = best_bundle(int(desire[node]), 0, utilities)
        if choice:
            adopted[node] = choice
            frontier.append((int(node), choice))
            record(1, int(node), 0, choice, informed_by=())

    rounds = 0
    limit = n if max_rounds is None else int(max_rounds)
    while frontier and rounds < limit:
        rounds += 1
        pending: Dict[int, Tuple[int, List[int]]] = {}
        while frontier:
            node, new_items = frontier.popleft()
            for target in edge_world.out_neighbors(node):
                target = int(target)
                missing = new_items & ~desire[target]
                if missing:
                    mask, sources = pending.get(target, (0, []))
                    pending[target] = (mask | missing, sources + [node])
        next_frontier: deque = deque()
        for target, (informed, sources) in pending.items():
            desire[target] |= informed
            previous = int(adopted[target])
            updated = best_bundle(int(desire[target]), previous, utilities)
            if updated != previous:
                adopted[target] = updated
                next_frontier.append((target, updated & ~previous))
                record(rounds + 1, target, previous, updated, sources)
        frontier = next_frontier

    trace.final_adoption = {int(v): catalog.items_of(int(adopted[v]))
                            for v in range(n) if adopted[v]}
    trace.welfare = float(np.sum(utilities[adopted]))
    trace.rounds = rounds
    return trace


def render_trace(trace: DiffusionTrace, max_events: int = 50) -> str:
    """Human-readable timeline of a traced diffusion."""
    lines = [f"diffusion finished after {trace.rounds} rounds, "
             f"welfare {trace.welfare:.2f}, "
             f"{len(trace.final_adoption)} adopters"]
    for event in trace.events[:max_events]:
        informed = (f" (informed by {list(event.informed_by)})"
                    if event.informed_by else " (seed)")
        rejected = (f", declined {list(event.rejected_items)}"
                    if event.rejected_items else "")
        lines.append(
            f"  t={event.time:<3} node {event.node:<5} adopted "
            f"{list(event.new_items)} -> bundle {list(event.adopted_items)} "
            f"(U = {event.utility:.2f}){informed}{rejected}")
    hidden = len(trace.events) - max_events
    if hidden > 0:
        lines.append(f"  ... {hidden} more events")
    return "\n".join(lines)


__all__ = ["AdoptionEvent", "DiffusionTrace", "trace_uic", "render_trace"]
