"""UIC / IC diffusion simulation and Monte-Carlo estimation."""

from repro.diffusion.worlds import (
    EdgeWorld,
    LazyEdgeWorld,
    PossibleWorld,
    sample_edge_world,
)
from repro.diffusion.uic import DiffusionResult, best_bundle, simulate_uic
from repro.diffusion.trace import AdoptionEvent, DiffusionTrace, render_trace, trace_uic
from repro.diffusion.ic import reachable_set, simulate_ic, spread_in_world
from repro.diffusion.estimators import (
    WelfareEstimate,
    estimate_adoption_counts,
    estimate_marginal_spread,
    estimate_marginal_welfare,
    estimate_marginal_welfare_batch,
    estimate_spread,
    estimate_welfare,
    exact_welfare_enumeration,
)

__all__ = [
    "EdgeWorld",
    "LazyEdgeWorld",
    "PossibleWorld",
    "sample_edge_world",
    "DiffusionResult",
    "best_bundle",
    "simulate_uic",
    "AdoptionEvent",
    "DiffusionTrace",
    "trace_uic",
    "render_trace",
    "simulate_ic",
    "reachable_set",
    "spread_in_world",
    "WelfareEstimate",
    "estimate_welfare",
    "estimate_marginal_welfare",
    "estimate_marginal_welfare_batch",
    "estimate_spread",
    "estimate_marginal_spread",
    "estimate_adoption_counts",
    "exact_welfare_enumeration",
]
