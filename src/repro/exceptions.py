"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses signal
configuration problems (bad graphs, bad utility models, infeasible budgets)
versus runtime problems (an algorithm invoked on an instance that violates
its preconditions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class GraphError(ReproError):
    """Raised for malformed graphs (bad node ids, probabilities, CSR data)."""


class UtilityModelError(ReproError):
    """Raised for inconsistent utility models (negative prices, unknown items,
    non-monotone valuations when a monotone one is required, …)."""


class AllocationError(ReproError):
    """Raised for invalid seed allocations (budget violations, unknown nodes
    or items, overlap between the fixed and the to-be-selected item sets)."""


class AlgorithmError(ReproError):
    """Raised when an algorithm's preconditions are not met, e.g. SupGRD
    without a superior item or Balance-C with more than two items."""


class SpecError(ReproError):
    """Raised for invalid run specifications (:mod:`repro.api`): unknown
    configurations, malformed budget vectors, unsupported capability
    combinations such as ``--workers`` on an algorithm without sharded
    sampling, or unparsable spec dictionaries."""


class ConvergenceError(ReproError):
    """Raised when an iterative procedure fails to converge within its
    configured iteration limit."""


class DeadlineExceeded(ReproError):
    """Raised (or returned as a batch result slot) when a served request's
    deadline expired before its execution started; the server answers a
    ``deadline-exceeded`` envelope instead of burning worker time."""


class IndexStoreError(ReproError):
    """Raised by the persistent RR-set index store: missing or corrupt index
    files, format-version mismatches, or a fingerprint mismatch (the stored
    index was built for a different graph/configuration and must be
    rebuilt)."""
