"""The paper's contribution: CWelMax seed-selection algorithms."""

from repro.allocation import Allocation, validate_budgets
from repro.core.results import AllocationResult
from repro.core.prima import PrimaResult, prima_plus
from repro.core.seqgrd import seqgrd, seqgrd_nm
from repro.core.maxgrd import maxgrd
from repro.core.supgrd import supgrd
from repro.core.combined import best_of
from repro.core.fairness import ExposureReport, exposure_report, fair_seqgrd

__all__ = [
    "Allocation",
    "validate_budgets",
    "AllocationResult",
    "PrimaResult",
    "prima_plus",
    "seqgrd",
    "seqgrd_nm",
    "maxgrd",
    "supgrd",
    "best_of",
    "ExposureReport",
    "exposure_report",
    "fair_seqgrd",
]
