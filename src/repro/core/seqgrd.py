"""SeqGRD and SeqGRD-NM (paper Algorithm 1).

SeqGRD selects one pool of ``Σ b_i`` seed nodes with PRIMA+ (approximately
optimal *marginal* spread on top of the fixed allocation ``S_P``), sorts the
unallocated items by expected truncated utility, and hands the highest-
utility items the top seeds.  An optional *marginal check* simulates whether
adding an item's allocation actually increases welfare — skipping (for now)
items that would block higher-utility items — and afterwards appends every
skipped item so all budgets are exhausted, which is what the
``u_min/u_max · (1 - 1/e - ε)`` guarantee of Theorem 3 relies on.

SeqGRD-NM ("no marginal") is the same algorithm without the marginal check:
same approximation guarantee, much faster (no Monte-Carlo simulations), but
it can suffer from item blocking in configurations like Table 4
(Figure 6(c)).
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.allocation import Allocation, validate_budgets
from repro.core.prima import PrimaResult, prima_plus
from repro.core.results import AllocationResult
from repro.rrsets.coverage import node_selection
from repro.diffusion.estimators import estimate_marginal_welfare, estimate_welfare
from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


def seqgrd(graph: DirectedGraph, model: UtilityModel,
           budgets: Mapping[str, int],
           fixed_allocation: Optional[Allocation] = None,
           marginal_check: bool = True,
           n_marginal_samples: int = 200,
           options: Optional[IMMOptions] = None,
           evaluate_welfare: bool = False,
           n_evaluation_samples: int = 500,
           rng: RngLike = None,
           engine: Optional[str] = None,
           workers: Optional[int] = None,
           index: Optional["FrozenRRIndex"] = None,
           keep_rr_collection: bool = False,
           selection_strategy: Optional[str] = None) -> AllocationResult:
    """Run SeqGRD (or SeqGRD-NM when ``marginal_check=False``).

    Parameters
    ----------
    graph, model:
        The CWelMax instance.
    budgets:
        Budget ``b_i`` for every item in ``I_2`` (the items to allocate).
        Items present in ``fixed_allocation`` must not appear here.
    fixed_allocation:
        The existing allocation ``S_P`` (defaults to empty).
    marginal_check:
        Whether to perform the Monte-Carlo marginal-welfare check of
        Algorithm 1 line 8.  ``False`` gives SeqGRD-NM.
    n_marginal_samples:
        Monte-Carlo samples per marginal check (the paper uses 5000; the
        default here is smaller so pure-Python runs stay fast — raise it for
        higher fidelity).
    options:
        IMM/PRIMA+ accuracy options (ε, ℓ, sampling caps).
    evaluate_welfare:
        When true, the returned result carries a Monte-Carlo estimate of
        ``ρ(S ∪ S_P)``.
    workers:
        When given, PRIMA+'s marginal RR sets come from the deterministic
        sharded builder with this many worker processes (identical results
        for any worker count at a fixed seed).
    index:
        A prebuilt marginal :class:`~repro.index.frozen.FrozenRRIndex`:
        PRIMA+'s sampling is skipped and the ordered seed pool comes from
        one greedy coverage selection over the index (bit-identical to the
        pool of the build run).
    keep_rr_collection:
        Record PRIMA+'s final RR collection in
        ``result.details["rr_collection"]`` so it can be frozen into a
        persistent index.
    selection_strategy:
        Greedy-selection strategy
        (:data:`repro.rrsets.coverage.SELECTION_STRATEGIES`); bit-identical
        allocations for every strategy.
    """
    rng = ensure_rng(rng)
    options = options or IMMOptions()
    fixed_allocation = fixed_allocation or Allocation.empty()
    budgets = validate_budgets(budgets, model.catalog)
    _check_item_split(budgets, fixed_allocation)

    start = time.perf_counter()
    items = [item for item, budget in budgets.items() if budget > 0]
    fixed_seeds = fixed_allocation.all_seeds()
    total_budget = sum(budgets[item] for item in items)

    if index is not None:
        prima = _pool_from_index(graph, index, total_budget,
                                 selection_strategy)
    else:
        prima = prima_plus(graph, fixed_seeds, [budgets[i] for i in items],
                           total_budget, options=options, rng=rng,
                           workers=workers,
                           keep_collection=keep_rr_collection,
                           selection_strategy=selection_strategy)
    available: List[int] = list(prima.seeds)

    # sort items by expected truncated utility, highest first (line 4)
    utilities = {item: model.expected_truncated_utility(item, rng=rng)
                 for item in items}
    ordered_items = sorted(items, key=lambda it: utilities[it], reverse=True)

    allocation = Allocation.empty()
    added: List[str] = []
    skipped: List[str] = []
    marginals: Dict[str, float] = {}
    for item in ordered_items:
        budget = budgets[item]
        candidate_nodes = available[:budget]
        if not candidate_nodes:
            skipped.append(item)
            continue
        candidate = Allocation({item: candidate_nodes})
        if marginal_check:
            base = allocation.union(fixed_allocation)
            marginal = estimate_marginal_welfare(
                graph, model, base, candidate,
                n_samples=n_marginal_samples, rng=rng, engine=engine)
            marginals[item] = marginal
            if marginal <= 0.0:
                skipped.append(item)
                continue
        allocation = allocation.union(candidate)
        added.append(item)
        del available[:budget]

    # append the skipped items in arbitrary order to exhaust budgets
    # (Algorithm 1 lines 14-18) — required for the approximation guarantee.
    for item in skipped:
        budget = budgets[item]
        candidate_nodes = available[:budget]
        if not candidate_nodes:
            continue
        allocation = allocation.union(Allocation({item: candidate_nodes}))
        del available[:budget]

    runtime = time.perf_counter() - start
    algorithm = "SeqGRD" if marginal_check else "SeqGRD-NM"
    estimated = None
    if evaluate_welfare:
        estimated = estimate_welfare(graph, model,
                                     allocation.union(fixed_allocation),
                                     n_samples=n_evaluation_samples,
                                     rng=rng, engine=engine).mean
    details = {
        "item_order": ordered_items,
        "item_utilities": utilities,
        "added_in_first_pass": added,
        "appended_items": skipped,
        "marginal_estimates": marginals,
        "num_rr_sets": prima.num_rr_sets,
        "prima_prefix_spreads": prima.prefix_marginal_spreads,
        "pool_marginal_spread": (prima.prefix_marginal_spreads[-1]
                                 if prima.prefix_marginal_spreads else 0.0),
    }
    if index is not None:
        details["served_from_index"] = True
    if keep_rr_collection:
        details["rr_collection"] = prima.collection
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm=algorithm,
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details=details,
    )


def seqgrd_nm(graph: DirectedGraph, model: UtilityModel,
              budgets: Mapping[str, int],
              fixed_allocation: Optional[Allocation] = None,
              options: Optional[IMMOptions] = None,
              evaluate_welfare: bool = False,
              n_evaluation_samples: int = 500,
              rng: RngLike = None,
              engine: Optional[str] = None,
              workers: Optional[int] = None,
              index: Optional["FrozenRRIndex"] = None,
              keep_rr_collection: bool = False,
              selection_strategy: Optional[str] = None) -> AllocationResult:
    """SeqGRD-NM: SeqGRD without the Monte-Carlo marginal check."""
    return seqgrd(graph, model, budgets, fixed_allocation,
                  marginal_check=False, options=options,
                  evaluate_welfare=evaluate_welfare,
                  n_evaluation_samples=n_evaluation_samples, rng=rng,
                  engine=engine, workers=workers, index=index,
                  keep_rr_collection=keep_rr_collection,
                  selection_strategy=selection_strategy)


def _pool_from_index(graph: DirectedGraph, index, num_seeds: int,
                     selection_strategy: Optional[str] = None
                     ) -> PrimaResult:
    """Recover PRIMA+'s ordered seed pool from a frozen marginal index.

    The greedy order over the frozen collection is bit-identical to the
    order PRIMA+ computed when the index was built, so its prefixes keep
    serving every budget in the build's budget vector.
    """
    if index.num_nodes != graph.num_nodes:
        raise AlgorithmError(
            f"the index covers {index.num_nodes} nodes but the graph has "
            f"{graph.num_nodes}; rebuild the index")
    kind = index.meta.get("sampler")
    if kind not in (None, "marginal", "standard"):
        raise AlgorithmError(
            f"SeqGRD needs a marginal (or standard) RR-set index, "
            f"got {kind!r}")
    selection = node_selection(index, num_seeds,
                               strategy=selection_strategy)
    scale = graph.num_nodes / max(index.num_sets, 1)
    return PrimaResult(
        seeds=selection.seeds,
        prefix_marginal_spreads=[w * scale
                                 for w in selection.prefix_weights],
        num_rr_sets=index.num_sets,
    )


def _check_item_split(budgets: Mapping[str, int],
                      fixed_allocation: Allocation) -> None:
    """``I_1`` (fixed) and ``I_2`` (to allocate) must be disjoint."""
    overlap = set(budgets) & set(fixed_allocation.items)
    if overlap:
        raise AlgorithmError(
            f"items {sorted(overlap)} appear both in the budget vector and "
            f"in the fixed allocation; I1 and I2 must be disjoint")


from repro.api.registry import RunContext, register_algorithm  # noqa: E402


@register_algorithm("SeqGRD", order=0, supports_index=True,
                    supports_selection_strategy=True, supports_workers=True)
def _run_seqgrd(ctx: RunContext):
    return seqgrd(ctx.graph, ctx.model, ctx.budgets, ctx.fixed_allocation,
                  marginal_check=True,
                  n_marginal_samples=ctx.marginal_samples,
                  options=ctx.options, rng=ctx.rng, engine=ctx.engine,
                  workers=ctx.workers, index=ctx.index,
                  selection_strategy=ctx.selection_strategy)


@register_algorithm("SeqGRD-NM", order=1, supports_index=True,
                    supports_selection_strategy=True, supports_workers=True)
def _run_seqgrd_nm(ctx: RunContext):
    return seqgrd_nm(ctx.graph, ctx.model, ctx.budgets, ctx.fixed_allocation,
                     options=ctx.options, rng=ctx.rng, engine=ctx.engine,
                     workers=ctx.workers, index=ctx.index,
                     selection_strategy=ctx.selection_strategy)


__all__ = ["seqgrd", "seqgrd_nm"]
