"""Best-of combination of SeqGRD and MaxGRD.

When there is no prior allocation, running both SeqGRD and MaxGRD and
keeping the allocation with the larger estimated welfare achieves a
``max(u_min/u_max, 1/m)(1 - 1/e - ε)``-approximation (paper, end of §5.2).
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Tuple

from repro.allocation import Allocation
from repro.core.maxgrd import maxgrd
from repro.core.results import AllocationResult
from repro.core.seqgrd import seqgrd
from repro.diffusion.estimators import estimate_welfare
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


def best_of(graph: DirectedGraph, model: UtilityModel,
            budgets: Mapping[str, int],
            fixed_allocation: Optional[Allocation] = None,
            marginal_check: bool = True,
            n_marginal_samples: int = 200,
            n_evaluation_samples: int = 500,
            options: Optional[IMMOptions] = None,
            rng: RngLike = None) -> AllocationResult:
    """Run SeqGRD and MaxGRD and return the allocation with higher welfare.

    Both candidate allocations are evaluated with the same number of
    Monte-Carlo samples; the returned result's ``details`` holds both
    sub-results so callers can inspect the loser too.
    """
    rng = ensure_rng(rng)
    fixed_allocation = fixed_allocation or Allocation.empty()
    start = time.perf_counter()

    seq_result = seqgrd(graph, model, budgets, fixed_allocation,
                        marginal_check=marginal_check,
                        n_marginal_samples=n_marginal_samples,
                        options=options, rng=rng)
    max_result = maxgrd(graph, model, budgets, fixed_allocation,
                        n_marginal_samples=n_marginal_samples,
                        options=options, rng=rng)

    seq_welfare = estimate_welfare(
        graph, model, seq_result.combined_allocation(),
        n_samples=n_evaluation_samples, rng=rng).mean
    max_welfare = estimate_welfare(
        graph, model, max_result.combined_allocation(),
        n_samples=n_evaluation_samples, rng=rng).mean

    winner, winner_welfare = (seq_result, seq_welfare) \
        if seq_welfare >= max_welfare else (max_result, max_welfare)
    runtime = time.perf_counter() - start
    return AllocationResult(
        allocation=winner.allocation,
        fixed_allocation=fixed_allocation,
        algorithm=f"BestOf({winner.algorithm})",
        estimated_welfare=winner_welfare,
        runtime_seconds=runtime,
        details={
            "seqgrd_welfare": seq_welfare,
            "maxgrd_welfare": max_welfare,
            "seqgrd_result": seq_result,
            "maxgrd_result": max_result,
        },
    )


from repro.api.registry import RunContext, register_algorithm  # noqa: E402


@register_algorithm("BestOf", order=9, in_experiments=False)
def _run_best_of(ctx: RunContext):
    return best_of(ctx.graph, ctx.model, ctx.budgets, ctx.fixed_allocation,
                   n_marginal_samples=ctx.marginal_samples,
                   n_evaluation_samples=ctx.samples,
                   options=ctx.options, rng=ctx.rng)


__all__ = ["best_of"]
