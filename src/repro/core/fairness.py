"""Fairness-aware welfare maximization (the paper's future-work direction).

§7 of the paper notes that welfare maximization "does not directly ensure
fairness: for a campaigner who often pays for advertising, ensuring that her
item is seen at least by a certain number of users is critical" and leaves
fairness-aware welfare maximization as future work.  This module provides a
concrete, practical instantiation of that direction on top of the existing
machinery:

* :func:`exposure_report` measures, per item, the expected number of
  adopters and its share of all adoptions for a given allocation.
* :func:`fair_seqgrd` wraps SeqGRD(-NM) with a *minimum expected adoption*
  constraint per item: after the welfare-greedy allocation is computed, items
  whose expected adoption falls short of their floor steal seeds — one at a
  time, always the seed whose reassignment costs the least welfare — from
  over-served items until every floor is met (or no legal swap remains).

The repair loop never changes the total number of seeds per the budget
vector, so the result is always a feasible CWelMax allocation; it trades
welfare for fairness in a controlled, observable way (the result records
every swap and the welfare before/after).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.allocation import Allocation
from repro.core.results import AllocationResult
from repro.core.seqgrd import seqgrd
from repro.diffusion.estimators import estimate_welfare
from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class ExposureReport:
    """Per-item exposure of an allocation."""

    expected_adopters: Dict[str, float]
    adoption_share: Dict[str, float]
    total_adoptions: float
    welfare: float

    def worst_item(self) -> Tuple[str, float]:
        """The item with the lowest expected adoption and its value."""
        item = min(self.expected_adopters, key=self.expected_adopters.get)
        return item, self.expected_adopters[item]

    def satisfies(self, floors: Mapping[str, float]) -> bool:
        """Whether every item meets its minimum expected adoption."""
        return all(self.expected_adopters.get(item, 0.0) >= floor - 1e-9
                   for item, floor in floors.items())


def exposure_report(graph: DirectedGraph, model: UtilityModel,
                    allocation: Allocation, n_samples: int = 500,
                    rng: RngLike = None) -> ExposureReport:
    """Measure per-item expected adopters, shares and welfare."""
    estimate = estimate_welfare(graph, model, allocation,
                                n_samples=n_samples, rng=rng)
    total = sum(estimate.adoption_counts.values())
    shares = {item: (count / total if total > 0 else 0.0)
              for item, count in estimate.adoption_counts.items()}
    return ExposureReport(
        expected_adopters=dict(estimate.adoption_counts),
        adoption_share=shares,
        total_adoptions=total,
        welfare=estimate.mean,
    )


def fair_seqgrd(graph: DirectedGraph, model: UtilityModel,
                budgets: Mapping[str, int],
                min_adoptions: Mapping[str, float],
                fixed_allocation: Optional[Allocation] = None,
                marginal_check: bool = False,
                n_marginal_samples: int = 100,
                n_evaluation_samples: int = 300,
                max_swaps: Optional[int] = None,
                options: Optional[IMMOptions] = None,
                rng: RngLike = None) -> AllocationResult:
    """SeqGRD(-NM) with per-item minimum expected adoption floors.

    Parameters
    ----------
    min_adoptions:
        Item -> minimum expected number of adopters.  Items not listed have
        no floor.  Floors that exceed what the item could reach even with
        every seed are unreachable; the repair loop then stops when no swap
        improves the worst shortfall and the result's details flag the items
        that remain short.
    max_swaps:
        Upper bound on the number of seed reassignments (defaults to the
        total seed budget).

    Returns
    -------
    AllocationResult
        ``details`` documents the starting welfare, the swaps performed
        (seed, from-item, to-item, welfare after) and the final exposure.
    """
    rng = ensure_rng(rng)
    options = options or IMMOptions()
    fixed_allocation = fixed_allocation or Allocation.empty()
    unknown = [item for item in min_adoptions if item not in budgets]
    if unknown:
        raise AlgorithmError(
            f"minimum adoptions specified for items without budgets: "
            f"{sorted(unknown)}")
    for item, floor in min_adoptions.items():
        if floor < 0:
            raise AlgorithmError(f"minimum adoptions for {item!r} must be >= 0")

    start = time.perf_counter()
    base = seqgrd(graph, model, budgets, fixed_allocation,
                  marginal_check=marginal_check,
                  n_marginal_samples=n_marginal_samples,
                  options=options, rng=rng)
    allocation = base.allocation
    report = exposure_report(graph, model,
                             allocation.union(fixed_allocation),
                             n_samples=n_evaluation_samples, rng=rng)
    initial_welfare = report.welfare

    swaps: List[Dict[str, object]] = []
    budget_total = sum(max(0, b) for b in budgets.values())
    remaining_swaps = budget_total if max_swaps is None else int(max_swaps)

    while remaining_swaps > 0 and not report.satisfies(min_adoptions):
        shortfalls = {
            item: floor - report.expected_adopters.get(item, 0.0)
            for item, floor in min_adoptions.items()
            if report.expected_adopters.get(item, 0.0) < floor - 1e-9
        }
        needy_item = max(shortfalls, key=shortfalls.get)

        # candidate donors: items above their own floor (or without one)
        # that still have at least one seed to give
        donors = [item for item in allocation.items
                  if item != needy_item
                  and allocation.seed_count(item) > 0
                  and report.expected_adopters.get(item, 0.0)
                  > min_adoptions.get(item, 0.0) + 1e-9]
        if not donors:
            break

        best_candidate: Optional[Tuple[Allocation, ExposureReport]] = None
        best_welfare = float("-inf")
        for donor in donors:
            # move the donor's last (least valuable in greedy order) seed
            seed = allocation.seeds_for(donor)[-1]
            moved = {item: [v for v in nodes if not (item == donor and v == seed)]
                     for item, nodes in allocation.as_dict().items()}
            moved.setdefault(needy_item, [])
            moved[needy_item] = list(moved[needy_item]) + [seed]
            candidate = Allocation({k: v for k, v in moved.items() if v})
            candidate_report = exposure_report(
                graph, model, candidate.union(fixed_allocation),
                n_samples=n_evaluation_samples, rng=rng)
            gain = (candidate_report.expected_adopters.get(needy_item, 0.0)
                    - report.expected_adopters.get(needy_item, 0.0))
            if gain <= 1e-9:
                continue
            if candidate_report.welfare > best_welfare:
                best_welfare = candidate_report.welfare
                best_candidate = (candidate, candidate_report)
                best_donor, best_seed = donor, seed

        if best_candidate is None:
            break
        allocation, report = best_candidate
        swaps.append({
            "seed": int(best_seed),
            "from_item": best_donor,
            "to_item": needy_item,
            "welfare_after": round(report.welfare, 3),
        })
        remaining_swaps -= 1

    runtime = time.perf_counter() - start
    unmet = {item: floor for item, floor in min_adoptions.items()
             if report.expected_adopters.get(item, 0.0) < floor - 1e-9}
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm="FairSeqGRD" if marginal_check else "FairSeqGRD-NM",
        estimated_welfare=report.welfare,
        runtime_seconds=runtime,
        details={
            "initial_welfare": initial_welfare,
            "final_welfare": report.welfare,
            "welfare_cost_of_fairness": round(initial_welfare - report.welfare, 3),
            "swaps": swaps,
            "exposure": report.expected_adopters,
            "adoption_share": report.adoption_share,
            "unmet_floors": unmet,
            "base_result": base,
        },
    )


__all__ = ["ExposureReport", "exposure_report", "fair_seqgrd"]
