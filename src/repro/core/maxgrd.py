"""MaxGRD (paper Algorithm 2).

MaxGRD selects a pool of ``max_i b_i`` seeds with PRIMA+ and then allocates
*one single item*: the item whose allocation of the top ``b_i`` pool nodes
yields the largest (estimated) marginal social welfare.  When there is no
prior allocation (``S_P = ∅``) it guarantees a ``(1/m)(1 - 1/e - ε)``
approximation (Theorem 4); combined with SeqGRD via
:func:`repro.core.combined.best_of` the bound becomes
``max(u_min/u_max, 1/m)(1 - 1/e - ε)``.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional

from repro.allocation import Allocation, validate_budgets
from repro.core.prima import prima_plus
from repro.core.results import AllocationResult
from repro.diffusion.estimators import estimate_marginal_welfare, estimate_welfare
from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


def maxgrd(graph: DirectedGraph, model: UtilityModel,
           budgets: Mapping[str, int],
           fixed_allocation: Optional[Allocation] = None,
           n_marginal_samples: int = 200,
           use_simulation: bool = True,
           options: Optional[IMMOptions] = None,
           evaluate_welfare: bool = False,
           n_evaluation_samples: int = 500,
           rng: RngLike = None,
           engine: Optional[str] = None,
           selection_strategy: Optional[str] = None) -> AllocationResult:
    """Run MaxGRD and return the chosen single-item allocation.

    Parameters
    ----------
    use_simulation:
        When ``True`` (default) the welfare of each candidate single-item
        allocation is estimated by Monte-Carlo simulation (faithful to
        Algorithm 2 line 3).  When ``False`` — useful when ``S_P = ∅`` — the
        candidates are scored analytically as
        ``E[U⁺(i)] · σ̂(S_i)`` using PRIMA+'s prefix spread estimates, which
        is exact for that case and much faster.
    """
    rng = ensure_rng(rng)
    options = options or IMMOptions()
    fixed_allocation = fixed_allocation or Allocation.empty()
    budgets = validate_budgets(budgets, model.catalog)
    overlap = set(budgets) & set(fixed_allocation.items)
    if overlap:
        raise AlgorithmError(
            f"items {sorted(overlap)} appear both in the budget vector and "
            f"in the fixed allocation; I1 and I2 must be disjoint")

    start = time.perf_counter()
    items = [item for item, budget in budgets.items() if budget > 0]
    if not items:
        raise AlgorithmError("at least one item must have a positive budget")
    fixed_seeds = fixed_allocation.all_seeds()
    max_budget = max(budgets[item] for item in items)

    prima = prima_plus(graph, fixed_seeds, [budgets[i] for i in items],
                       max_budget, options=options, rng=rng,
                       selection_strategy=selection_strategy)

    scores: Dict[str, float] = {}
    candidates: Dict[str, Allocation] = {}
    for item in items:
        nodes = prima.prefix(budgets[item])
        candidate = Allocation({item: nodes}) if nodes else Allocation.empty()
        candidates[item] = candidate
        if candidate.is_empty():
            scores[item] = 0.0
        elif use_simulation:
            scores[item] = estimate_marginal_welfare(
                graph, model, fixed_allocation, candidate,
                n_samples=n_marginal_samples, rng=rng, engine=engine)
        else:
            utility = model.expected_truncated_utility(item, rng=rng)
            scores[item] = utility * prima.prefix_spread(budgets[item])

    best_item = max(scores, key=scores.get)
    allocation = candidates[best_item]
    runtime = time.perf_counter() - start

    estimated = None
    if evaluate_welfare:
        estimated = estimate_welfare(graph, model,
                                     allocation.union(fixed_allocation),
                                     n_samples=n_evaluation_samples,
                                     rng=rng, engine=engine).mean
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm="MaxGRD",
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details={
            "chosen_item": best_item,
            "candidate_scores": scores,
            "num_rr_sets": prima.num_rr_sets,
        },
    )


from repro.api.registry import RunContext, register_algorithm  # noqa: E402


@register_algorithm("MaxGRD", order=2, supports_selection_strategy=True)
def _run_maxgrd(ctx: RunContext):
    return maxgrd(ctx.graph, ctx.model, ctx.budgets, ctx.fixed_allocation,
                  n_marginal_samples=ctx.marginal_samples,
                  options=ctx.options, rng=ctx.rng, engine=ctx.engine,
                  selection_strategy=ctx.selection_strategy)


__all__ = ["maxgrd"]
