"""Result objects returned by the CWelMax algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.allocation import Allocation
from repro.utils.rng import RngLike


@dataclass
class AllocationResult:
    """Outcome of one seed-selection algorithm run.

    Attributes
    ----------
    allocation:
        The newly selected allocation (items of ``I2`` only).
    fixed_allocation:
        The pre-existing allocation ``S_P`` the algorithm was run on top of.
    algorithm:
        Name of the algorithm that produced the allocation.
    estimated_welfare:
        Monte-Carlo estimate of ``ρ(S ∪ S_P)`` if the caller asked for an
        evaluation (``None`` otherwise).
    runtime_seconds:
        Wall-clock time of the seed selection (excludes any final welfare
        evaluation requested by the caller).
    details:
        Algorithm-specific diagnostics (number of RR sets, per-item order,
        skipped items, …).
    """

    allocation: Allocation
    fixed_allocation: Allocation
    algorithm: str
    estimated_welfare: Optional[float] = None
    runtime_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    def combined_allocation(self) -> Allocation:
        """The full allocation ``S ∪ S_P`` that will actually propagate."""
        return self.allocation.union(self.fixed_allocation)

    def seeds_for(self, item: str):
        """Seeds selected for ``item`` by this run (excludes ``S_P``)."""
        return self.allocation.seeds_for(item)


def degenerate_result(graph, model, fixed_allocation: Allocation,
                      algorithm: str,
                      evaluate_welfare: bool = False,
                      n_evaluation_samples: int = 500,
                      rng: RngLike = None,
                      engine: Optional[str] = None,
                      details: Optional[Dict[str, object]] = None
                      ) -> AllocationResult:
    """Empty :class:`AllocationResult` for degenerate inputs.

    The shared contract for all-zero budget vectors and empty graphs:
    nothing is selected, ``details["zero_budget"]`` is set, and (when the
    caller asked for an evaluation) ``estimated_welfare`` is the welfare of
    the *fixed* allocation alone — the welfare that actually propagates when
    the algorithm has nothing to add.
    """
    estimated = None
    if evaluate_welfare:
        from repro.diffusion.estimators import estimate_welfare

        estimated = estimate_welfare(graph, model, fixed_allocation,
                                     n_samples=n_evaluation_samples,
                                     rng=rng, engine=engine).mean
    merged: Dict[str, object] = {"zero_budget": True}
    if details:
        merged.update(details)
    return AllocationResult(
        allocation=Allocation.empty(),
        fixed_allocation=fixed_allocation,
        algorithm=algorithm,
        estimated_welfare=estimated,
        runtime_seconds=0.0,
        details=merged,
    )


__all__ = ["AllocationResult", "degenerate_result"]
