"""Result objects returned by the CWelMax algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.allocation import Allocation


@dataclass
class AllocationResult:
    """Outcome of one seed-selection algorithm run.

    Attributes
    ----------
    allocation:
        The newly selected allocation (items of ``I2`` only).
    fixed_allocation:
        The pre-existing allocation ``S_P`` the algorithm was run on top of.
    algorithm:
        Name of the algorithm that produced the allocation.
    estimated_welfare:
        Monte-Carlo estimate of ``ρ(S ∪ S_P)`` if the caller asked for an
        evaluation (``None`` otherwise).
    runtime_seconds:
        Wall-clock time of the seed selection (excludes any final welfare
        evaluation requested by the caller).
    details:
        Algorithm-specific diagnostics (number of RR sets, per-item order,
        skipped items, …).
    """

    allocation: Allocation
    fixed_allocation: Allocation
    algorithm: str
    estimated_welfare: Optional[float] = None
    runtime_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    def combined_allocation(self) -> Allocation:
        """The full allocation ``S ∪ S_P`` that will actually propagate."""
        return self.allocation.union(self.fixed_allocation)

    def seeds_for(self, item: str):
        """Seeds selected for ``item`` by this run (excludes ``S_P``)."""
        return self.allocation.seeds_for(item)


__all__ = ["AllocationResult"]
