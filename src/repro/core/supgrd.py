"""SupGRD (paper §5.3) — constant-factor welfare maximization for the
superior-item special case.

SupGRD applies when (i) the item universe has a *superior item* ``i_m``
whose utility beats every other item under any noise realisation, (ii) the
seeds of all inferior items are already fixed (``I_2 = {i_m}``), and (iii)
items are in pure competition.  Under these conditions the welfare is
monotone and submodular in the superior item's seed set (Lemmas 4 and 5),
so an IMM-style algorithm over *weighted RR sets* (Definition 2) achieves a
``(1 - 1/e - ε)``-approximation (Theorem 5).

A weighted RR set's weight is the welfare gained if its root switches from
the best fixed item reaching it to ``i_m``; covering the sampled sets with
``b_{i_m}`` seeds therefore estimates the marginal welfare directly
(Lemma 6), and the sampling bounds of IMM apply with the search upper bound
``UB = n · U⁺(i_m)``.
"""

from __future__ import annotations

import contextlib
import time
from typing import Optional

import numpy as np

from repro.allocation import Allocation
from repro.core.results import AllocationResult, degenerate_result
from repro.diffusion.estimators import estimate_welfare
from repro.engine.config import ENGINE_VECTORIZED, resolve_engine
from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.coverage import node_selection
from repro.rrsets.imm import IMMOptions, run_imm_engine
from repro.rrsets.rrset import WeightedRRSampler
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, derive_seed, ensure_rng


def supgrd(graph: DirectedGraph, model: UtilityModel,
           budget: int,
           fixed_allocation: Allocation,
           superior_item: Optional[str] = None,
           enforce_preconditions: bool = True,
           options: Optional[IMMOptions] = None,
           evaluate_welfare: bool = False,
           n_evaluation_samples: int = 500,
           rng: RngLike = None,
           engine: Optional[str] = None,
           workers: Optional[int] = None,
           index: Optional["FrozenRRIndex"] = None,
           keep_rr_collection: bool = False,
           selection_strategy: Optional[str] = None) -> AllocationResult:
    """Select ``budget`` seeds for the superior item on top of ``S_P``.

    Parameters
    ----------
    graph, model:
        The CWelMax instance.
    budget:
        Budget ``b_{i_m}`` of the superior item.
    fixed_allocation:
        Fixed allocation of the inferior items (``S_P``).
    superior_item:
        Name of the superior item; inferred from the model's noise bounds
        when omitted.
    enforce_preconditions:
        When ``True`` (default) the preconditions of Theorem 5 are checked
        and violations raise :class:`AlgorithmError`; ``False`` lets callers
        run SupGRD as a heuristic outside its guaranteed regime.
    workers:
        When given, weighted RR sets come from the deterministic sharded
        builder with this many worker processes (identical results for any
        worker count at a fixed seed); ``None`` keeps the serial stream.
    index:
        A prebuilt weighted :class:`~repro.index.frozen.FrozenRRIndex`.
        Sampling is skipped entirely — seeds come from one greedy coverage
        selection over the index, reproducing the allocation of the build
        run in milliseconds.
    keep_rr_collection:
        Record the final RR collection in
        ``result.details["rr_collection"]`` so it can be frozen into a
        persistent index.
    selection_strategy:
        Greedy-selection strategy
        (:data:`repro.rrsets.coverage.SELECTION_STRATEGIES`); bit-identical
        allocations for every strategy.
    """
    rng = ensure_rng(rng)
    options = options or IMMOptions()
    if budget < 0:
        raise AlgorithmError("budget must be >= 0")

    if superior_item is None:
        superior_item = model.superior_item()
        if superior_item is None:
            raise AlgorithmError(
                "the utility model has no certifiable superior item; pass "
                "superior_item explicitly or use SeqGRD/MaxGRD")
    else:
        model.catalog.index(superior_item)

    if enforce_preconditions:
        _check_preconditions(model, superior_item, fixed_allocation)

    if graph.num_nodes == 0 or budget == 0:
        # degenerate inputs: nothing to seed — mirror the budget == 0
        # behaviour instead of letting the samplers crash on an empty graph
        return degenerate_result(
            graph, model, fixed_allocation, "SupGRD",
            evaluate_welfare, n_evaluation_samples, rng, engine,
            details={"superior_item": superior_item, "num_rr_sets": 0,
                     "zero_budget": budget == 0,
                     "empty_graph": graph.num_nodes == 0})

    if index is not None:
        return _serve_from_index(graph, model, budget, fixed_allocation,
                                 superior_item, index, evaluate_welfare,
                                 n_evaluation_samples, rng, engine,
                                 selection_strategy)

    start = time.perf_counter()
    sampler_state = WeightedRRSampler(graph, model, superior_item,
                                      fixed_allocation, rng=rng)
    superior_utility = sampler_state.superior_utility
    if superior_utility <= 0.0:
        # the superior item can never be adopted with positive utility
        allocation = Allocation.empty()
        runtime = time.perf_counter() - start
        return AllocationResult(allocation, fixed_allocation, "SupGRD",
                                runtime_seconds=runtime,
                                details={"superior_item": superior_item,
                                         "num_rr_sets": 0})

    def sampler(generator: np.random.Generator):
        rr = sampler_state.sample(generator)
        return rr.nodes, rr.weight

    batch_sampler = None
    if resolve_engine(engine) == ENGINE_VECTORIZED:
        def batch_sampler(generator: np.random.Generator, count: int):
            return sampler_state.sample_pairs(generator, count)

    sampler_context = contextlib.nullcontext(None)
    if workers is not None:
        from repro.index.builder import ParallelRRSampler, ShardSpec

        sampler_context = ParallelRRSampler(
            ShardSpec(kind="weighted", graph=graph,
                      engine=resolve_engine(engine),
                      node_block_utility=sampler_state.node_block_utility,
                      superior_utility=superior_utility),
            seed=derive_seed(rng), workers=workers)

    # context manager: the (registry-warm) pool reference is released even
    # when the IMM engine raises
    with sampler_context as parallel_sampler:
        imm_result = run_imm_engine(
            graph.num_nodes, budget, sampler,
            max_value=float(graph.num_nodes) * superior_utility,
            options=options, rng=rng, batch_sampler=batch_sampler,
            parallel_sampler=parallel_sampler,
            keep_collection=keep_rr_collection,
            selection_strategy=selection_strategy)
    allocation = Allocation({superior_item: imm_result.seeds}) \
        if imm_result.seeds else Allocation.empty()
    runtime = time.perf_counter() - start

    estimated = None
    if evaluate_welfare:
        estimated = estimate_welfare(graph, model,
                                     allocation.union(fixed_allocation),
                                     n_samples=n_evaluation_samples,
                                     rng=rng, engine=engine).mean
    details = {
        "superior_item": superior_item,
        "superior_truncated_utility": superior_utility,
        "estimated_marginal_welfare": imm_result.estimated_value,
        "num_rr_sets": imm_result.num_rr_sets,
        "lower_bound": imm_result.lower_bound,
        "cap_hit": imm_result.cap_hit,
    }
    if keep_rr_collection:
        details["rr_collection"] = imm_result.collection
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm="SupGRD",
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details=details,
    )


def _serve_from_index(graph: DirectedGraph, model: UtilityModel, budget: int,
                      fixed_allocation: Allocation, superior_item: str,
                      index, evaluate_welfare: bool,
                      n_evaluation_samples: int, rng, engine: Optional[str],
                      selection_strategy: Optional[str] = None
                      ) -> AllocationResult:
    """Answer a SupGRD query from a prebuilt weighted RR-set index.

    One greedy coverage selection over the frozen collection — the same
    ``node_selection`` the build ran — so the served seeds are bit-identical
    to the build-time allocation (for the built budget) or its greedy
    prefix (for smaller budgets).
    """
    if index.num_nodes != graph.num_nodes:
        raise AlgorithmError(
            f"the index covers {index.num_nodes} nodes but the graph has "
            f"{graph.num_nodes}; rebuild the index")
    kind = index.meta.get("sampler")
    if kind not in (None, "weighted"):
        raise AlgorithmError(
            f"SupGRD needs a weighted RR-set index, got {kind!r}")
    start = time.perf_counter()
    selection = node_selection(index, budget, strategy=selection_strategy)
    allocation = Allocation({superior_item: selection.seeds}) \
        if selection.seeds else Allocation.empty()
    scale = graph.num_nodes / max(index.num_sets, 1)
    runtime = time.perf_counter() - start
    estimated = None
    if evaluate_welfare:
        estimated = estimate_welfare(graph, model,
                                     allocation.union(fixed_allocation),
                                     n_samples=n_evaluation_samples,
                                     rng=rng, engine=engine).mean
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm="SupGRD",
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details={
            "superior_item": superior_item,
            "superior_truncated_utility": index.meta.get("superior_utility"),
            "estimated_marginal_welfare": selection.covered_weight * scale,
            "num_rr_sets": index.num_sets,
            "served_from_index": True,
        },
    )


def _check_preconditions(model: UtilityModel, superior_item: str,
                         fixed_allocation: Allocation) -> None:
    """Validate the three conditions required by Theorem 5."""
    certified = model.superior_item()
    if certified is None:
        raise AlgorithmError(
            "SupGRD requires bounded noise and a superior item; the model "
            "cannot certify one (set enforce_preconditions=False to run "
            "SupGRD as a heuristic)")
    if certified != superior_item:
        raise AlgorithmError(
            f"item {superior_item!r} is not the superior item; the model "
            f"certifies {certified!r}")
    inferior = [name for name in model.items if name != superior_item]
    missing = [item for item in inferior
               if not fixed_allocation.seeds_for(item)]
    if missing and inferior:
        # all inferior items must have fixed seeds (I2 = {i_m}); items with
        # zero budget everywhere are tolerated only if explicitly absent
        raise AlgorithmError(
            f"SupGRD requires the seeds of every inferior item to be fixed; "
            f"missing allocations for {missing}")
    if superior_item in fixed_allocation.items:
        raise AlgorithmError(
            "the superior item must not already be allocated in S_P")
    if not model.is_pure_competition():
        raise AlgorithmError(
            "SupGRD requires pure competition between all items "
            "(every multi-item bundle must have negative utility)")


from repro.api.registry import RunContext, register_algorithm  # noqa: E402


@register_algorithm("SupGRD", order=3, supports_index=True,
                    supports_selection_strategy=True, supports_workers=True,
                    single_item=True)
def _run_supgrd(ctx: RunContext):
    if len(ctx.budgets) != 1:
        raise AlgorithmError("SupGRD allocates exactly one item")
    ((item, budget),) = ctx.budgets.items()
    return supgrd(ctx.graph, ctx.model, budget, ctx.fixed_allocation,
                  superior_item=ctx.superior_item or item,
                  enforce_preconditions=False,
                  options=ctx.options, rng=ctx.rng, engine=ctx.engine,
                  workers=ctx.workers, index=ctx.index,
                  selection_strategy=ctx.selection_strategy)


__all__ = ["supgrd"]
