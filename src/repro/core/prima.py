"""PRIMA+ — prefix-preserving seed selection on marginal RR sets.

PRIMA+ (paper §5.2.1, Algorithm 4) is the seed selector inside SeqGRD and
MaxGRD.  Given a fixed seed set ``S_P`` and a budget vector ``b⃗``, it returns
an *ordered* set of ``b`` seed nodes such that, with probability at least
``1 - 1/n^ℓ``:

* the whole set is a ``(1 - 1/e - ε)``-approximation of the optimal marginal
  spread ``OPT_{b | S_P}``, and
* every prefix of length ``b_i`` (for each budget ``b_i`` in ``b⃗``) is a
  ``(1 - 1/e - ε)``-approximation of ``OPT_{b_i | S_P}``
  (Definition 1, "prefix preservation on marginals").

Marginality is obtained by sampling *marginal RR sets* (Algorithm 3): RR
sets that touch ``S_P`` are discarded, so covering the surviving sets
estimates the additional spread on top of ``S_P``.  Prefix preservation
follows from returning the greedy order computed on a single RR collection
that is large enough for *every* budget in the vector: the sampling phase
below runs the IMM lower-bound search once per distinct budget and keeps the
most demanding sample size.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.bounds import adjusted_ell, lambda_prime, lambda_star
from repro.rrsets.coverage import RRCollection, node_selection
from repro.rrsets.imm import IMMOptions
from repro.rrsets.rrset import marginal_rr_set
from repro.utils.rng import RngLike, derive_seed, ensure_rng


@dataclass
class PrimaResult:
    """Ordered seeds returned by PRIMA+ together with diagnostics."""

    seeds: List[int]
    prefix_marginal_spreads: List[float]
    num_rr_sets: int
    lower_bounds: Dict[int, float] = field(default_factory=dict)
    collection: Optional[RRCollection] = field(default=None, repr=False,
                                               compare=False)

    def prefix(self, k: int) -> List[int]:
        """First ``k`` seeds of the ordered seed set."""
        return self.seeds[:k]

    def prefix_spread(self, k: int) -> float:
        """Estimated marginal spread of the first ``k`` seeds."""
        if k <= 0 or not self.prefix_marginal_spreads:
            return 0.0
        index = min(k, len(self.prefix_marginal_spreads)) - 1
        return self.prefix_marginal_spreads[index]


def prima_plus(graph: DirectedGraph, fixed_seeds: Iterable[int],
               budgets: Sequence[int], num_seeds: int,
               options: Optional[IMMOptions] = None,
               rng: RngLike = None,
               workers: Optional[int] = None,
               keep_collection: bool = False,
               selection_strategy: Optional[str] = None) -> PrimaResult:
    """Select ``num_seeds`` ordered seeds maximizing marginal spread.

    Parameters
    ----------
    graph:
        The social network.
    fixed_seeds:
        The seed nodes of the existing allocation ``S_P`` (may be empty).
    budgets:
        The budget vector ``b⃗`` whose prefixes must be preserved (SeqGRD
        passes the per-item budgets, MaxGRD the same).
    num_seeds:
        Total number of seeds ``b`` to return (``Σ b_i`` for SeqGRD,
        ``max b_i`` for MaxGRD).
    options:
        IMM accuracy options (ε, ℓ, sampling caps).
    workers:
        When given, marginal RR sets come from the deterministic sharded
        builder with this many worker processes (identical results for any
        worker count at a fixed seed); ``None`` keeps the serial stream.
    keep_collection:
        Return the final RR collection on ``PrimaResult.collection`` so it
        can be frozen into a persistent index.
    selection_strategy:
        Greedy-selection strategy
        (:data:`repro.rrsets.coverage.SELECTION_STRATEGIES`); every
        strategy returns bit-identical ordered seeds, preserving the
        prefix guarantees.
    """
    options = options or IMMOptions()
    rng = ensure_rng(rng)
    n = graph.num_nodes
    if n == 0:
        raise AlgorithmError("the graph must contain at least one node")
    blocked: Set[int] = set(int(v) for v in fixed_seeds)
    num_seeds = max(0, min(int(num_seeds), n - len(blocked)))
    if num_seeds == 0:
        return PrimaResult(seeds=[], prefix_marginal_spreads=[],
                           num_rr_sets=0)
    budget_list = sorted({int(b) for b in budgets if int(b) > 0} | {num_seeds})

    epsilon = options.epsilon
    epsilon_prime = math.sqrt(2.0) * epsilon
    ell_adj = adjusted_ell(n, options.ell, num_budgets=len(budget_list))

    sampler_context = contextlib.nullcontext(None)
    if workers is not None:
        from repro.index.builder import ParallelRRSampler, ShardSpec

        sampler_context = ParallelRRSampler(
            ShardSpec(kind="marginal", graph=graph,
                      blocked=frozenset(blocked)),
            seed=derive_seed(rng), workers=workers)

    # the context manager releases the (registry-warm) worker pool even
    # when the sampling phase raises
    with sampler_context as parallel_sampler:
        def sample_into(collection: RRCollection, target: float) -> None:
            target = int(min(math.ceil(target), options.max_rr_sets))
            if parallel_sampler is not None:
                missing = target - collection.num_sets
                if missing > 0:
                    collection.extend(parallel_sampler(missing))
                return
            while collection.num_sets < target:
                collection.add(marginal_rr_set(graph, blocked, rng), 1.0)

        # --------------------------------------------------------------
        # sampling phase: one lower-bound search per distinct budget,
        # sharing the same growing RR collection (Algorithm 4's outer
        # while loop).
        # --------------------------------------------------------------
        collection = RRCollection(n)
        lower_bounds: Dict[int, float] = {}
        required_theta = float(options.min_rr_sets)
        for k in budget_list:
            lam_prime = lambda_prime(n, k, epsilon_prime, ell_adj)
            lam_star = lambda_star(n, k, epsilon, ell_adj)
            lower_bound = 1.0
            max_rounds = max(1, int(math.ceil(math.log2(max(n, 2)))) - 1)
            for i in range(1, max_rounds + 1):
                x = n / (2.0 ** i)
                sample_into(collection, lam_prime / x)
                selection = node_selection(collection, k,
                                           strategy=selection_strategy)
                estimate = n * selection.covered_weight / max(collection.num_sets, 1)
                if estimate >= (1.0 + epsilon_prime) * x:
                    lower_bound = estimate / (1.0 + epsilon_prime)
                    break
                if collection.num_sets >= options.max_rr_sets:
                    lower_bound = max(lower_bound, estimate)
                    break
            lower_bounds[k] = lower_bound
            required_theta = max(required_theta,
                                 lam_star / max(lower_bound, 1e-12))

        # --------------------------------------------------------------
        # final phase: fresh RR sets (Chen's fix) and one greedy selection
        # whose prefixes serve every budget in the vector.
        # --------------------------------------------------------------
        final_collection = RRCollection(n) if options.fresh_final_sampling \
            else collection
        sample_into(final_collection, required_theta)
    selection = node_selection(final_collection, num_seeds,
                               strategy=selection_strategy)
    scale = n / max(final_collection.num_sets, 1)
    return PrimaResult(
        seeds=selection.seeds,
        prefix_marginal_spreads=[w * scale for w in selection.prefix_weights],
        num_rr_sets=final_collection.num_sets,
        lower_bounds=lower_bounds,
        collection=final_collection if keep_collection else None,
    )


__all__ = ["PrimaResult", "prima_plus"]
