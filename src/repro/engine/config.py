"""Engine selection and batch sizing for the vectorized possible-world engine.

Every Monte-Carlo entry point (the welfare/spread estimators, the RR-set
samplers and the greedy evaluators built on them) accepts an ``engine``
argument with two spellings:

* ``"python"`` — the original scalar implementations (one possible world at
  a time, per-node Python loops).  They are kept as the reference oracle:
  slower, but the semantics the tests and the paper define.
* ``"vectorized"`` — the batched engine in :mod:`repro.engine`, which
  advances many possible worlds per call with numpy mask/``indptr``
  operations over the CSR adjacency.

``engine=None`` (the default everywhere) resolves to the ``REPRO_ENGINE``
environment variable when set, and to ``"vectorized"`` otherwise.  Batch
sizes are bounded by a state-cell budget so the ``(B, n)`` world state never
balloons on large graphs; ``REPRO_ENGINE_BATCH`` caps the batch explicitly.
"""

from __future__ import annotations

import os
from typing import Optional

ENGINE_PYTHON = "python"
ENGINE_VECTORIZED = "vectorized"
_ENGINES = (ENGINE_PYTHON, ENGINE_VECTORIZED)

#: environment variable overriding the default engine
ENGINE_ENV_VAR = "REPRO_ENGINE"
#: environment variable overriding the default greedy selection strategy
#: (consumed by :mod:`repro.rrsets.coverage`; housed here so every
#: environment-variable default of the library resolves through one module)
SELECTION_ENV_VAR = "REPRO_SELECTION"
#: environment variable capping the per-call batch size
BATCH_ENV_VAR = "REPRO_ENGINE_BATCH"

#: default cap on worlds simulated per batch
DEFAULT_MAX_BATCH = 512
#: budget on ``batch x num_nodes`` state cells per batch (~4M int64 ≈ 32 MB)
STATE_CELL_BUDGET = 1 << 22


def env_choice(var: str, valid, default: str, what: str = "value") -> str:
    """Resolve an environment-variable default against a set of choices.

    Shared by every env-var knob of the library (``REPRO_ENGINE`` here,
    ``REPRO_SELECTION`` in :mod:`repro.rrsets.coverage`) so unset/invalid
    values behave identically everywhere; the API layer resolves both
    exactly once in :meth:`repro.api.EngineConfig.resolve`.
    """
    value = os.environ.get(var, "").strip().lower()
    if not value:
        return default
    if value not in valid:
        raise ValueError(
            f"{var}={value!r} is not a valid {what}; "
            f"expected one of {list(valid)}")
    return value


def default_engine() -> str:
    """The engine used when callers pass ``engine=None``."""
    return env_choice(ENGINE_ENV_VAR, _ENGINES, ENGINE_VECTORIZED,
                      what="engine")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize an ``engine=`` argument to ``"python"`` or ``"vectorized"``."""
    if engine is None:
        return default_engine()
    value = str(engine).strip().lower()
    if value not in _ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {list(_ENGINES)}")
    return value


def batch_size(num_nodes: int, requested: Optional[int] = None) -> int:
    """Number of worlds to simulate per batch for a graph of ``num_nodes``.

    Bounded by the state-cell budget (so ``B x n`` arrays stay small), the
    ``REPRO_ENGINE_BATCH`` cap, and ``requested`` (e.g. samples remaining).
    """
    cap = DEFAULT_MAX_BATCH
    override = os.environ.get(BATCH_ENV_VAR, "").strip()
    if override:
        try:
            cap = int(override)
        except ValueError:
            raise ValueError(
                f"{BATCH_ENV_VAR}={override!r} is not an integer") from None
    by_memory = STATE_CELL_BUDGET // max(1, int(num_nodes))
    size = min(max(1, cap), max(1, by_memory))
    if requested is not None:
        size = min(size, max(1, int(requested)))
    return max(1, size)


__all__ = [
    "ENGINE_PYTHON",
    "ENGINE_VECTORIZED",
    "ENGINE_ENV_VAR",
    "SELECTION_ENV_VAR",
    "BATCH_ENV_VAR",
    "env_choice",
    "default_engine",
    "resolve_engine",
    "batch_size",
]
