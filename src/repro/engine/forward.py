"""Frontier-vectorized forward simulation of UIC and IC diffusions.

The scalar simulators in :mod:`repro.diffusion` walk one possible world at a
time with per-node Python loops.  This module advances **B worlds per call**:
the diffusion state is a ``(B, n)`` array per quantity (desire bitmasks,
adoption bitmasks, frontier items), and every synchronous round is a handful
of numpy gather/scatter operations over the CSR adjacency — one
``np.nonzero`` to find the active (world, node) pairs, one ragged gather of
their out-edges, one coin lookup, one ``bitwise_or`` scatter of the inform
events, and one vectorized best-bundle update for the informed nodes.

On a fixed possible world (edge coins and noise both specified) the batched
simulator is exactly the scalar one: same rounds, same desire/adoption
fixpoint, bit-identical adoption masks.  When utilities contain near-ties
closer than the scalar tie-break tolerance (1e-12) the two engines may pick
different but equal-utility bundles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from repro.allocation import Allocation
from repro.diffusion.uic import DiffusionResult
from repro.diffusion.worlds import EdgeWorld, LazyEdgeWorld
from repro.engine.coins import (
    CoinProvider,
    FixedCoinBatch,
    LazyCoinCache,
    bernoulli_mask,
    fixed_coin_batch,
    gather_csr_edges,
    unique_pairs,
)
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng

EdgeWorldsLike = Union[CoinProvider,
                       Sequence[Union[EdgeWorld, LazyEdgeWorld]]]

#: tolerance of the best-bundle tie-break (mirrors the scalar simulator)
_TIE_TOL = 1e-12


@dataclass
class BatchDiffusionResult:
    """Outcome of ``B`` deterministic UIC diffusions, stored columnar.

    The fields mirror :class:`~repro.diffusion.uic.DiffusionResult` with a
    leading world axis; :meth:`world` materializes the scalar result of one
    world for drop-in use (and for equivalence testing).
    """

    adoption_masks: np.ndarray          # (B, n) int64
    welfare: np.ndarray                 # (B,) float64
    adoption_counts: Dict[str, np.ndarray]  # item name -> (B,) int64
    num_adopters: np.ndarray            # (B,) int64
    rounds: np.ndarray                  # (B,) int64

    @property
    def num_worlds(self) -> int:
        """Number of simulated worlds ``B``."""
        return len(self.welfare)

    def world(self, index: int) -> DiffusionResult:
        """The scalar :class:`DiffusionResult` of world ``index``."""
        return DiffusionResult(
            adoption_masks=self.adoption_masks[index].copy(),
            welfare=float(self.welfare[index]),
            adoption_counts={name: int(counts[index])
                             for name, counts in self.adoption_counts.items()},
            num_adopters=int(self.num_adopters[index]),
            rounds=int(self.rounds[index]),
        )

    def mean_welfare(self) -> float:
        """Average welfare across the batch."""
        return float(self.welfare.mean()) if len(self.welfare) else 0.0


def _candidate_order(num_bundles: int) -> np.ndarray:
    """Bundle masks sorted by (popcount, mask) — the tie-break preference."""
    masks = np.arange(num_bundles, dtype=np.int64)
    popcounts = np.array([bin(int(m)).count("1") for m in masks])
    return masks[np.lexsort((masks, popcounts))]


def _best_bundles(desire: np.ndarray, adopted: np.ndarray,
                  utilities: np.ndarray, world_ids: np.ndarray,
                  candidate_order: np.ndarray) -> np.ndarray:
    """Vectorized best-bundle update for a batch of (world, node) pairs.

    For each pair picks the utility-maximizing bundle ``T`` with
    ``adopted ⊆ T ⊆ desire`` and ``U(T) ≥ 0``, preferring fewer items and
    then smaller masks on ties — candidates are scanned in that preference
    order, so a later candidate only wins by exceeding the incumbent by more
    than the tie tolerance.
    """
    best_mask = adopted.copy()
    best_utility = np.full(len(desire), -np.inf)
    for candidate in candidate_order:
        candidate = int(candidate)
        valid = ((candidate & ~desire) == 0) \
            & ((candidate & adopted) == adopted)
        if not valid.any():
            continue
        utility = utilities[world_ids, candidate]
        take = valid & (utility >= 0.0) & (utility > best_utility + _TIE_TOL)
        if take.any():
            best_utility[take] = utility[take]
            best_mask[take] = candidate
    return best_mask


def _resolve_coins(graph: DirectedGraph, edge_worlds: Optional[EdgeWorldsLike],
                   n_worlds: int, rng: np.random.Generator) -> CoinProvider:
    if edge_worlds is None:
        return LazyCoinCache(graph, n_worlds, rng)
    if isinstance(edge_worlds, (LazyCoinCache, FixedCoinBatch)):
        if edge_worlds.num_worlds != n_worlds:
            raise ValueError(
                f"coin provider covers {edge_worlds.num_worlds} worlds, "
                f"expected {n_worlds}")
        return edge_worlds
    worlds = list(edge_worlds)
    if len(worlds) != n_worlds:
        raise ValueError(
            f"expected {n_worlds} edge worlds, got {len(worlds)}")
    return fixed_coin_batch(graph, worlds)


def simulate_uic_batch(graph: DirectedGraph, model: UtilityModel,
                       allocation: Allocation,
                       n_worlds: Optional[int] = None,
                       rng: RngLike = None,
                       edge_worlds: Optional[EdgeWorldsLike] = None,
                       noise_worlds: Optional[np.ndarray] = None,
                       max_rounds: Optional[int] = None) -> BatchDiffusionResult:
    """Run ``B`` independent UIC diffusions as one vectorized computation.

    Parameters
    ----------
    graph, model, allocation:
        The CWelMax instance and seed allocation, exactly as in
        :func:`repro.diffusion.uic.simulate_uic`.
    n_worlds:
        Number of worlds ``B``; may be omitted when ``edge_worlds`` or
        ``noise_worlds`` determines it.
    rng:
        Randomness for whatever part of the possible worlds is not supplied.
    edge_worlds:
        ``None`` (lazy per-world coins), a sequence of ``B`` fixed
        :class:`EdgeWorld` s, or a pre-built coin provider
        (:class:`FixedCoinBatch` / :class:`LazyCoinCache`) — the latter is
        how common-random-number callers share coins across simulations.
    noise_worlds:
        Optional ``(B, num_items)`` noise matrix; sampled when omitted.
    max_rounds:
        Per-world safety cap on rounds (defaults to ``n``).
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    catalog = model.catalog

    if n_worlds is None:
        if noise_worlds is not None:
            n_worlds = len(noise_worlds)
        elif isinstance(edge_worlds, (LazyCoinCache, FixedCoinBatch)):
            n_worlds = edge_worlds.num_worlds
        elif edge_worlds is not None:
            n_worlds = len(list(edge_worlds))
        else:
            raise ValueError(
                "n_worlds is required when neither edge_worlds nor "
                "noise_worlds is given")
    n_worlds = int(n_worlds)
    if n_worlds < 0:
        raise ValueError("n_worlds must be >= 0")

    if noise_worlds is None:
        noise_worlds = model.sample_noise_worlds(rng, n_worlds)
    else:
        noise_worlds = np.asarray(noise_worlds, dtype=np.float64)
        if noise_worlds.shape != (n_worlds, model.num_items):
            raise ValueError(
                f"noise_worlds must have shape ({n_worlds}, "
                f"{model.num_items}), got {noise_worlds.shape}")
    utilities = model.utility_tables(noise_worlds)  # (B, 2^m)
    coins = _resolve_coins(graph, edge_worlds, n_worlds, rng)

    desire = np.zeros((n_worlds, n), dtype=np.int64)
    adopted = np.zeros((n_worlds, n), dtype=np.int64)
    rounds = np.zeros(n_worlds, dtype=np.int64)
    order = _candidate_order(catalog.num_bundles)

    # the frontier is carried as parallel index arrays — (world, node) pairs
    # with the items each node newly adopted last round — so no round ever
    # scans the dense (B, n) state to find the active pairs.
    frontier_worlds = np.zeros(0, dtype=np.int64)
    frontier_nodes = np.zeros(0, dtype=np.int64)
    frontier_items = np.zeros(0, dtype=np.int64)

    seed_masks = allocation.node_item_masks(catalog, n)
    seeds = np.nonzero(seed_masks)[0]
    if len(seeds) and n_worlds:
        desire[:, seeds] = seed_masks[seeds][None, :]
        pair_worlds = np.repeat(np.arange(n_worlds, dtype=np.int64),
                                len(seeds))
        pair_nodes = np.tile(seeds, n_worlds)
        initial = _best_bundles(desire[pair_worlds, pair_nodes],
                                np.zeros(len(pair_worlds), dtype=np.int64),
                                utilities, pair_worlds, order)
        adopted[pair_worlds, pair_nodes] = initial
        adopting = initial != 0
        frontier_worlds = pair_worlds[adopting]
        frontier_nodes = pair_nodes[adopting]
        frontier_items = initial[adopting]

    indptr, indices, _ = graph.out_csr()
    limit = n if max_rounds is None else int(max_rounds)
    active_flags = np.zeros(n_worlds, dtype=bool)

    executed = 0
    while executed < limit and len(frontier_worlds):
        executed += 1
        active_flags[:] = False
        active_flags[frontier_worlds] = True
        rounds += active_flags

        # one synchronous round: flip any missing coins, push the newly
        # adopted items of every influencer across its live out-edges, then
        # let each informed node re-optimize its adoption exactly once.
        coins.ensure(frontier_worlds, frontier_nodes)
        edge_ids, edge_worlds_ids, pushed = gather_csr_edges(
            indptr, frontier_nodes, frontier_worlds, frontier_items)
        live = coins.live_edges(edge_worlds_ids, edge_ids)
        edge_worlds_ids = edge_worlds_ids[live]
        targets = indices[edge_ids[live]]
        pushed = pushed[live]
        frontier_worlds = frontier_nodes = frontier_items = \
            np.zeros(0, dtype=np.int64)
        if len(edge_worlds_ids) == 0:
            continue

        # OR-combine the inform events per (world, target) pair: sort by a
        # combined key and bitwise-or over each run (much faster than a
        # scattered np.bitwise_or.at into dense state).
        keys = edge_worlds_ids * n + targets
        key_order = np.argsort(keys, kind="stable")
        sorted_keys = keys[key_order]
        run_starts = np.nonzero(
            np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])[0]
        informed = np.bitwise_or.reduceat(pushed[key_order], run_starts)
        informed_worlds = sorted_keys[run_starts] // n
        informed_nodes = sorted_keys[run_starts] % n

        informed &= ~desire[informed_worlds, informed_nodes]
        fresh = informed != 0
        if not fresh.any():
            continue
        informed_worlds = informed_worlds[fresh]
        informed_nodes = informed_nodes[fresh]
        desire[informed_worlds, informed_nodes] |= informed[fresh]
        previous = adopted[informed_worlds, informed_nodes]
        updated = _best_bundles(desire[informed_worlds, informed_nodes],
                                previous, utilities, informed_worlds, order)
        changed = updated != previous
        frontier_worlds = informed_worlds[changed]
        frontier_nodes = informed_nodes[changed]
        frontier_items = updated[changed] & ~previous[changed]
        adopted[frontier_worlds, frontier_nodes] = updated[changed]

    if n:
        welfare = np.take_along_axis(utilities, adopted, axis=1).sum(axis=1)
    else:
        welfare = np.zeros(n_worlds, dtype=np.float64)
    counts_by_item = {name: np.count_nonzero(adopted & bit, axis=1)
                      for name, bit in catalog.iter_singletons()}
    num_adopters = np.count_nonzero(adopted, axis=1) if n \
        else np.zeros(n_worlds, dtype=np.int64)
    return BatchDiffusionResult(
        adoption_masks=adopted,
        welfare=welfare.astype(np.float64),
        adoption_counts=counts_by_item,
        num_adopters=np.asarray(num_adopters, dtype=np.int64),
        rounds=rounds,
    )


def simulate_ic_batch(graph: DirectedGraph, seeds: Iterable[int],
                      n_worlds: int, rng: RngLike = None,
                      edge_live: Optional[np.ndarray] = None) -> np.ndarray:
    """Run ``B`` independent IC diffusions; returns active masks ``(B, n)``.

    ``edge_live`` optionally fixes the edge coins as a ``(B, m)`` liveness
    matrix (the common-random-number path); otherwise coins are drawn on
    demand — in IC every node activates at most once per world, so each
    edge's coin is consumed exactly once and no cache is needed.
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    n_worlds = int(n_worlds)
    active = np.zeros((n_worlds, n), dtype=bool)
    seed_list = sorted(set(int(v) for v in seeds))
    if not seed_list or n == 0 or n_worlds == 0:
        return active
    for seed in seed_list:
        if not 0 <= seed < n:
            raise ValueError(f"seed node {seed} out of range [0, {n})")

    if edge_live is not None:
        edge_live = np.asarray(edge_live, dtype=bool)
        if edge_live.shape != (n_worlds, graph.num_edges):
            raise ValueError(
                f"edge_live must have shape ({n_worlds}, "
                f"{graph.num_edges}), got {edge_live.shape}")

    indptr, indices, probs = graph.out_csr()
    active[:, seed_list] = True
    seed_arr = np.asarray(seed_list, dtype=np.int64)
    world_ids = np.repeat(np.arange(n_worlds, dtype=np.int64), len(seed_arr))
    node_ids = np.tile(seed_arr, n_worlds)

    while len(world_ids):
        edge_ids, edge_world_ids = gather_csr_edges(indptr, node_ids,
                                                    world_ids)
        if edge_live is None:
            live = bernoulli_mask(rng, probs[edge_ids])
        else:
            live = edge_live[edge_world_ids, edge_ids]
        edge_world_ids = edge_world_ids[live]
        targets = indices[edge_ids[live]]
        fresh = ~active[edge_world_ids, targets]
        # dedupe same-round duplicate activations before they become the
        # next frontier
        world_ids, node_ids = unique_pairs(n, edge_world_ids[fresh],
                                           targets[fresh])
        active[world_ids, node_ids] = True
    return active


__all__ = [
    "BatchDiffusionResult",
    "simulate_uic_batch",
    "simulate_ic_batch",
]
