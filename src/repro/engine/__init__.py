"""Batched, array-vectorized possible-world engine.

This package is the performance substrate of the library: it advances many
possible worlds per call with numpy mask/``indptr`` operations over the CSR
adjacency instead of per-node Python loops.

* :mod:`repro.engine.forward` — frontier-vectorized UIC/IC simulation of
  ``B`` worlds per call;
* :mod:`repro.engine.reverse` — batched reverse-BFS RR-set sampling
  (standard, marginal and weighted) with geometric edge-skip coins;
* :mod:`repro.engine.coins` — the shared ``(B, m)`` lazy coin cache and
  common-random-number coin matrices;
* :mod:`repro.engine.config` — the ``engine="python"|"vectorized"`` switch
  and batch sizing.

The scalar implementations in :mod:`repro.diffusion` and
:mod:`repro.rrsets` remain the reference oracle; every estimator accepts
``engine=`` to select either path (``REPRO_ENGINE`` sets the default).
"""

from repro.engine.config import (
    BATCH_ENV_VAR,
    ENGINE_ENV_VAR,
    ENGINE_PYTHON,
    ENGINE_VECTORIZED,
    batch_size,
    default_engine,
    resolve_engine,
)
from repro.engine.coins import (
    FixedCoinBatch,
    LazyCoinCache,
    bernoulli_mask,
    edge_world_live_mask,
    fixed_coin_batch,
    sample_edge_coin_matrix,
)
from repro.engine.forward import (
    BatchDiffusionResult,
    simulate_ic_batch,
    simulate_uic_batch,
)
from repro.engine.reverse import (
    marginal_rr_sets,
    random_rr_sets,
    weighted_rr_sets,
)

__all__ = [
    # config
    "ENGINE_PYTHON",
    "ENGINE_VECTORIZED",
    "ENGINE_ENV_VAR",
    "BATCH_ENV_VAR",
    "default_engine",
    "resolve_engine",
    "batch_size",
    # coins
    "LazyCoinCache",
    "FixedCoinBatch",
    "bernoulli_mask",
    "sample_edge_coin_matrix",
    "edge_world_live_mask",
    "fixed_coin_batch",
    # forward
    "BatchDiffusionResult",
    "simulate_uic_batch",
    "simulate_ic_batch",
    # reverse
    "random_rr_sets",
    "marginal_rr_sets",
    "weighted_rr_sets",
]
