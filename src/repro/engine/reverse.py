"""Batched reverse-BFS sampling of standard, marginal and weighted RR sets.

The scalar generators in :mod:`repro.rrsets.rrset` run one reverse BFS per
RR set with a Python ``deque``.  Here a whole **batch of K roots** advances
level-synchronously: the per-sample visited/frontier state is a ``(K, n)``
boolean matrix, every level gathers the in-edges of all frontier nodes of
all samples in one ragged CSR gather, and the edge coins come from
:func:`~repro.engine.coins.bernoulli_mask` — pre-drawn geometric edge-skip
coins when the gathered probabilities are uniform, a vectorized comparison
otherwise.

The three samplers implement the same semantics as their scalar
counterparts:

* standard RR sets — plain reverse reachability;
* marginal RR sets — discarded (emptied) as soon as the BFS touches the
  fixed seed set;
* weighted RR sets — level-by-level BFS that stops after the first level
  containing a fixed seed, carrying ``max(0, U⁺(i_m) − best block
  utility)`` as the weight.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.config import batch_size
from repro.engine.coins import bernoulli_mask, gather_csr_edges, unique_pairs
from repro.graphs.graph import DirectedGraph
from repro.utils.rng import RngLike, ensure_rng


def _resolve_roots(n: int, count: int, rng: np.random.Generator,
                   roots: Optional[Sequence[int]]) -> np.ndarray:
    if roots is None:
        return rng.integers(0, n, size=count).astype(np.int64)
    roots = np.asarray(list(roots), dtype=np.int64)
    if len(roots) != count:
        raise ValueError(f"expected {count} roots, got {len(roots)}")
    if len(roots) and (roots.min() < 0 or roots.max() >= n):
        raise ValueError(f"root ids must lie in [0, {n})")
    return roots


def _expand_level(graph_csr, sample_ids: np.ndarray, node_ids: np.ndarray,
                  rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Gather the live in-edges of the frontier (sample, node) pairs.

    Returns ``(sample_ids, source_ids)`` of the successful reverse edges.
    """
    indptr, indices, probs = graph_csr
    edge_ids, edge_samples = gather_csr_edges(indptr, node_ids, sample_ids)
    live = bernoulli_mask(rng, probs[edge_ids])
    return edge_samples[live], indices[edge_ids[live]]


def _next_frontier(n: int, sample_ids: np.ndarray,
                   source_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dedupe newly visited (sample, node) pairs into the next frontier."""
    return unique_pairs(n, sample_ids, source_ids)


def _pack_visited(visited: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Extract one BFS chunk's sets as ``(per_set_counts, packed_nodes)``.

    ``np.nonzero`` on the C-contiguous ``(chunk, n)`` visited matrix walks
    row-major — rows in sample order, columns ascending within a row — so
    the flattened column indices are exactly the concatenation of the
    per-row ``np.nonzero(visited[k])[0]`` arrays the scalar extraction
    produced, at a fraction of the Python overhead.
    """
    sample_ids, node_ids = np.nonzero(visited)
    counts = np.bincount(sample_ids, minlength=visited.shape[0])
    return counts, node_ids.astype(np.int64, copy=False)


def _assemble_packed(count: int, counts_parts: List[np.ndarray],
                     nodes_parts: List[np.ndarray]
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate chunk slabs into one set-major ``(offsets, nodes)``."""
    offsets = np.zeros(count + 1, dtype=np.int64)
    if counts_parts:
        np.cumsum(np.concatenate(counts_parts), out=offsets[1:])
    nodes = np.concatenate(nodes_parts) if nodes_parts \
        else np.empty(0, dtype=np.int64)
    return offsets, nodes


def _as_views(offsets: np.ndarray, nodes: np.ndarray) -> List[np.ndarray]:
    """Slice a packed ``(offsets, nodes)`` pair into per-set views."""
    return [nodes[offsets[k]:offsets[k + 1]]
            for k in range(len(offsets) - 1)]


def random_rr_sets_packed(graph: DirectedGraph, count: int,
                          rng: RngLike = None,
                          roots: Optional[Sequence[int]] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` standard RR sets as one packed CSR pair.

    Returns ``(offsets, nodes)`` — set ``k`` occupies
    ``nodes[offsets[k]:offsets[k + 1]]`` — drawing the identical sets (in
    the identical order) as :func:`random_rr_sets` from the same RNG
    state.  The packed layout is what the sharded parallel builder ships
    between processes: one buffer per shard instead of one array per set.
    """
    rng = ensure_rng(rng)
    count = int(count)
    if count <= 0:
        return np.zeros(max(count, 0) + 1, dtype=np.int64), \
            np.empty(0, dtype=np.int64)
    n = graph.num_nodes
    if n == 0:
        return np.zeros(count + 1, dtype=np.int64), \
            np.empty(0, dtype=np.int64)
    graph_csr = graph.in_csr()
    counts_parts: List[np.ndarray] = []
    nodes_parts: List[np.ndarray] = []
    done = 0
    while done < count:
        chunk = batch_size(n, count - done)
        chunk_roots = _resolve_roots(
            n, chunk, rng,
            None if roots is None else list(roots)[done:done + chunk])
        visited = np.zeros((chunk, n), dtype=bool)
        rows = np.arange(chunk, dtype=np.int64)
        visited[rows, chunk_roots] = True
        front_samples, front_nodes = rows, chunk_roots
        while len(front_samples):
            sample_ids, source_ids = _expand_level(
                graph_csr, front_samples, front_nodes, rng)
            fresh = ~visited[sample_ids, source_ids]
            sample_ids = sample_ids[fresh]
            source_ids = source_ids[fresh]
            visited[sample_ids, source_ids] = True
            front_samples, front_nodes = _next_frontier(
                n, sample_ids, source_ids)
        counts, packed = _pack_visited(visited)
        counts_parts.append(counts)
        nodes_parts.append(packed)
        done += chunk
    return _assemble_packed(count, counts_parts, nodes_parts)


def random_rr_sets(graph: DirectedGraph, count: int, rng: RngLike = None,
                   roots: Optional[Sequence[int]] = None) -> List[np.ndarray]:
    """Sample ``count`` standard RR sets (each an array of node ids)."""
    return _as_views(*random_rr_sets_packed(graph, count, rng, roots))


def marginal_rr_sets_packed(graph: DirectedGraph, blocked: Set[int],
                            count: int, rng: RngLike = None,
                            roots: Optional[Sequence[int]] = None
                            ) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` marginal RR sets as one packed CSR pair.

    Same sets, same order and same RNG stream as
    :func:`marginal_rr_sets`; discarded samples appear as zero-length set
    ranges exactly where the list API returns empty arrays.
    """
    rng = ensure_rng(rng)
    count = int(count)
    if count <= 0:
        return np.zeros(max(count, 0) + 1, dtype=np.int64), \
            np.empty(0, dtype=np.int64)
    n = graph.num_nodes
    if n == 0:
        return np.zeros(count + 1, dtype=np.int64), \
            np.empty(0, dtype=np.int64)
    blocked_mask = np.zeros(n, dtype=bool)
    for node in blocked:
        node = int(node)
        if 0 <= node < n:
            blocked_mask[node] = True
    graph_csr = graph.in_csr()
    counts_parts: List[np.ndarray] = []
    nodes_parts: List[np.ndarray] = []
    done = 0
    while done < count:
        chunk = batch_size(n, count - done)
        chunk_roots = _resolve_roots(
            n, chunk, rng,
            None if roots is None else list(roots)[done:done + chunk])
        visited = np.zeros((chunk, n), dtype=bool)
        rows = np.arange(chunk, dtype=np.int64)
        dead = blocked_mask[chunk_roots].copy()
        visited[rows, chunk_roots] = True
        alive = ~dead
        front_samples, front_nodes = rows[alive], chunk_roots[alive]
        while len(front_samples):
            sample_ids, source_ids = _expand_level(
                graph_csr, front_samples, front_nodes, rng)
            fresh = ~visited[sample_ids, source_ids]
            sample_ids = sample_ids[fresh]
            source_ids = source_ids[fresh]
            hit = blocked_mask[source_ids]
            if hit.any():
                dead[sample_ids[hit]] = True
            visited[sample_ids, source_ids] = True
            keep = ~dead[sample_ids]
            front_samples, front_nodes = _next_frontier(
                n, sample_ids[keep], source_ids[keep])
        # discarded samples are emptied, not dropped: zeroing their rows
        # leaves zero-length ranges in the packed output
        if dead.any():
            visited[dead] = False
        counts, packed = _pack_visited(visited)
        counts_parts.append(counts)
        nodes_parts.append(packed)
        done += chunk
    return _assemble_packed(count, counts_parts, nodes_parts)


def marginal_rr_sets(graph: DirectedGraph, blocked: Set[int], count: int,
                     rng: RngLike = None,
                     roots: Optional[Sequence[int]] = None) -> List[np.ndarray]:
    """Sample ``count`` marginal RR sets w.r.t. the fixed seed set ``blocked``.

    A sample that touches ``blocked`` is discarded (returned as an empty
    array) but still counts towards ``count`` — exactly the Algorithm 3
    semantics that make coverage estimates marginal.
    """
    return _as_views(*marginal_rr_sets_packed(graph, blocked, count, rng,
                                              roots))


def weighted_rr_sets_packed(graph: DirectedGraph,
                            node_block_utility: Dict[int, float],
                            superior_utility: float, count: int,
                            rng: RngLike = None,
                            roots: Optional[Sequence[int]] = None
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                       np.ndarray]:
    """Sample ``count`` weighted RR sets as ``(offsets, nodes, weights,
    roots)`` packed arrays.

    Same sets, weights and roots (in the same order, from the same RNG
    stream) as :func:`weighted_rr_sets`, in the transport layout of the
    sharded parallel builder.
    """
    rng = ensure_rng(rng)
    count = int(count)
    if count <= 0:
        return (np.zeros(max(count, 0) + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64))
    n = graph.num_nodes
    if n == 0:
        return (np.zeros(count + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.zeros(count, dtype=np.float64),
                np.full(count, -1, dtype=np.int64))
    blocked_mask = np.zeros(n, dtype=bool)
    block_values = np.full(n, -np.inf)
    for node, value in node_block_utility.items():
        node = int(node)
        if 0 <= node < n:
            blocked_mask[node] = True
            block_values[node] = float(value)
    graph_csr = graph.in_csr()
    counts_parts: List[np.ndarray] = []
    nodes_parts: List[np.ndarray] = []
    weights_parts: List[np.ndarray] = []
    roots_parts: List[np.ndarray] = []
    done = 0
    while done < count:
        chunk = batch_size(n, count - done)
        chunk_roots = _resolve_roots(
            n, chunk, rng,
            None if roots is None else list(roots)[done:done + chunk])
        visited = np.zeros((chunk, n), dtype=bool)
        rows = np.arange(chunk, dtype=np.int64)
        best_block = np.full(chunk, -np.inf)
        visited[rows, chunk_roots] = True
        root_hit = blocked_mask[chunk_roots]
        if root_hit.any():
            best_block[root_hit] = block_values[chunk_roots[root_hit]]
        alive = ~root_hit
        front_samples, front_nodes = rows[alive], chunk_roots[alive]
        while len(front_samples):
            sample_ids, source_ids = _expand_level(
                graph_csr, front_samples, front_nodes, rng)
            fresh = ~visited[sample_ids, source_ids]
            sample_ids = sample_ids[fresh]
            source_ids = source_ids[fresh]
            visited[sample_ids, source_ids] = True
            # the whole level is explored before the stop check, matching
            # the scalar sampler (fixed seeds found in this level all count)
            hit = blocked_mask[source_ids]
            stopped = np.zeros(chunk, dtype=bool)
            if hit.any():
                np.maximum.at(best_block, sample_ids[hit],
                              block_values[source_ids[hit]])
                stopped[sample_ids[hit]] = True
            keep = ~stopped[sample_ids]
            front_samples, front_nodes = _next_frontier(
                n, sample_ids[keep], source_ids[keep])
        block_utility = np.where(np.isfinite(best_block), best_block, 0.0)
        weights = np.maximum(0.0, float(superior_utility) - block_utility)
        counts, packed = _pack_visited(visited)
        counts_parts.append(counts)
        nodes_parts.append(packed)
        weights_parts.append(weights.astype(np.float64, copy=False))
        roots_parts.append(chunk_roots)
        done += chunk
    offsets, nodes = _assemble_packed(count, counts_parts, nodes_parts)
    return (offsets, nodes, np.concatenate(weights_parts),
            np.concatenate(roots_parts))


def weighted_rr_sets(graph: DirectedGraph,
                     node_block_utility: Dict[int, float],
                     superior_utility: float, count: int,
                     rng: RngLike = None,
                     roots: Optional[Sequence[int]] = None
                     ) -> List[Tuple[np.ndarray, float, int]]:
    """Sample ``count`` weighted RR sets as ``(nodes, weight, root)`` tuples.

    Mirrors :meth:`repro.rrsets.rrset.WeightedRRSampler.sample`: the reverse
    BFS proceeds level by level and stops after the first level containing a
    node of the fixed seed set; the weight is ``max(0, superior_utility −
    best block utility hit)`` (0 block utility when no fixed seed reaches
    the root).
    """
    offsets, nodes, weights, root_ids = weighted_rr_sets_packed(
        graph, node_block_utility, superior_utility, count, rng, roots)
    return [(nodes[offsets[k]:offsets[k + 1]], float(weights[k]),
             int(root_ids[k]))
            for k in range(len(weights))]


__all__ = [
    "random_rr_sets",
    "random_rr_sets_packed",
    "marginal_rr_sets",
    "marginal_rr_sets_packed",
    "weighted_rr_sets",
    "weighted_rr_sets_packed",
]
