"""Edge-coin machinery shared by the forward and reverse batched engines.

A possible-world batch needs one independent Bernoulli(``p_e``) coin per
(world, edge) pair.  Three providers cover the use cases:

* :class:`LazyCoinCache` — the batched analogue of
  :class:`~repro.diffusion.worlds.LazyEdgeWorld`: a ``(B, m)`` liveness
  matrix whose rows are filled per (world, node) the first time that node
  becomes an influencer in that world, then cached so re-influencing nodes
  (a node adopting a second item) reuse the same coins.
* :class:`FixedCoinBatch` — a fully materialized ``(B, m)`` liveness matrix,
  used for common-random-number marginal estimates (both allocations see the
  exact same coins) and for replaying fixed :class:`EdgeWorld` s.
* :func:`bernoulli_mask` — the one-shot coin vector used whenever coins are
  consumed exactly once (IC activations, reverse BFS expansions).  When all
  gathered probabilities are equal it draws *geometric edge-skip* coins —
  pre-drawn blocks of geometric skip lengths that jump straight to the next
  live edge — which costs O(#live) instead of O(#edges) for sparse cascades.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Union

import numpy as np

from repro.diffusion.worlds import EdgeWorld, LazyEdgeWorld
from repro.graphs.graph import DirectedGraph
from repro.utils.rng import RngLike, ensure_rng


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(c)`` for every ``c`` in ``counts``."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - starts


def gather_csr_edges(indptr: np.ndarray, row_ids: np.ndarray,
                     *carries: np.ndarray):
    """Expand CSR rows into per-edge ids — the engine's core gather.

    Returns ``(edge_ids, *carried)``: the CSR positions of every edge of
    every row in ``row_ids`` (rows may repeat), plus each carry array
    (e.g. world/sample ids aligned with ``row_ids``) repeated once per
    edge of its row.
    """
    counts = indptr[row_ids + 1] - indptr[row_ids]
    edge_ids = np.repeat(indptr[row_ids], counts) + ragged_arange(counts)
    return (edge_ids, *(np.repeat(carry, counts) for carry in carries))


def unique_pairs(n: int, first: np.ndarray,
                 second: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Dedupe (first, second) index pairs with ``second`` in ``[0, n)``."""
    if len(first) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    keys = np.unique(first * n + second)
    return keys // n, keys % n


def _geometric_skip_mask(rng: np.random.Generator, size: int,
                         prob: float) -> np.ndarray:
    """Bernoulli(``prob``) mask of ``size`` iid coins via geometric skips.

    Instead of flipping one coin per position, pre-draw blocks of geometric
    skip lengths ``G = floor(ln(U) / ln(1 - prob))`` (the number of dead
    edges before the next live one) and jump directly to the live positions.
    Distributionally identical to ``rng.random(size) < prob``.
    """
    mask = np.zeros(size, dtype=bool)
    log_q = math.log1p(-prob)
    position = -1
    while True:
        remaining = size - position - 1
        if remaining <= 0:
            return mask
        block = max(16, int(remaining * prob * 1.5) + 8)
        draws = 1.0 - rng.random(block)  # uniform on (0, 1]
        skips = np.floor(np.log(draws) / log_q).astype(np.int64)
        positions = position + np.cumsum(skips + 1)
        inside = positions < size
        mask[positions[inside]] = True
        if not inside.all():
            return mask
        position = int(positions[-1])


def bernoulli_mask(rng: np.random.Generator, probs: np.ndarray) -> np.ndarray:
    """One independent Bernoulli coin per entry of ``probs``.

    Uses geometric edge-skipping when every gathered probability is equal
    (the weighted-cascade and uniform-probability cases), and a plain
    vectorized uniform comparison otherwise.
    """
    size = len(probs)
    if size == 0:
        return np.zeros(0, dtype=bool)
    first = float(probs[0])
    if 0.0 < first < 1.0 and size > 32 and np.all(probs == first):
        return _geometric_skip_mask(rng, size, first)
    return rng.random(size) < probs


class LazyCoinCache:
    """Lazy ``(B, m)`` edge-coin cache over the forward CSR adjacency.

    ``ensure(worlds, nodes)`` flips the out-edge coins of every (world,
    node) pair not flipped yet; ``live_edges`` then reads the cached
    liveness for arbitrary (world, edge-id) pairs.  Within one batch this is
    indistinguishable from ``B`` independent :class:`LazyEdgeWorld` s.
    """

    def __init__(self, graph: DirectedGraph, n_worlds: int,
                 rng: RngLike = None) -> None:
        self._indptr, _, self._probs = graph.out_csr()
        self._rng = ensure_rng(rng)
        self._live = np.zeros((int(n_worlds), graph.num_edges), dtype=bool)
        self._flipped = np.zeros((int(n_worlds), graph.num_nodes), dtype=bool)

    @property
    def num_worlds(self) -> int:
        return self._live.shape[0]

    def ensure(self, world_ids: np.ndarray, node_ids: np.ndarray) -> None:
        """Flip (and cache) out-edge coins for the given (world, node) pairs."""
        if len(world_ids) == 0:
            return
        need = ~self._flipped[world_ids, node_ids]
        if not need.any():
            return
        worlds = world_ids[need]
        nodes = node_ids[need]
        edge_ids, edge_worlds = gather_csr_edges(self._indptr, nodes, worlds)
        if len(edge_ids):
            coins = bernoulli_mask(self._rng, self._probs[edge_ids])
            self._live[edge_worlds, edge_ids] = coins
        self._flipped[worlds, nodes] = True

    def live_edges(self, world_per_edge: np.ndarray,
                   edge_ids: np.ndarray) -> np.ndarray:
        """Liveness of the given (world, edge-id) pairs (coins must be flipped)."""
        return self._live[world_per_edge, edge_ids]


class FixedCoinBatch:
    """A fully specified batch of edge worlds as a ``(B, m)`` liveness matrix."""

    def __init__(self, graph: DirectedGraph, live: np.ndarray) -> None:
        live = np.asarray(live, dtype=bool)
        if live.ndim != 2 or live.shape[1] != graph.num_edges:
            raise ValueError(
                f"live matrix must have shape (B, {graph.num_edges}), "
                f"got {live.shape}")
        self._live = live

    @property
    def num_worlds(self) -> int:
        return self._live.shape[0]

    def ensure(self, world_ids: np.ndarray, node_ids: np.ndarray) -> None:
        """No-op: every coin is already determined."""

    def live_edges(self, world_per_edge: np.ndarray,
                   edge_ids: np.ndarray) -> np.ndarray:
        return self._live[world_per_edge, edge_ids]


CoinProvider = Union[LazyCoinCache, FixedCoinBatch]


def sample_edge_coin_matrix(graph: DirectedGraph, n_worlds: int,
                            rng: RngLike = None) -> np.ndarray:
    """Eagerly sample a ``(n_worlds, m)`` edge-liveness matrix.

    The shared-coin substrate of common-random-number marginal estimates:
    simulate two allocations against the same matrix and their welfare
    difference has dramatically lower variance than independent runs.
    """
    rng = ensure_rng(rng)
    m = graph.num_edges
    if m == 0:
        return np.zeros((int(n_worlds), 0), dtype=bool)
    _, _, probs = graph.out_csr()
    return rng.random((int(n_worlds), m)) < probs[None, :]


def edge_world_live_mask(graph: DirectedGraph,
                         edge_world: Union[EdgeWorld, LazyEdgeWorld]) -> np.ndarray:
    """Per-edge liveness vector of a fixed edge world (CSR edge order).

    Lets the batched simulator replay the exact deterministic world a scalar
    simulation used — the basis of the bit-identical equivalence tests.
    Passing a :class:`LazyEdgeWorld` materializes all of its coins.
    """
    indptr, indices, _ = graph.out_csr()
    live = np.zeros(graph.num_edges, dtype=bool)
    for node in range(graph.num_nodes):
        start, stop = int(indptr[node]), int(indptr[node + 1])
        if start == stop:
            continue
        live_targets = edge_world.out_neighbors(node)
        if len(live_targets) == 0:
            continue
        live[start:stop] = np.isin(indices[start:stop], live_targets)
    return live


def fixed_coin_batch(graph: DirectedGraph,
                     edge_worlds: Sequence[Union[EdgeWorld, LazyEdgeWorld]]) -> FixedCoinBatch:
    """Convert a sequence of fixed edge worlds into a :class:`FixedCoinBatch`."""
    masks: List[np.ndarray] = [edge_world_live_mask(graph, w)
                               for w in edge_worlds]
    if masks:
        live = np.stack(masks)
    else:
        live = np.zeros((0, graph.num_edges), dtype=bool)
    return FixedCoinBatch(graph, live)


__all__ = [
    "ragged_arange",
    "gather_csr_edges",
    "unique_pairs",
    "bernoulli_mask",
    "LazyCoinCache",
    "FixedCoinBatch",
    "CoinProvider",
    "sample_edge_coin_matrix",
    "edge_world_live_mask",
    "fixed_coin_batch",
]
