"""Minimal asyncio HTTP endpoint exposing Prometheus metrics.

Serves exactly two routes on a dedicated listener
(``repro serve --metrics-tcp HOST:PORT``):

* ``GET /metrics``  — Prometheus text exposition
  (``text/plain; version=0.0.4``) rendered from one or more
  :class:`~repro.obs.metrics.MetricsRegistry` instances;
* ``GET /healthz``  — a small JSON health document; answers 200 only
  when the server reports ``state: ok`` and 503 for ``degraded`` /
  ``draining``, so load balancers stop routing to an overloaded or
  shutting-down replica.

This is deliberately not a web framework: one request per connection
(``Connection: close``), headers are read and discarded, anything that
is not a well-formed ``GET`` gets a 400/404/405.  The scrape path never
touches the allocation hot path — rendering snapshots instrument state
under per-instrument locks.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Iterable, Optional

from repro.obs.metrics import MetricsRegistry

_MAX_REQUEST_BYTES = 16384
_CONTENT_TYPE_PROM = "text/plain; version=0.0.4; charset=utf-8"
_CONTENT_TYPE_JSON = "application/json; charset=utf-8"


def _http_response(status: int, reason: str, content_type: str,
                   body: bytes) -> bytes:
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


class MetricsExporter:
    """One-listener HTTP exporter over a set of metric registries."""

    def __init__(self, registries: Iterable[MetricsRegistry],
                 health: Optional[Callable[[], dict]] = None) -> None:
        self._registries = list(registries)
        self._health = health
        self._server: Optional[asyncio.AbstractServer] = None

    def render(self) -> str:
        """Concatenated exposition text of every registry."""
        return "".join(r.render_prometheus() for r in self._registries)

    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port)

    @property
    def addresses(self):
        """Bound ``(host, port)`` pairs (after :meth:`start`)."""
        if self._server is None:
            return []
        return [sock.getsockname()[:2] for sock in self._server.sockets]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            response = await self._respond(reader)
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10.0)
        except asyncio.TimeoutError:
            return _http_response(408, "Request Timeout",
                                  _CONTENT_TYPE_JSON, b'{"error":"timeout"}')
        if len(request_line) > _MAX_REQUEST_BYTES:
            return _http_response(400, "Bad Request", _CONTENT_TYPE_JSON,
                                  b'{"error":"request line too long"}')
        try:
            parts = request_line.decode("ascii").split()
        except UnicodeDecodeError:
            parts = []
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return _http_response(400, "Bad Request", _CONTENT_TYPE_JSON,
                                  b'{"error":"malformed request line"}')
        method, target, _version = parts
        # drain headers (bounded) so well-behaved clients see a response
        consumed = len(request_line)
        while True:
            line = await reader.readline()
            consumed += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
            if consumed > _MAX_REQUEST_BYTES:
                return _http_response(
                    400, "Bad Request", _CONTENT_TYPE_JSON,
                    b'{"error":"headers too long"}')
        if method != "GET":
            return _http_response(405, "Method Not Allowed",
                                  _CONTENT_TYPE_JSON,
                                  b'{"error":"method not allowed"}')
        path = target.split("?", 1)[0]
        if path == "/metrics":
            return _http_response(200, "OK", _CONTENT_TYPE_PROM,
                                  self.render().encode("utf-8"))
        if path == "/healthz":
            payload = {"ok": True}
            if self._health is not None:
                try:
                    payload.update(self._health())
                except Exception:
                    payload = {"ok": False, "state": "error"}
            # load balancers key on the status line: only an "ok" server
            # should receive traffic, so degraded/draining answer 503
            state = payload.get("state")
            healthy = payload.get("ok", True) and state in (None, "ok")
            status, reason = (200, "OK") if healthy \
                else (503, "Service Unavailable")
            return _http_response(status, reason, _CONTENT_TYPE_JSON,
                                  json.dumps(payload).encode("utf-8"))
        return _http_response(404, "Not Found", _CONTENT_TYPE_JSON,
                              b'{"error":"not found"}')


__all__ = ["MetricsExporter"]
