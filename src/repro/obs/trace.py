"""Per-request tracing: a trace id plus named span timings.

A :class:`Trace` is minted when a frame is received and carried through
the protocol stages (``parse`` → ``validate`` → ``queue`` → ``execute``
→ ``respond``).  Span timings are surfaced in the response ``timings``
object (``trace_id`` + ``spans``, milliseconds) and folded into the
server's ``repro_span_seconds`` histograms.

Trace ids come from :func:`os.urandom` — *never* from numpy's RNG, whose
streams are part of the reproducibility contract (allocations must be
bit-identical with tracing on or off).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple


def new_trace_id() -> str:
    """A 16-hex-char request id, independent of every seeded RNG."""
    return os.urandom(8).hex()


class Trace:
    """Named span timings for one request, in recording order.

    Repeated spans with the same name accumulate (a coalesced batch
    executes once but queues per request).
    """

    __slots__ = ("trace_id", "started", "_spans")

    def __init__(self, trace_id: str = "") -> None:
        self.trace_id = trace_id or new_trace_id()
        self.started = time.perf_counter()
        self._spans: List[Tuple[str, float]] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time the wrapped block as span ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` against span ``name``."""
        self._spans.append((name, float(seconds)))

    def spans(self) -> List[Tuple[str, float]]:
        """``(name, seconds)`` pairs in recording order (accumulated by
        name)."""
        merged: Dict[str, float] = {}
        order: List[str] = []
        for name, seconds in self._spans:
            if name not in merged:
                order.append(name)
                merged[name] = 0.0
            merged[name] += seconds
        return [(name, merged[name]) for name in order]

    def elapsed(self) -> float:
        """Seconds since the trace was minted."""
        return time.perf_counter() - self.started

    def timings_ms(self) -> Dict[str, float]:
        """Span timings in milliseconds, keyed by span name."""
        return {name: round(seconds * 1000.0, 3)
                for name, seconds in self.spans()}


__all__ = ["Trace", "new_trace_id"]
