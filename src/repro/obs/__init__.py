"""Observability: metrics, tracing, structured logging, exposition.

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket log-scale histograms) with JSON
  summaries and Prometheus text exposition; a process-global registry
  (:func:`get_metrics`) for build-path instrumentation.
* :mod:`repro.obs.trace` — per-request :class:`Trace` ids and span
  timings threaded through the protocol stages.
* :mod:`repro.obs.logging` — structured JSON event logging on stdlib
  :mod:`logging` (``repro serve --log-json/--log-level``).
* :mod:`repro.obs.httpexp` — the minimal asyncio HTTP exporter behind
  ``repro serve --metrics-tcp``.

Design rule: instrumentation observes, never participates — allocations
are bit-identical with the registry enabled or disabled, and the warm
request path stays within 5% of the uninstrumented baseline
(``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.logging import configure_logging, get_logger, log_event
from repro.obs.metrics import (
    MetricsRegistry,
    get_metrics,
    set_global_metrics_enabled,
)
from repro.obs.trace import Trace, new_trace_id

__all__ = [
    "MetricsRegistry",
    "Trace",
    "configure_logging",
    "get_logger",
    "get_metrics",
    "log_event",
    "new_trace_id",
    "set_global_metrics_enabled",
]
