"""Structured JSON event logging on top of stdlib :mod:`logging`.

Events are emitted through :func:`log_event` with a machine-stable
``event`` name plus arbitrary JSON-able fields; :class:`JsonFormatter`
renders one JSON object per line.  Without ``--log-json`` the same
events render as ordinary ``key=value`` log lines, so nothing is gated
on the formatter.

Event names used across the system (grep for ``log_event``):

``server-started``, ``server-drained``, ``connection-opened``,
``connection-closed``, ``frame-resync``, ``response-unserializable``,
``batch-executed``, ``index-loaded``, ``index-evicted``,
``registry-reloaded``, ``manifest-skipped``, ``index-finalized``.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Dict, Optional, TextIO

#: the logger namespace every repro component logs under
ROOT_LOGGER = "repro"


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "repro_event", "log"),
            "message": record.getMessage(),
        }
        fields = getattr(record, "repro_fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        try:
            return json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError):
            return json.dumps({k: str(v) for k, v in payload.items()},
                              sort_keys=True)


class KeyValueFormatter(logging.Formatter):
    """Human-readable fallback: ``LEVEL event message key=value ...``."""

    def format(self, record: logging.LogRecord) -> str:
        event = getattr(record, "repro_event", None)
        fields = getattr(record, "repro_fields", None) or {}
        parts = [record.levelname.lower()]
        if event:
            parts.append(event)
        message = record.getMessage()
        if message:
            parts.append(message)
        parts.extend(f"{k}={v}" for k, v in fields.items())
        text = " ".join(parts)
        if record.exc_info and record.exc_info[0] is not None:
            text += "\n" + self.formatException(record.exc_info)
        return text


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """The logger for a repro component (``repro.serve``, ...)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def log_event(logger: logging.Logger, level: int, event: str,
              message: str = "", **fields: Any) -> None:
    """Emit a structured event: stable ``event`` name + JSON-able
    ``fields`` (rendered as one JSON line under ``--log-json``)."""
    if not logger.isEnabledFor(level):
        return
    logger.log(level, message or event,
               extra={"repro_event": event, "repro_fields": fields})


def configure_logging(level: str = "info", json_output: bool = False,
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Configure the ``repro`` logger tree (``serve --log-level/--log-json``).

    Logs go to ``stream`` (default stderr — stdout belongs to the
    JSON-lines protocol in stdio mode).  Replaces any handlers from a
    prior call, so it is safe to call repeatedly (tests, reloads).
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(numeric)
    root.propagate = False
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_output
                         else KeyValueFormatter())
    root.addHandler(handler)
    return root


__all__ = [
    "ROOT_LOGGER",
    "JsonFormatter",
    "KeyValueFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
]
