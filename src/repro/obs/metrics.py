"""Thread-safe metrics primitives: counters, gauges, log-scale histograms.

One :class:`MetricsRegistry` holds every instrument of a subsystem.
Instruments are identified by a name plus optional labels (Prometheus
conventions: ``snake_case`` names, ``_total`` suffix on counters,
``_seconds`` on duration histograms), and the registry renders them two
ways:

* :meth:`MetricsRegistry.summary` — a JSON-able dict for the ``stats`` /
  ``metrics`` protocol ops and ``repro metrics``;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``text/plain; version=0.0.4``) served by
  ``repro serve --metrics-tcp``.

Histograms use **fixed log-scale buckets**: an observation lands in the
first bucket whose upper bound reaches it, so p50/p95/p99 are answered
from ~40 integers without retaining samples (the quantile rule is the
shared nearest-rank implementation in :mod:`repro.utils.timer`, which the
experiment harness' bounded lap reservoirs use too).

Every instrument checks its registry's ``enabled`` flag on the hot path,
so a disabled registry (``repro serve --no-metrics``, the overhead
benchmark's control arm) reduces recording to one attribute read and a
branch.  Instrumentation never feeds back into computation — allocations
are bit-identical with metrics on or off, which ``tests/test_obs.py``
pins.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.timer import percentile_from_counts

#: default histogram buckets: log-scale seconds from 10 µs to ~84 s
#: (upper bounds; one +Inf bucket is always appended)
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    1e-5 * 2.0 ** i for i in range(24))

LabelSet = Tuple[Tuple[str, str], ...]


def _label_set(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: LabelSet) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join(f'{k}="{_escape(v)}"' for k, v in labels)


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_registry", "_lock", "_value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (or is computed on read)."""

    __slots__ = ("_registry", "_lock", "_value", "_fn")

    def __init__(self, registry: "MetricsRegistry",
                 fn: Optional[Callable[[], float]] = None) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # a dead callback must not kill a scrape
                return float("nan")
        return self._value


class Histogram:
    """Fixed-bucket log-scale histogram answering quantiles from counts.

    ``observe`` is O(log #buckets) (one bisect) plus a lock; the registry
    never retains samples, so the memory footprint is constant.  Reported
    percentiles are bucket upper bounds — conservative estimates whose
    resolution is the bucket growth factor (2x by default).
    """

    __slots__ = ("_registry", "_lock", "_bounds", "_counts", "_sum",
                 "_count", "_min", "_max")

    def __init__(self, registry: "MetricsRegistry",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly ascending")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        # bisect_right over a small tuple: first bucket whose bound >= value
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        with self._lock:
            self._counts[lo] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate (bucket upper bound)."""
        with self._lock:
            counts = list(self._counts)
            maximum = self._max
        if not sum(counts):
            return float("nan")
        # the +Inf bucket reports the observed maximum instead of inf
        values = list(self._bounds) + [maximum]
        return percentile_from_counts(values, counts, q)

    def summary(self) -> Dict[str, Any]:
        """Count, sum, min/max and the standard serving percentiles."""
        with self._lock:
            count, total = self._count, self._sum
            minimum, maximum = self._min, self._max
        if not count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": count,
            "sum": round(total, 6),
            "min": round(minimum, 6),
            "max": round(maximum, 6),
            "mean": round(total / count, 6),
            "p50": round(self.percentile(50.0), 6),
            "p95": round(self.percentile(95.0), 6),
            "p99": round(self.percentile(99.0), 6),
        }

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs, +Inf last (non-cumulative)."""
        with self._lock:
            counts = list(self._counts)
        return list(zip(list(self._bounds) + [float("inf")], counts))


#: a metric family: every labeled instrument sharing one name
_Family = Dict[LabelSet, Any]

#: collector callback result row: (name, type, help, [(labels, value)])
CollectedFamily = Tuple[str, str, str, List[Tuple[Dict[str, str], float]]]


class MetricsRegistry:
    """Registry of named, labeled instruments with two exposition formats.

    Parameters
    ----------
    enabled:
        When false, every instrument's record path is a no-op (one
        attribute read + branch); exposition still works and reports the
        state accumulated while enabled.  Togglable at runtime via
        :meth:`enable` — handed-out instrument handles observe the change
        immediately.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, _Family] = {}
        self._gauges: Dict[str, _Family] = {}
        self._histograms: Dict[str, _Family] = {}
        self._help: Dict[str, str] = {}
        self._collectors: List[Callable[[], Iterable[CollectedFamily]]] = []
        self._created = time.time()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, flag: bool = True) -> None:
        """Switch recording on or off for every instrument at once."""
        self._enabled = bool(flag)

    # ------------------------------------------------------------------
    def _instrument(self, store: Dict[str, _Family], name: str, help: str,
                    factory: Callable[[], Any], labels: Dict[str, Any]):
        key = _label_set(labels)
        family = store.get(name)
        if family is not None:
            instrument = family.get(key)
            if instrument is not None:
                return instrument
        with self._lock:
            family = store.setdefault(name, {})
            instrument = family.get(key)
            if instrument is None:
                instrument = family[key] = factory()
                if help:
                    self._help.setdefault(name, help)
            return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The counter ``name`` with the given labels (created on first
        use)."""
        return self._instrument(self._counters, name, help,
                                lambda: Counter(self), labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """The settable gauge ``name`` with the given labels."""
        return self._instrument(self._gauges, name, help,
                                lambda: Gauge(self), labels)

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 help: str = "", **labels: Any) -> Gauge:
        """Register a gauge computed by ``fn`` at exposition time (zero
        recording cost on the hot path)."""
        return self._instrument(self._gauges, name, help,
                                lambda: Gauge(self, fn=fn), labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        """The histogram ``name`` with the given labels."""
        return self._instrument(self._histograms, name, help,
                                lambda: Histogram(self, buckets=buckets),
                                labels)

    def register_collector(
            self, fn: Callable[[], Iterable[CollectedFamily]]) -> None:
        """Register a callback producing metric families at exposition
        time — the route for dynamic label sets (e.g. per-index cache
        stats) that would be wasteful to maintain on the hot path."""
        with self._lock:
            self._collectors.append(fn)

    def reset(self) -> None:
        """Drop every instrument and collector (tests / benchmarks)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._help.clear()
            self._collectors.clear()

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def _collected(self) -> List[CollectedFamily]:
        with self._lock:
            collectors = list(self._collectors)
        families: List[CollectedFamily] = []
        for collector in collectors:
            try:
                families.extend(collector())
            except Exception:  # a broken collector must not kill a scrape
                continue
        return families

    def summary(self) -> Dict[str, Any]:
        """JSON-able snapshot: counters/gauges by labeled name, histogram
        summaries with p50/p95/p99."""
        with self._lock:
            counters = {name: dict(family)
                        for name, family in self._counters.items()}
            gauges = {name: dict(family)
                      for name, family in self._gauges.items()}
            histograms = {name: dict(family)
                          for name, family in self._histograms.items()}
        out: Dict[str, Any] = {"counters": {}, "gauges": {},
                               "histograms": {}}
        for name, family in sorted(counters.items()):
            out["counters"][name] = {
                _label_suffix(labels) or "": instrument.value
                for labels, instrument in sorted(family.items())}
        for name, family in sorted(gauges.items()):
            out["gauges"][name] = {
                _label_suffix(labels) or "": instrument.value
                for labels, instrument in sorted(family.items())}
        for name, family in sorted(histograms.items()):
            out["histograms"][name] = {
                _label_suffix(labels) or "": instrument.summary()
                for labels, instrument in sorted(family.items())}
        for name, kind, _help, rows in self._collected():
            section = {"counter": "counters", "gauge": "gauges"}.get(kind)
            if section is None:
                continue
            out[section].setdefault(name, {}).update({
                _label_suffix(_label_set(labels)) or "": value
                for labels, value in rows})
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            counters = {name: dict(family)
                        for name, family in self._counters.items()}
            gauges = {name: dict(family)
                      for name, family in self._gauges.items()}
            histograms = {name: dict(family)
                          for name, family in self._histograms.items()}
            help_text = dict(self._help)

        def _header(name: str, kind: str) -> None:
            text = help_text.get(name)
            if text:
                lines.append(f"# HELP {name} {text}")
            lines.append(f"# TYPE {name} {kind}")

        for name, family in sorted(counters.items()):
            _header(name, "counter")
            for labels, instrument in sorted(family.items()):
                lines.append(
                    f"{name}{_label_suffix(labels)} {instrument.value:g}")
        for name, family in sorted(gauges.items()):
            _header(name, "gauge")
            for labels, instrument in sorted(family.items()):
                lines.append(
                    f"{name}{_label_suffix(labels)} {instrument.value:g}")
        for name, family in sorted(histograms.items()):
            _header(name, "histogram")
            for labels, instrument in sorted(family.items()):
                cumulative = 0
                for bound, count in instrument.buckets():
                    cumulative += count
                    le = "+Inf" if bound == float("inf") else f"{bound:g}"
                    bucket_labels = labels + (("le", le),)
                    lines.append(f"{name}_bucket"
                                 f"{_label_suffix(bucket_labels)} "
                                 f"{cumulative}")
                lines.append(f"{name}_sum{_label_suffix(labels)} "
                             f"{instrument.sum:g}")
                lines.append(f"{name}_count{_label_suffix(labels)} "
                             f"{instrument.count}")
        for name, kind, text, rows in self._collected():
            if text:
                lines.append(f"# HELP {name} {text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in rows:
                lines.append(
                    f"{name}{_label_suffix(_label_set(labels))} {value:g}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the process-global registry (build-path instrumentation)
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry the build/selection paths record into.

    Long-lived servers own their *own* registry (per-server counters must
    not bleed across instances); module-level code — samplers, the
    streaming writer, the selection engine — records here.
    """
    return _GLOBAL


def set_global_metrics_enabled(flag: bool) -> None:
    """Toggle the process-global registry (``repro serve --no-metrics``
    and the overhead benchmark's control arm)."""
    _GLOBAL.enable(flag)


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_global_metrics_enabled",
]
