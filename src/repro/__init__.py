"""repro — Competitive social welfare maximization under the UIC model.

A from-scratch Python reproduction of *"Maximizing Social Welfare in a
Competitive Diffusion Model"* (Banerjee, Chen & Lakshmanan, PVLDB 2020).

The public API re-exported here covers the typical workflow:

>>> from repro import load_network, two_item_config, seqgrd, estimate_welfare
>>> graph = load_network("nethept", scale=0.05, rng=7)
>>> model = two_item_config("C1")
>>> result = seqgrd(graph, model, budgets={"i": 10, "j": 10}, rng=7)
>>> welfare = estimate_welfare(graph, model, result.combined_allocation(),
...                            n_samples=200, rng=7)

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.allocation import Allocation, validate_budgets
from repro.core import (
    AllocationResult,
    best_of,
    maxgrd,
    prima_plus,
    seqgrd,
    seqgrd_nm,
    supgrd,
)
from repro.baselines import (
    balance_c,
    degree_allocation,
    greedy_wm,
    random_allocation,
    round_robin,
    snake,
    tcim,
)
from repro.diffusion import (
    estimate_adoption_counts,
    estimate_marginal_welfare,
    estimate_spread,
    estimate_welfare,
    simulate_ic,
    simulate_uic,
)
from repro.engine import (
    ENGINE_PYTHON,
    ENGINE_VECTORIZED,
    BatchDiffusionResult,
    resolve_engine,
    simulate_ic_batch,
    simulate_uic_batch,
)
from repro.graphs import DirectedGraph, load_network, weighted_cascade
from repro.index import (
    AllocationService,
    FrozenRRIndex,
    build_index,
    index_fingerprint,
)
from repro.rrsets import IMMOptions, imm, marginal_imm
from repro.utility import (
    GaussianNoise,
    ItemCatalog,
    TruncatedGaussianNoise,
    UniformNoise,
    UtilityModel,
    ZeroNoise,
    blocking_config,
    hardness_config,
    lastfm_config,
    multi_item_config,
    single_item_config,
    theorem1_config,
    two_item_config,
)
from repro.exceptions import (
    AlgorithmError,
    AllocationError,
    GraphError,
    IndexStoreError,
    ReproError,
    SpecError,
    UtilityModelError,
)
from repro.api import (
    EngineConfig,
    RunRecord,
    RunSpec,
    WorkloadSpec,
    run as run_spec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # allocations and results
    "Allocation",
    "validate_budgets",
    "AllocationResult",
    # core algorithms
    "seqgrd",
    "seqgrd_nm",
    "maxgrd",
    "supgrd",
    "best_of",
    "prima_plus",
    # baselines
    "greedy_wm",
    "tcim",
    "balance_c",
    "round_robin",
    "snake",
    "degree_allocation",
    "random_allocation",
    # diffusion / estimation
    "simulate_uic",
    "simulate_ic",
    # vectorized engine
    "ENGINE_PYTHON",
    "ENGINE_VECTORIZED",
    "resolve_engine",
    "simulate_uic_batch",
    "simulate_ic_batch",
    "BatchDiffusionResult",
    "estimate_welfare",
    "estimate_marginal_welfare",
    "estimate_spread",
    "estimate_adoption_counts",
    # graphs
    "DirectedGraph",
    "load_network",
    "weighted_cascade",
    # RR sets
    "imm",
    "marginal_imm",
    "IMMOptions",
    # persistent index store + serving
    "FrozenRRIndex",
    "AllocationService",
    "build_index",
    "index_fingerprint",
    # typed run specs (public API layer)
    "WorkloadSpec",
    "EngineConfig",
    "RunSpec",
    "RunRecord",
    "run_spec",
    # utility models
    "ItemCatalog",
    "UtilityModel",
    "ZeroNoise",
    "GaussianNoise",
    "UniformNoise",
    "TruncatedGaussianNoise",
    "two_item_config",
    "blocking_config",
    "multi_item_config",
    "lastfm_config",
    "hardness_config",
    "theorem1_config",
    "single_item_config",
    # exceptions
    "ReproError",
    "GraphError",
    "UtilityModelError",
    "AllocationError",
    "AlgorithmError",
    "IndexStoreError",
    "SpecError",
]
