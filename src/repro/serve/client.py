"""Resilient JSON-lines client for the allocation server.

:class:`ResilientClient` is the client half of the overload contract the
server publishes: the server answers shed/lifecycle conditions with
*typed retryable envelopes* (``overloaded``, ``deadline-exceeded``,
``shutting-down`` — :data:`repro.api.protocol.RETRYABLE_ERROR_CODES`)
instead of dropping frames, and a well-behaved client turns those into
**capped exponential backoff with full jitter** instead of a retry storm:

* each retryable failure waits ``uniform(0, min(cap, base * 2**attempt))``
  (the "full jitter" scheme — decorrelates a thundering herd of clients
  that were all shed at the same instant);
* an ``overloaded`` envelope's ``retry_after_ms`` hint is honored as the
  floor of that wait — the server knows its backlog better than the
  client's exponential guess;
* connection failures (refused, reset, truncated frame, mid-frame EOF —
  exactly what the ``disconnect`` fault site manufactures) reconnect and
  retry under the same budget;
* non-retryable error envelopes (``invalid-spec``, ``malformed-request``,
  ...) are returned immediately — retrying a request the server has
  deterministically rejected is wasted load.

The retry RNG is seeded per client, so soak tests replay identical
backoff schedules.

Example::

    async with ResilientClient(tcp=("127.0.0.1", 7411), seed=7) as client:
        response = await client.request(
            {"v": 1, "spec": {...}, "deadline_ms": 500})
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.api.protocol import RETRYABLE_ERROR_CODES
from repro.exceptions import ReproError

#: connection-level failures that trigger a reconnect + retry
_CONN_ERRORS = (ConnectionError, BrokenPipeError, EOFError, OSError,
                asyncio.IncompleteReadError)


class RetriesExhausted(ReproError):
    """Raised when a request stays retryable past the attempt budget.

    ``last_response`` is the final retryable envelope (``None`` when the
    budget was spent on connection failures).
    """

    def __init__(self, message: str,
                 last_response: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.last_response = last_response


@dataclass
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    ``delay(attempt)`` draws ``uniform(0, min(max_delay_s,
    base_delay_s * 2**attempt))``; a server ``retry_after_ms`` hint
    becomes the floor of the draw.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.05
    max_delay_s: float = 5.0
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, attempt: int,
              retry_after_ms: Optional[float] = None) -> float:
        cap = min(self.max_delay_s,
                  self.base_delay_s * (2.0 ** max(0, attempt)))
        wait = self._rng.uniform(0.0, cap)
        if retry_after_ms is not None:
            wait = max(wait, float(retry_after_ms) / 1000.0)
        return min(wait, self.max_delay_s)


def retryable_code(response: Mapping[str, Any]) -> Optional[str]:
    """The retryable error code of ``response``, or ``None``."""
    if response.get("ok", True):
        return None
    error = response.get("error")
    if not isinstance(error, Mapping):
        return None
    code = error.get("code")
    return code if code in RETRYABLE_ERROR_CODES else None


class ResilientClient:
    """One JSON-lines connection with reconnect + typed-envelope retries.

    Parameters
    ----------
    tcp:
        ``(host, port)`` of the server's TCP endpoint.
    unix:
        Path of the server's unix socket (mutually exclusive with
        ``tcp``).
    policy:
        The :class:`RetryPolicy`; a default one is built from ``seed``.
    seed:
        Seeds the default policy's jitter RNG (ignored when ``policy``
        is given).
    request_timeout_s:
        Budget for one attempt's write + response read; a timeout counts
        as a connection failure (reconnect + retry).
    on_retryable:
        Optional callback invoked with each retryable envelope before
        the backoff sleep (soak harnesses use it to audit shed
        responses).
    """

    def __init__(self, tcp: Optional[Tuple[str, int]] = None,
                 unix: Optional[Union[str, Path]] = None,
                 policy: Optional[RetryPolicy] = None,
                 seed: Optional[int] = None,
                 request_timeout_s: float = 30.0,
                 on_retryable: Optional[Any] = None) -> None:
        if (tcp is None) == (unix is None):
            raise ValueError("pass exactly one of tcp=(host, port) or "
                             "unix=path")
        self._tcp = tcp
        self._unix = Path(unix) if unix is not None else None
        self.policy = policy if policy is not None \
            else RetryPolicy(seed=seed)
        self._request_timeout_s = float(request_timeout_s)
        self._on_retryable = on_retryable
        #: serializes attempts: the connection carries one request at a
        #: time, so concurrent request() callers can't cross-read frames
        self._io_lock = asyncio.Lock()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: observable retry accounting (soak tests assert on these)
        self.stats: Dict[str, int] = {
            "requests": 0, "attempts": 0, "retries": 0,
            "reconnects": 0, "overloaded": 0, "deadline_exceeded": 0,
            "shutting_down": 0, "conn_failures": 0,
        }

    # -- connection lifecycle ------------------------------------------
    async def _connect(self) -> None:
        if self._tcp is not None:
            self._reader, self._writer = await asyncio.open_connection(
                *self._tcp)
        else:
            self._reader, self._writer = await asyncio.open_unix_connection(
                str(self._unix))

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            await self._drop()
            await self._connect()

    async def _drop(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except _CONN_ERRORS:
                pass

    async def close(self) -> None:
        await self._drop()

    async def __aenter__(self) -> "ResilientClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- the request path ----------------------------------------------
    async def _attempt(self, payload: bytes) -> Dict[str, Any]:
        """One write + one response line on the live connection."""
        async with self._io_lock:
            return await self._attempt_locked(payload)

    async def _attempt_locked(self, payload: bytes) -> Dict[str, Any]:
        await self._ensure_connected()
        assert self._reader is not None and self._writer is not None
        self._writer.write(payload)
        await self._writer.drain()
        line = await self._reader.readline()
        if not line or not line.endswith(b"\n"):
            # EOF or a truncated frame (the `disconnect` fault site)
            raise EOFError("connection closed mid-response")
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise EOFError(f"expected a JSON object response, got "
                           f"{type(response).__name__}")
        return response

    async def request(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """Send one request, retrying until a non-retryable answer.

        Returns the server's response dict (which may still be a
        *non-retryable* error envelope — the caller distinguishes via
        ``response["ok"]``).  Raises :class:`RetriesExhausted` when the
        attempt budget runs out on retryable conditions.
        """
        payload = (json.dumps(dict(request)) + "\n").encode("utf-8")
        self.stats["requests"] += 1
        last_retryable: Optional[Dict[str, Any]] = None
        for attempt in range(self.policy.max_attempts):
            self.stats["attempts"] += 1
            retry_after_ms: Optional[float] = None
            try:
                response = await asyncio.wait_for(
                    self._attempt(payload), self._request_timeout_s)
            except asyncio.TimeoutError:
                self.stats["conn_failures"] += 1
                self.stats["reconnects"] += 1
                await self._drop()
            except json.JSONDecodeError:
                self.stats["conn_failures"] += 1
                self.stats["reconnects"] += 1
                await self._drop()
            except _CONN_ERRORS:
                self.stats["conn_failures"] += 1
                self.stats["reconnects"] += 1
                await self._drop()
            else:
                code = retryable_code(response)
                if code is None:
                    return response
                last_retryable = response
                self.stats[code.replace("-", "_")] = \
                    self.stats.get(code.replace("-", "_"), 0) + 1
                if self._on_retryable is not None:
                    self._on_retryable(response)
                error = response.get("error")
                if isinstance(error, Mapping):
                    hint = error.get("retry_after_ms")
                    if isinstance(hint, (int, float)) \
                            and not isinstance(hint, bool):
                        retry_after_ms = float(hint)
                if code == "shutting-down":
                    # the peer is draining: this connection is dead weight
                    self.stats["reconnects"] += 1
                    await self._drop()
            self.stats["retries"] += 1
            await asyncio.sleep(self.policy.delay(attempt, retry_after_ms))
        raise RetriesExhausted(
            f"request still retryable after "
            f"{self.policy.max_attempts} attempts",
            last_response=last_retryable)


__all__ = [
    "ResilientClient",
    "RetriesExhausted",
    "RetryPolicy",
    "retryable_code",
]
