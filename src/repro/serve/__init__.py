"""Concurrent allocation serving: async multi-client JSON-lines service.

``repro serve`` grew from a blocking, single-client, single-index stdin
loop into a serving subsystem:

* :mod:`repro.serve.registry` — :class:`IndexRegistry`, hosting many
  :class:`~repro.index.frozen.FrozenRRIndex`\\ es keyed by their workload
  manifests, with manifest-checked lazy loading from an index directory,
  LRU eviction of loaded services, and hot reload (``SIGHUP`` / the
  ``reload`` op); :func:`load_service` is the single
  index-file → :class:`~repro.index.service.AllocationService` loader.
* :mod:`repro.serve.coalescer` — :class:`RequestCoalescer`, deduplicating
  in-flight identical-fingerprint specs and batching compatible queries
  through :meth:`AllocationService.query_batch`, so N concurrent clients
  asking about the same workload cost one selection run.
* :mod:`repro.serve.server` — :class:`AllocationServer`, the asyncio
  JSON-lines server (TCP and unix socket) speaking the versioned
  :mod:`repro.api.protocol` plus the legacy ``{"op": ...}`` dialect, with
  typed error envelopes for malformed/oversized frames, ``server``
  response metadata, a ``stats`` op, admission control (bounded queue +
  per-connection rate limits, shed with ``overloaded`` envelopes),
  per-request deadlines, derived health (``ok``/``degraded``/
  ``draining``) and graceful drain on shutdown (stragglers answered
  ``shutting-down``); :func:`run_stdio` is the synchronous stdin loop
  over the same core.
* :mod:`repro.serve.client` — :class:`ResilientClient`, the asyncio
  JSON-lines client with capped exponential backoff + full jitter that
  honors ``retry_after_ms`` hints and retries the typed retryable
  envelopes and connection drops.

Serving stays **bit-identical** to ``repro run``: the registry only
routes a spec to an index whose manifest passes
:func:`repro.api.protocol.index_mismatch`, and all selection work runs
with the same RNG discipline as the direct executor.
"""

from repro.serve.client import (
    ResilientClient,
    RetriesExhausted,
    RetryPolicy,
)
from repro.serve.coalescer import RequestCoalescer
from repro.serve.registry import (
    IndexRegistry,
    LoadedService,
    RegistryEntry,
    load_service,
)
from repro.serve.server import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_MAX_LINE_BYTES,
    DEFAULT_MAX_QUEUE_DEPTH,
    HEALTH_STATES,
    AllocationServer,
    run_stdio,
)

__all__ = [
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_MAX_LINE_BYTES",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "HEALTH_STATES",
    "AllocationServer",
    "IndexRegistry",
    "LoadedService",
    "RegistryEntry",
    "RequestCoalescer",
    "ResilientClient",
    "RetriesExhausted",
    "RetryPolicy",
    "load_service",
    "run_stdio",
]
