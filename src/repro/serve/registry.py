"""Multi-index hosting: lazy loading, LRU eviction, hot reload.

A serving process rarely answers one workload: the registry hosts many
:class:`~repro.index.frozen.FrozenRRIndex`\\ es — discovered from explicit
paths and/or a directory of ``*.manifest.json`` files — and routes each
versioned request to the index whose manifest is compatible with the
request's spec (the same field-by-field check
:func:`repro.api.protocol.index_mismatch` that guarantees served
allocations stay bit-identical to direct runs).

Memory discipline:

* **manifests are cheap, arrays are not** — :meth:`IndexRegistry.scan`
  reads only manifests (:meth:`FrozenRRIndex.peek_manifest`); the ``.npz``
  arrays and the rebuilt graph/model are loaded lazily on the first
  compatible request;
* **LRU over loaded services** — at most ``capacity`` indexes are resident
  at once; the least-recently-used loaded service is dropped (its manifest
  entry stays, so it can be reloaded on demand) and the eviction order is
  recorded for :meth:`IndexRegistry.stats`;
* **hot reload** — :meth:`IndexRegistry.reload` re-scans: new manifests
  appear, deleted ones disappear, and entries whose manifest changed on
  disk drop their loaded service so the next request loads the new build.
  ``repro serve`` wires this to ``SIGHUP`` and the ``{"op": "reload"}``
  protocol op.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import faults
from repro.allocation import Allocation
from repro.api.specs import RunSpec, WorkloadSpec
from repro.exceptions import IndexStoreError
from repro.index.frozen import FrozenRRIndex, index_paths
from repro.index.service import AllocationService
from repro.obs.logging import get_logger, log_event
from repro.utility.configs import CONFIGURATIONS, configuration_model

_LOG = get_logger("repro.serve.registry")


def cache_hit_rate(cache: Mapping[str, Any]) -> float:
    """Hit fraction of a ``{"hits": ..., "misses": ...}`` stats dict."""
    hits = int(cache.get("hits", 0))
    misses = int(cache.get("misses", 0))
    total = hits + misses
    return round(hits / total, 4) if total else 0.0


@dataclass
class LoadedService:
    """One resident index: the service plus its rebuilt live instance."""

    service: AllocationService
    graph: Any
    model: Any
    fixed: Allocation


def load_service(index_path: Union[str, Path], *, verify: bool = True,
                 cache_size: int = 128,
                 selection_strategy: Optional[str] = None,
                 mmap: bool = True) -> LoadedService:
    """Load an index + rebuild its instance into an :class:`AllocationService`.

    The graph and utility model are reconstructed from the manifest and the
    index fingerprint is re-verified against them (unless ``verify`` is
    false), so a stale index — the network file or configuration changed
    since the build — is rejected instead of silently served.

    Loading is mmap-first (``mmap=True``): v2 indexes are served straight
    off the page cache, so a loaded service pins almost no array memory
    until queries fault pages in; v1 (compressed) indexes silently fall
    back to a full in-RAM load.  Served allocations are bit-identical
    either way.
    """
    from repro.api.runner import load_graph
    from repro.index.builder import expected_index_fingerprint

    index = FrozenRRIndex.load(index_path, mmap=mmap)
    meta = index.meta
    network = meta.get("network")
    configuration = meta.get("configuration")
    if network is None or configuration not in CONFIGURATIONS:
        raise IndexStoreError(
            f"the index manifest does not name a network/configuration "
            f"this CLI can rebuild (network={network!r}, "
            f"configuration={configuration!r}); query it in-process via "
            f"repro.index.AllocationService instead")
    graph = load_graph(
        WorkloadSpec(network=str(network), scale=meta.get("scale")),
        seed=int(meta.get("graph_seed", meta.get("seed", 0))))
    if meta.get("dynamic"):
        # a repaired index reflects the workload graph *plus* its
        # manifest's recorded delta history — replay it so fingerprint
        # verification and serving see the drifted graph
        from repro.dynamic.repair import replay_deltas

        graph = replay_deltas(graph, meta)
    model = configuration_model(str(configuration))
    if verify:
        expected = expected_index_fingerprint(graph, model, meta)
        if expected != index.fingerprint:
            raise IndexStoreError(
                f"stale index {index_path}: the rebuilt graph/configuration "
                f"fingerprints to {expected[:12]}… but the index was built "
                f"for {str(index.fingerprint)[:12]}…; rebuild it with "
                f"`repro index build`")
    fixed = Allocation(
        {item: [int(v) for v in nodes] for item, nodes
         in (meta.get("fingerprint_extra", {}).get("fixed") or {}).items()})
    service = AllocationService(index, graph=graph, model=model,
                                fixed_allocation=fixed,
                                cache_size=cache_size,
                                selection_strategy=selection_strategy)
    return LoadedService(service=service, graph=graph, model=model,
                         fixed=fixed)


@dataclass
class RegistryEntry:
    """One discovered index: manifest metadata plus load state."""

    key: str
    stem: Path
    meta: Dict[str, Any]
    mtime: float
    num_sets: int = 0
    num_nodes: int = 0
    loads: int = 0
    requests: int = 0
    loaded: Optional[LoadedService] = field(default=None, repr=False)


class IndexRegistry:
    """Host many frozen RR-set indexes behind one serving process.

    Parameters
    ----------
    paths:
        Explicit index stems (or their ``.npz``/``.manifest.json`` files).
    directory:
        A directory scanned (non-recursively) for ``*.manifest.json``
        files; rescanned on :meth:`reload`.
    capacity:
        Maximum number of *loaded* indexes resident at once (LRU-evicted
        beyond that; manifests always stay registered).
    cache_size, selection_strategy, verify, mmap:
        Forwarded to :func:`load_service` for every lazy load (loads are
        mmap-first by default).
    memory_budget:
        Optional cap, in bytes, on the summed *resident* index memory
        (:meth:`FrozenRRIndex.resident_nbytes` — memory-mapped arrays
        count zero).  When exceeded, least-recently-used services are
        evicted beyond the entry-count LRU until the total fits (the
        most-recent service always stays loaded).
    staleness_bound:
        Repairable indexes whose manifest ``staleness`` block records a
        cumulative repaired fraction above this bound are flagged
        ``stale`` in :meth:`stats` — the operator signal that the drift
        has outgrown repair and the index should be rebuilt (which
        re-derives θ for the current graph).  ``None`` disables the
        flagging.
    """

    def __init__(self, paths: Sequence[Union[str, Path]] = (),
                 directory: Optional[Union[str, Path]] = None,
                 capacity: int = 4,
                 cache_size: int = 128,
                 selection_strategy: Optional[str] = None,
                 verify: bool = True,
                 mmap: bool = True,
                 memory_budget: Optional[int] = None,
                 staleness_bound: Optional[float] = 0.5) -> None:
        self._paths = [Path(p) for p in paths]
        self._directory = Path(directory) if directory is not None else None
        self._capacity = max(1, int(capacity))
        self._cache_size = int(cache_size)
        self._selection_strategy = selection_strategy
        self._verify = bool(verify)
        self._mmap = bool(mmap)
        self._memory_budget = (None if memory_budget is None
                               else max(0, int(memory_budget)))
        self._staleness_bound = (None if staleness_bound is None
                                 else float(staleness_bound))
        self._entries: Dict[str, RegistryEntry] = {}
        #: keys of loaded entries, least-recently-used first
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self._lock = threading.Lock()
        self._loads = 0
        self._evictions = 0
        self._eviction_log: List[str] = []
        self._reloads = 0
        self._skipped: List[str] = []
        self.scan()

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def _discover(self) -> Dict[str, Tuple[Path, Dict[str, Any], float]]:
        found: Dict[str, Tuple[Path, Dict[str, Any], float]] = {}
        skipped: List[str] = []
        candidates: List[Tuple[Path, bool]] = [(p, True) for p in self._paths]
        if self._directory is not None and self._directory.is_dir():
            candidates.extend(
                (p, False)
                for p in sorted(self._directory.glob("*.manifest.json")))
        for candidate, explicit in candidates:
            _npz_path, manifest_path = index_paths(candidate)
            stem = manifest_path.with_name(
                manifest_path.name[:-len(".manifest.json")])
            key = stem.name
            if key in found:
                continue
            try:
                manifest = FrozenRRIndex.peek_manifest(stem)
            except IndexStoreError:
                # a broken manifest dropped into the directory must not
                # kill a hot reload; explicitly named indexes fail fast
                if explicit:
                    raise
                skipped.append(key)
                log_event(_LOG, logging.WARNING, "manifest-skipped",
                          index=key, path=str(manifest_path))
                continue
            found[key] = (stem, manifest, manifest_path.stat().st_mtime)
        self._skipped = skipped
        return found

    def scan(self) -> Dict[str, List[str]]:
        """(Re)discover indexes; returns ``{added, removed, changed}`` keys.

        Entries whose manifest changed on disk (mtime or fingerprint) drop
        their loaded service so the next request loads the fresh build.
        """
        found = self._discover()
        with self._lock:
            added, removed, changed = [], [], []
            for key in list(self._entries):
                if key not in found:
                    removed.append(key)
                    self._lru.pop(key, None)
                    del self._entries[key]
            for key, (stem, manifest, mtime) in found.items():
                meta = dict(manifest.get("meta") or {})
                entry = self._entries.get(key)
                if entry is None:
                    self._entries[key] = RegistryEntry(
                        key=key, stem=stem, meta=meta, mtime=mtime,
                        num_sets=int(manifest.get("num_sets", 0)),
                        num_nodes=int(manifest.get("num_nodes", 0)))
                    added.append(key)
                elif (entry.mtime != mtime
                      or entry.meta.get("fingerprint")
                      != meta.get("fingerprint")):
                    entry.meta = meta
                    entry.mtime = mtime
                    entry.num_sets = int(manifest.get("num_sets", 0))
                    entry.num_nodes = int(manifest.get("num_nodes", 0))
                    entry.loaded = None
                    self._lru.pop(key, None)
                    changed.append(key)
            return {"added": added, "removed": removed, "changed": changed}

    def reload(self) -> Dict[str, Any]:
        """Hot reload: rescan the paths/directory (``SIGHUP`` / ``reload``
        op).  Returns a summary of what changed."""
        summary: Dict[str, Any] = dict(self.scan())
        with self._lock:
            self._reloads += 1
            summary["indexes"] = sorted(self._entries)
            summary["reloads"] = self._reloads
        log_event(_LOG, logging.INFO, "registry-reloaded",
                  added=summary["added"], removed=summary["removed"],
                  changed=summary["changed"], reloads=summary["reloads"])
        return summary

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def keys(self) -> Tuple[str, ...]:
        """Registered index keys, sorted."""
        with self._lock:
            return tuple(sorted(self._entries))

    @property
    def default_key(self) -> Optional[str]:
        """The single registered key, when exactly one index is hosted
        (the target of legacy un-versioned queries)."""
        with self._lock:
            if len(self._entries) == 1:
                return next(iter(self._entries))
            return None

    def entry(self, key: str) -> RegistryEntry:
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            raise IndexStoreError(
                f"no index {key!r} in the registry; "
                f"hosted: {sorted(self._entries)}")
        return entry

    def get(self, key: str) -> LoadedService:
        """The loaded service for ``key``; lazily loads and LRU-evicts."""
        for _attempt in range(3):
            entry = self.entry(key)
            with self._lock:
                if entry.loaded is not None:
                    self._lru.move_to_end(key)
                    return entry.loaded
                expected = entry.meta.get("fingerprint")
            if faults.fires("registry-load"):
                raise IndexStoreError(
                    f"injected fault: registry load of {key!r} failed "
                    f"(repro.faults site 'registry-load')")
            # load outside the lock (slow: npz + graph rebuild); worst
            # case two threads both load and one result wins — loads are
            # idempotent for an unchanged manifest
            loaded = load_service(
                entry.stem, verify=self._verify,
                cache_size=self._cache_size,
                selection_strategy=self._selection_strategy,
                mmap=self._mmap)
            result: Optional[LoadedService] = None
            installed = False
            evicted: List[str] = []
            with self._lock:
                current = self._entries.get(key)
                if current is None:  # removed by a concurrent reload
                    return loaded
                fresh = current.meta.get("fingerprint")
                if fresh == expected \
                        and loaded.service.index.meta.get("fingerprint") \
                        == fresh:
                    if current.loaded is None:
                        current.loaded = loaded
                        current.loads += 1
                        self._loads += 1
                        installed = True
                    self._lru[key] = None
                    self._lru.move_to_end(key)
                    while len(self._lru) > self._capacity or (
                            self._memory_budget is not None
                            and len(self._lru) > 1
                            and self._resident_bytes_locked()
                            > self._memory_budget):
                        victim, _ = self._lru.popitem(last=False)
                        victim_entry = self._entries.get(victim)
                        if victim_entry is not None:
                            victim_entry.loaded = None
                        self._evictions += 1
                        self._eviction_log.append(victim)
                        evicted.append(victim)
                    result = current.loaded
            # log outside the lock: handlers may block on I/O
            if installed:
                log_event(_LOG, logging.INFO, "index-loaded", index=key,
                          num_rr_sets=entry.num_sets,
                          num_nodes=entry.num_nodes)
            for victim in evicted:
                log_event(_LOG, logging.INFO, "index-evicted",
                          index=victim, evicted_by=key)
            if result is not None:
                return result
            # the manifest changed while we were loading: what we loaded
            # is a stale build — rescan so the entry reflects the disk
            # state, then retry rather than installing old arrays under
            # new metadata
            self.scan()
        raise IndexStoreError(
            f"index {key!r} kept changing on disk while loading; "
            f"retry once the rebuild settles")

    def apply_delta(self, key: str, delta: Any) -> Dict[str, Any]:
        """Repair a hosted index under a graph delta, without restart.

        The disk-backed counterpart of
        :meth:`repro.index.AllocationService.apply_delta` (the
        ``{"op": "apply-delta"}`` server op lands here): loads the index
        if needed, repairs it against the delta, atomically rewrites the
        on-disk pair, then rescans — the scan sees the changed manifest
        and drops the stale loaded service, so the next request serves
        the repaired build (exactly the ``SIGHUP``/``reload``
        semantics).  A zero-delta leaves the files untouched
        (bit-identical by contract) and skips the rescan.
        """
        from repro.dynamic.delta import GraphDelta
        from repro.dynamic.repair import RRRepairEngine, save_repaired

        if not isinstance(delta, GraphDelta):
            delta = GraphDelta.from_dict(delta)
        entry = self.entry(key)
        loaded = self.get(key)
        engine = RRRepairEngine(loaded.service.index, loaded.graph,
                                loaded.model)
        outcome = engine.repair(delta)
        summary: Dict[str, Any] = {"index": key,
                                   "repair": outcome.report.to_dict()}
        if not outcome.report.zero_delta:
            save_repaired(outcome.index, entry.stem)
            summary["scan"] = self.scan()
        log_event(_LOG, logging.INFO, "index-repaired", index=key,
                  epoch=outcome.report.epoch,
                  repaired_sets=outcome.report.repaired_sets,
                  repaired_fraction=outcome.report.repaired_fraction,
                  zero_delta=outcome.report.zero_delta)
        return summary

    def resolve_spec(self, spec: RunSpec) -> Tuple[str, LoadedService]:
        """Route a spec to a compatible index (loading it if needed).

        Raises
        ------
        IndexStoreError
            When no registered manifest is compatible; the message carries
            the per-index mismatch reasons.
        """
        from repro.api.protocol import index_mismatch

        with self._lock:
            candidates = sorted(self._entries.items())
        if not candidates:
            raise IndexStoreError("the registry hosts no indexes; "
                                  "build one with `repro index build`")
        mismatches: List[str] = []
        for key, entry in candidates:
            reason = index_mismatch(spec, entry.meta)
            if reason is None:
                entry.requests += 1
                return key, self.get(key)
            mismatches.append(f"[{key}] {reason}")
        raise IndexStoreError("; ".join(mismatches))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _resident_bytes_locked(self) -> int:
        """Summed resident bytes of all loaded services (lock held)."""
        return sum(entry.loaded.service.index.resident_nbytes()
                   for entry in self._entries.values()
                   if entry.loaded is not None)

    def stats(self) -> Dict[str, Any]:
        """Registry statistics for the ``stats`` op.

        Per-index memory figures come from array ``nbytes`` (int32 and
        int64 stores report their true sizes); ``resident_bytes`` counts
        only non-memory-mapped arrays — a mmap-served index reports (near)
        zero because its pages live in the reclaimable page cache.
        """
        with self._lock:
            per_index = {}
            for key, entry in sorted(self._entries.items()):
                row: Dict[str, Any] = {
                    "loaded": entry.loaded is not None,
                    "loads": entry.loads,
                    "requests": entry.requests,
                    "num_rr_sets": entry.num_sets,
                    "num_nodes": entry.num_nodes,
                    "sampler": entry.meta.get("sampler"),
                    "network": entry.meta.get("network"),
                }
                staleness = (entry.meta.get("dynamic") or {}).get(
                    "staleness")
                if isinstance(staleness, Mapping):
                    row["staleness"] = dict(staleness)
                    row["stale"] = bool(
                        self._staleness_bound is not None
                        and float(staleness.get(
                            "cumulative_repaired_fraction", 0.0))
                        > self._staleness_bound)
                if entry.loaded is not None:
                    service = entry.loaded.service
                    cache = dict(service.cache_stats)
                    cache["hit_rate"] = cache_hit_rate(cache)
                    spec_cache = cache.get("spec_cache")
                    if isinstance(spec_cache, Mapping):
                        spec_cache = dict(spec_cache)
                        spec_cache["hit_rate"] = cache_hit_rate(spec_cache)
                        cache["spec_cache"] = spec_cache
                    row["cache"] = cache
                    row.update(service.memory_stats)
                per_index[key] = row
            return {
                "indexes": per_index,
                "stale": sorted(key for key, row in per_index.items()
                                if row.get("stale")),
                "staleness_bound": self._staleness_bound,
                "entries": len(self._entries),
                "loaded": [k for k in self._lru],
                "capacity": self._capacity,
                "loads": self._loads,
                "evictions": self._evictions,
                "eviction_order": list(self._eviction_log),
                "reloads": self._reloads,
                "skipped": list(self._skipped),
                "resident_bytes": self._resident_bytes_locked(),
                "memory_budget": self._memory_budget,
                "mmap": self._mmap,
            }


__all__ = ["LoadedService", "RegistryEntry", "IndexRegistry",
           "cache_hit_rate", "load_service"]
