"""Concurrent JSON-lines allocation serving (TCP, unix socket, stdio).

:class:`AllocationServer` is the serving layer on top of an
:class:`~repro.serve.registry.IndexRegistry`:

* one JSON request per line, one JSON response per line — the framing of
  the original ``repro serve`` stdin loop, now multi-client;
* the versioned :mod:`repro.api.protocol` dialect is routed to the
  compatible index, deduplicated and batched through the
  :class:`~repro.serve.coalescer.RequestCoalescer`, and executed on a
  single worker thread, so responses stay **bit-identical** to a direct
  ``repro run`` of the same spec;
* the legacy ``{"op": ...}`` dialect is preserved (``ping``, ``query``,
  ``stats``) and extended with ``reload`` (hot reload, also on
  ``SIGHUP``);
* malformed input — bad JSON, invalid UTF-8, oversized (> 1 MiB by
  default) or truncated frames — is answered with a typed error envelope
  and never crashes or hangs the loop;
* successful responses carry a ``"server"`` object::

      {"...": "...", "server": {"index": "nethept-c1", "queue_depth": 3,
                                "coalesced": true, "batch_size": 8,
                                "in_flight": 12}}

* :meth:`AllocationServer.shutdown` drains: accepting stops, in-flight
  requests finish and flush their responses, then connections close.

The same dispatch core backs the synchronous stdio loop
(:func:`run_stdio`), so ``repro serve --stdio`` and the concurrent
endpoints answer identically.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import (
    Any,
    AsyncIterator,
    Dict,
    Mapping,
    Optional,
    TextIO,
    Tuple,
    Union,
)

from repro.api.protocol import (
    PROTOCOL_VERSION,
    SERVABLE_ALGORITHMS,
    build_response,
    error_response,
    execute_prepared,
    prepare_request,
)
from repro.api.specs import RunSpec
from repro.exceptions import ReproError, SpecError
from repro.serve.coalescer import RequestCoalescer
from repro.serve.registry import IndexRegistry, LoadedService

#: default cap on one JSON-lines frame (1 MiB)
DEFAULT_MAX_LINE_BYTES = 1_048_576

#: chunk size for the connection read loop
_READ_CHUNK = 65536


class AllocationServer:
    """Serve the v1 + legacy dialects for many concurrent clients.

    Parameters
    ----------
    registry:
        The :class:`IndexRegistry` hosting the servable indexes.
    max_line_bytes:
        Frames longer than this are answered with an
        ``oversized-request`` envelope (the oversized input is discarded
        up to its newline, so the connection resynchronizes).
    coalesce:
        Disable to execute every request individually (the benchmark's
        "coalesced vs not" axis); dedup/batching is on by default.
    max_batch:
        Forwarded to :class:`RequestCoalescer`.
    """

    def __init__(self, registry: IndexRegistry, *,
                 max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
                 coalesce: bool = True,
                 max_batch: int = 64) -> None:
        self._registry = registry
        self._max_line_bytes = int(max_line_bytes)
        self._coalesce = bool(coalesce)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve")
        self._coalescer = RequestCoalescer(self._executor,
                                           max_batch=max_batch)
        self._servers: list = []
        self._unix_paths: list = []
        self._conn_tasks: set = set()
        self._draining = False
        self._busy = 0
        self._idle: Optional[asyncio.Event] = None
        self._started = time.time()
        self._requests = 0
        self._errors = 0
        self._connections = 0

    # ------------------------------------------------------------------
    @property
    def registry(self) -> IndexRegistry:
        return self._registry

    @property
    def coalescer(self) -> RequestCoalescer:
        return self._coalescer

    @property
    def max_line_bytes(self) -> int:
        return self._max_line_bytes

    # ------------------------------------------------------------------
    # framing / parsing (shared by stdio and the async endpoints)
    # ------------------------------------------------------------------
    def parse_line(self, raw: Union[str, bytes]
                   ) -> Tuple[Optional[Dict[str, Any]],
                              Optional[Dict[str, Any]]]:
        """Parse one frame into ``(request, error_envelope)``.

        At most one of the two is non-``None``; both are ``None`` for
        blank lines (skip).  Never raises.
        """
        if isinstance(raw, bytes):
            if len(raw) > self._max_line_bytes:
                return None, self._oversized_envelope(len(raw))
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                return None, error_response(
                    "malformed-request",
                    f"request line is not valid UTF-8: {error}")
        else:
            text = raw
            # cheap pre-check first: a str frame can only exceed the byte
            # cap if it has at least max/4 characters (UTF-8 is <= 4B/char)
            if len(text) * 4 > self._max_line_bytes:
                encoded_size = len(text.encode("utf-8", errors="replace"))
                if encoded_size > self._max_line_bytes:
                    return None, self._oversized_envelope(encoded_size)
        text = text.strip()
        if not text:
            return None, None
        try:
            request = json.loads(text)
        except json.JSONDecodeError as error:
            return None, error_response("malformed-request",
                                        f"bad JSON: {error}")
        if not isinstance(request, dict):
            return None, error_response(
                "malformed-request",
                f"requests must be JSON objects, got "
                f"{type(request).__name__}")
        return request, None

    def _oversized_envelope(self, size: Optional[int] = None
                            ) -> Dict[str, Any]:
        detail = f"request line is {size} bytes; " if size else \
            "request line "
        return error_response(
            "oversized-request",
            f"{detail}the server caps frames at "
            f"{self._max_line_bytes} bytes")

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------
    def _resolve_versioned(self, request: Mapping[str, Any]
                           ) -> Union[Tuple[str, LoadedService, RunSpec],
                                      Dict[str, Any]]:
        """Route a versioned request to its index, or an error envelope.

        Returns ``(key, loaded, spec)`` so downstream stages can skip
        re-parsing the spec."""
        request_id = request.get("id")
        version = request.get("v")
        if version != PROTOCOL_VERSION:
            return error_response(
                "unsupported-version",
                f"protocol version {version!r} is not supported; "
                f"supported versions: [{PROTOCOL_VERSION}]", request_id)
        spec_dict = request.get("spec")
        if not isinstance(spec_dict, Mapping):
            return error_response(
                "malformed-request",
                "a v1 request needs a 'spec' object: "
                '{"v": 1, "spec": {"algorithm": ..., "workload": ..., '
                '"engine": ...}}', request_id)
        try:
            spec = RunSpec.from_dict(spec_dict)
        except SpecError as error:
            return error_response("invalid-spec", str(error), request_id)
        if spec.algorithm not in SERVABLE_ALGORITHMS:
            return error_response(
                "unsupported-algorithm",
                f"{spec.algorithm} cannot be served from a prebuilt index; "
                f"servable algorithms: {list(SERVABLE_ALGORITHMS)}",
                request_id)
        try:
            key, loaded = self._registry.resolve_spec(spec)
        except ReproError as error:
            return error_response(
                "incompatible-spec",
                f"no hosted index is compatible with the spec: {error}",
                request_id)
        return key, loaded, spec

    def _resolve_and_prepare(self, request: Mapping[str, Any]):
        """Resolve + validate one versioned request (worker thread).

        Returns ``(key, loaded, prepared)`` or an error envelope.  Lives
        on the worker thread so lazy index loads never block the event
        loop.
        """
        resolved = self._resolve_versioned(request)
        if isinstance(resolved, dict):
            return resolved
        key, loaded, spec = resolved
        prepared = prepare_request(loaded.service, request, spec=spec)
        if isinstance(prepared, dict):
            return prepared
        return key, loaded, prepared

    def _legacy_target(self, request: Mapping[str, Any]
                       ) -> Union[Tuple[str, LoadedService],
                                  Dict[str, Any]]:
        """The service a legacy (un-versioned) op runs against.

        A multi-index registry needs the request to name its index
        (``{"op": "query", "index": "nethept-c1", ...}``); with a single
        hosted index the request routes there implicitly, preserving the
        original one-index dialect.
        """
        response: Dict[str, Any] = {}
        if "id" in request:
            response["id"] = request["id"]
        named = request.get("index")
        if named is not None:
            try:
                return str(named), self._registry.get(str(named))
            except ReproError as error:
                response.update(ok=False, error=str(error))
                return response
        key = self._registry.default_key
        if key is None:
            response.update(
                ok=False,
                error=f"the registry hosts "
                      f"{len(self._registry.keys())} indexes; name one "
                      f'with {{"index": ...}} '
                      f"(hosted: {list(self._registry.keys())})")
            return response
        try:
            return key, self._registry.get(key)
        except ReproError as error:
            response.update(ok=False, error=str(error))
            return response

    # ------------------------------------------------------------------
    # stats / reload ops
    # ------------------------------------------------------------------
    def stats_payload(self) -> Dict[str, Any]:
        """Server + registry + coalescer statistics (the ``stats`` op)."""
        return {
            "server": {
                "uptime_s": round(time.time() - self._started, 3),
                "requests": self._requests,
                "errors": self._errors,
                "connections": self._connections,
                "active_connections": len(self._conn_tasks),
                "in_flight": self._busy,
                "queue_depth": self._coalescer.queue_depth,
                "max_line_bytes": self._max_line_bytes,
                "coalescing": self._coalesce,
                "draining": self._draining,
            },
            "coalescer": self._coalescer.counters(),
            "registry": self._registry.stats(),
        }

    def _handle_stats_op(self, request: Mapping[str, Any]
                         ) -> Dict[str, Any]:
        response: Dict[str, Any] = {}
        if "id" in request:
            response["id"] = request["id"]
        response.update(ok=True, **self.stats_payload())
        # one-index compatibility: surface the flat single-service shape
        # the original `stats` op answered with (without forcing a load)
        key = self._registry.default_key
        if key is not None:
            loaded = self._registry.entry(key).loaded
            if loaded is not None:
                response.setdefault("stats", loaded.service.cache_stats)
                response.setdefault("num_rr_sets",
                                    loaded.service.index.num_sets)
                response.setdefault("num_nodes",
                                    loaded.service.index.num_nodes)
        return response

    def _handle_reload_op(self, request: Mapping[str, Any]
                          ) -> Dict[str, Any]:
        response: Dict[str, Any] = {}
        if "id" in request:
            response["id"] = request["id"]
        try:
            response.update(ok=True, reload=self._registry.reload())
        except ReproError as error:
            response.update(ok=False, error=str(error))
        return response

    def _server_meta(self, key: Optional[str] = None,
                     coalesced: bool = False, batch_size: int = 1,
                     queue_depth: int = 0) -> Dict[str, Any]:
        return {"index": key, "queue_depth": queue_depth,
                "coalesced": coalesced, "batch_size": batch_size,
                "in_flight": self._busy}

    # ------------------------------------------------------------------
    # synchronous dispatch (stdio loop)
    # ------------------------------------------------------------------
    def dispatch(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """Answer one parsed request synchronously (no coalescing)."""
        self._requests += 1
        if "v" in request:
            started = time.perf_counter()
            resolved = self._resolve_versioned(request)
            if isinstance(resolved, dict):
                self._errors += 1
                return resolved
            key, loaded, spec = resolved
            prepared = prepare_request(loaded.service, request, spec=spec)
            if isinstance(prepared, dict):
                self._errors += 1
                return prepared
            try:
                payload = execute_prepared(loaded.service, prepared)
            except ReproError as error:
                self._errors += 1
                return error_response("invalid-spec", str(error),
                                      prepared.request_id)
            response = build_response(prepared, payload, started)
            response["server"] = self._server_meta(key)
            return response
        op = str(request.get("op", "query")).strip().lower()
        if op == "ping":
            response = {}
            if "id" in request:
                response["id"] = request["id"]
            response.update(ok=True, pong=True, latency_ms=0.0)
            return response
        if op == "stats":
            return self._handle_stats_op(request)
        if op == "reload":
            return self._handle_reload_op(request)
        target = self._legacy_target(request)
        if isinstance(target, dict):
            self._errors += 1
            return target
        key, loaded = target
        response = loaded.service.handle_request(request)
        if response.get("ok"):
            response["server"] = self._server_meta(key)
        else:
            self._errors += 1
        return response

    def dispatch_line(self, raw: Union[str, bytes]
                      ) -> Optional[Dict[str, Any]]:
        """Parse + dispatch one frame; ``None`` for blank lines."""
        request, envelope = self.parse_line(raw)
        if envelope is not None:
            self._requests += 1
            self._errors += 1
            return envelope
        if request is None:
            return None
        return self.dispatch(request)

    # ------------------------------------------------------------------
    # async dispatch (TCP / unix endpoints)
    # ------------------------------------------------------------------
    async def handle_async(self, request: Mapping[str, Any]
                           ) -> Dict[str, Any]:
        """Answer one parsed request with coalescing and batching."""
        loop = asyncio.get_running_loop()
        if "v" not in request:
            # legacy ops run whole on the worker thread (they may load an
            # index or run a query; either would block the loop)
            return await loop.run_in_executor(self._executor,
                                              self.dispatch, request)
        self._requests += 1
        started = time.perf_counter()
        outcome = await loop.run_in_executor(
            self._executor, self._resolve_and_prepare, request)
        if isinstance(outcome, dict):
            self._errors += 1
            return outcome
        key, loaded, prepared = outcome
        if not self._coalesce:
            try:
                payload = await loop.run_in_executor(
                    self._executor, execute_prepared, loaded.service,
                    prepared)
            except ReproError as error:
                self._errors += 1
                return error_response("invalid-spec", str(error),
                                      prepared.request_id)
            response = build_response(prepared, payload, started)
            response["server"] = self._server_meta(key)
            return response
        payload, coalesced, batch_size, depth = await self._coalescer.submit(
            key, loaded.service, prepared)
        if isinstance(payload, ReproError):
            self._errors += 1
            return error_response("invalid-spec", str(payload),
                                  prepared.request_id)
        response = build_response(prepared, payload, started)
        response["server"] = self._server_meta(
            key, coalesced=coalesced, batch_size=batch_size,
            queue_depth=depth)
        return response

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _frames(self, reader: asyncio.StreamReader
                      ) -> AsyncIterator[Tuple[bytes, bool]]:
        """Yield ``(frame, oversized)`` pairs from a byte stream.

        Frames are newline-delimited.  An oversized frame is discarded as
        it streams in (bounded memory) and reported once, when its
        terminating newline arrives; a truncated trailing frame (EOF
        without newline) is still yielded.
        """
        buffer = bytearray()
        discarding = False
        while True:
            chunk = await reader.read(_READ_CHUNK)
            if not chunk:
                if buffer and not discarding:
                    yield bytes(buffer), False
                return
            buffer.extend(chunk)
            while True:
                newline = buffer.find(b"\n")
                if newline == -1:
                    if not discarding \
                            and len(buffer) > self._max_line_bytes:
                        discarding = True
                    if discarding:
                        buffer.clear()
                    break
                frame = bytes(buffer[:newline])
                del buffer[:newline + 1]
                if discarding:
                    # this newline terminates the oversized frame
                    discarding = False
                    yield b"", True
                elif len(frame) > self._max_line_bytes:
                    yield b"", True
                else:
                    yield frame, False

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            async for frame, oversized in self._frames(reader):
                if self._draining:
                    break
                if oversized:
                    self._requests += 1
                    self._errors += 1
                    response: Optional[Dict[str, Any]] = \
                        self._oversized_envelope()
                    writer.write((json.dumps(response) + "\n")
                                 .encode("utf-8"))
                    await writer.drain()
                    continue
                request, envelope = self.parse_line(frame)
                if envelope is not None:
                    self._requests += 1
                    self._errors += 1
                    response = envelope
                elif request is None:
                    continue
                else:
                    # busy covers handling AND the response write, so a
                    # draining shutdown never drops a computed response
                    self._busy += 1
                    if self._idle is not None:
                        self._idle.clear()
                    try:
                        response = await self.handle_async(request)
                        writer.write((json.dumps(response, default=str)
                                      + "\n").encode("utf-8"))
                        await writer.drain()
                    finally:
                        self._busy -= 1
                        if self._busy == 0 and self._idle is not None:
                            self._idle.set()
                    continue
                writer.write((json.dumps(response, default=str)
                              + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # endpoints / lifecycle
    # ------------------------------------------------------------------
    def _ensure_idle_event(self) -> None:
        if self._idle is None:
            self._idle = asyncio.Event()
            self._idle.set()

    async def start_tcp(self, host: str, port: int) -> Tuple[str, int]:
        """Start the TCP endpoint; returns the bound ``(host, port)``."""
        self._ensure_idle_event()
        server = await asyncio.start_server(
            self._client_connected, host, port, limit=_READ_CHUNK)
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def start_unix(self, path: Union[str, Path]) -> Path:
        """Start the unix-socket endpoint; returns the socket path."""
        self._ensure_idle_event()
        path = Path(path)
        server = await asyncio.start_unix_server(
            self._client_connected, str(path), limit=_READ_CHUNK)
        self._servers.append(server)
        self._unix_paths.append(path)
        return path

    async def shutdown(self, drain: bool = True,
                       timeout: float = 10.0) -> None:
        """Stop accepting, optionally drain in-flight requests, close.

        With ``drain=True`` every request already being processed finishes
        and flushes its response before its connection closes; idle
        connections are then closed.  ``timeout`` bounds the drain.
        """
        self._draining = True
        for server in self._servers:
            server.close()
        if drain and self._busy and self._idle is not None:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            # one tick so drained responses reach their transports
            await asyncio.sleep(0)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - close race
                pass
        self._servers.clear()
        for path in self._unix_paths:
            try:
                path.unlink()
            except OSError:
                pass
        self._unix_paths.clear()
        self._executor.shutdown(wait=True)

    async def serve_forever(self, *, tcp: Optional[Tuple[str, int]] = None,
                            unix: Optional[Union[str, Path]] = None,
                            ready=None) -> None:
        """Run until SIGINT/SIGTERM; SIGHUP hot-reloads the registry.

        ``ready`` (optional callable) receives the bound endpoint
        descriptions once listening — the CLI prints them to stderr.
        """
        import signal

        endpoints = []
        if tcp is not None:
            host, port = await self.start_tcp(*tcp)
            endpoints.append(f"tcp://{host}:{port}")
        if unix is not None:
            path = await self.start_unix(unix)
            endpoints.append(f"unix://{path}")
        if ready is not None:
            ready(endpoints)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            loop.add_signal_handler(signal.SIGHUP,
                                    lambda: self._registry.reload())
        except (NotImplementedError, RuntimeError,
                AttributeError):  # pragma: no cover - non-unix
            pass
        await stop.wait()
        await self.shutdown(drain=True)


def run_stdio(server: AllocationServer,
              stdin: Optional[TextIO] = None,
              stdout: Optional[TextIO] = None) -> int:
    """The synchronous stdio loop: one request per line on stdin.

    Delegates every frame to the same dispatch core as the concurrent
    endpoints, so the stdio dialect (legacy and versioned) answers
    identically to TCP/unix serving.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        response = server.dispatch_line(line)
        if response is None:
            continue
        print(json.dumps(response, default=str), file=stdout, flush=True)
    return 0


__all__ = ["DEFAULT_MAX_LINE_BYTES", "AllocationServer", "run_stdio"]
