"""Concurrent JSON-lines allocation serving (TCP, unix socket, stdio).

:class:`AllocationServer` is the serving layer on top of an
:class:`~repro.serve.registry.IndexRegistry`:

* one JSON request per line, one JSON response per line — the framing of
  the original ``repro serve`` stdin loop, now multi-client;
* the versioned :mod:`repro.api.protocol` dialect is routed to the
  compatible index, deduplicated and batched through the
  :class:`~repro.serve.coalescer.RequestCoalescer`, and executed on a
  single worker thread, so responses stay **bit-identical** to a direct
  ``repro run`` of the same spec;
* the legacy ``{"op": ...}`` dialect is preserved (``ping``, ``query``,
  ``stats``) and extended with ``reload`` (hot reload, also on
  ``SIGHUP``);
* malformed input — bad JSON, invalid UTF-8, oversized (> 1 MiB by
  default) or truncated frames — is answered with a typed error envelope
  and never crashes or hangs the loop;
* **admission control** keeps overload survivable instead of letting the
  queue grow without bound: when the coalescer holds ``max_queue_depth``
  distinct in-flight specs, new work is *shed* with a typed
  ``overloaded`` envelope carrying the observed ``queue_depth`` and a
  ``retry_after_ms`` backoff hint; a per-connection token bucket
  (``rate_limit`` requests/s, ``rate_burst`` burst) sheds abusive
  clients the same way (``ping``/``stats``/``metrics``/``reload`` stay
  exempt so the ops surface works *during* overload);
* **deadlines**: a request may carry ``deadline_ms`` (milliseconds from
  frame receipt; clamped to ``max_deadline_ms``, defaulted from
  ``default_deadline_ms``), propagated through coalescer batching into
  :func:`~repro.api.protocol.execute_prepared_batch` — an expired
  request is answered ``deadline-exceeded`` *before* burning worker
  time;
* **health** is derived, not asserted: ``ok`` → ``degraded`` (queue near
  capacity or recent sheds) → ``draining``, surfaced by
  :meth:`AllocationServer.health` (the ``/healthz`` exporter answers 503
  for ``degraded``/``draining``), the ``stats`` op and the
  ``repro_health_state`` gauge;
* successful responses carry a ``"server"`` object::

      {"...": "...", "server": {"index": "nethept-c1", "queue_depth": 3,
                                "coalesced": true, "batch_size": 8,
                                "in_flight": 12}}

* :meth:`AllocationServer.shutdown` drains: accepting stops, in-flight
  requests finish and flush their responses, then connections close;
  connections still busy when ``drain_timeout`` expires are answered
  with a typed ``shutting-down`` envelope before the close (never
  silently abandoned), as are frames that arrive while draining.

The :mod:`repro.faults` sites ``stall-write`` and ``disconnect`` hook the
response-write path (chaos testing); disarmed they cost one global read.

The same dispatch core backs the synchronous stdio loop
(:func:`run_stdio`), so ``repro serve --stdio`` and the concurrent
endpoints answer identically.
"""

from __future__ import annotations

import asyncio
import json
import logging
import sys
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import (
    Any,
    AsyncIterator,
    Dict,
    List,
    Mapping,
    Optional,
    TextIO,
    Tuple,
    Union,
)

from repro import faults
from repro.api.protocol import (
    PROTOCOL_VERSION,
    SERVABLE_ALGORITHMS,
    build_response,
    error_response,
    execute_prepared,
    prepare_request,
)
from repro.api.specs import RunSpec
from repro.exceptions import DeadlineExceeded, ReproError, SpecError
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import Trace
from repro.serve.coalescer import RequestCoalescer
from repro.serve.registry import IndexRegistry, LoadedService, cache_hit_rate

_LOG = get_logger("repro.serve.server")

#: default cap on one JSON-lines frame (1 MiB)
DEFAULT_MAX_LINE_BYTES = 1_048_576

#: chunk size for the connection read loop
_READ_CHUNK = 65536

#: default bound on distinct in-flight specs before new work is shed
DEFAULT_MAX_QUEUE_DEPTH = 256

#: default drain budget (seconds) for a graceful shutdown
DEFAULT_DRAIN_TIMEOUT = 10.0

#: sliding window (seconds) over which recent sheds mark health degraded
_HEALTH_WINDOW_S = 10.0

#: legacy ops exempt from admission control — the ops surface must keep
#: answering while the serving path is shedding
_OPS_EXEMPT = frozenset({"ping", "stats", "metrics", "reload",
                         "apply-delta"})

#: health states in severity order (gauge value = index)
HEALTH_STATES = ("ok", "degraded", "draining")


class _TokenBucket:
    """Per-connection request rate limiter (tokens/s with a burst cap)."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self.tokens = self.burst
        self.last = time.monotonic()

    def try_acquire(self) -> float:
        """Admit one request: 0.0, or seconds until a token frees up."""
        now = time.monotonic()
        self.tokens = min(self.burst,
                          self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AllocationServer:
    """Serve the v1 + legacy dialects for many concurrent clients.

    Parameters
    ----------
    registry:
        The :class:`IndexRegistry` hosting the servable indexes.
    max_line_bytes:
        Frames longer than this are answered with an
        ``oversized-request`` envelope (the oversized input is discarded
        up to its newline, so the connection resynchronizes).
    coalesce:
        Disable to execute every request individually (the benchmark's
        "coalesced vs not" axis); dedup/batching is on by default.
    max_batch:
        Forwarded to :class:`RequestCoalescer`.
    metrics:
        The :class:`MetricsRegistry` this server records into (a fresh
        enabled one by default).  Pass a disabled registry
        (``MetricsRegistry(enabled=False)``) to reduce all recording to
        no-ops; responses stay bit-identical either way.
    max_queue_depth:
        Bound on distinct in-flight specs before new serving work is shed
        with an ``overloaded`` envelope (``None`` disables admission
        control — the pre-PR unbounded behaviour).
    rate_limit, rate_burst:
        Per-connection token-bucket admission (requests/second and burst
        size; ``rate_limit=None`` disables).  Shed requests get an
        ``overloaded`` envelope whose ``retry_after_ms`` is the time
        until the next token.
    default_deadline_ms, max_deadline_ms:
        Server-side deadline defaults: requests without ``deadline_ms``
        get the default (when set); client deadlines are clamped to the
        ceiling (when set).
    drain_timeout:
        Seconds a graceful :meth:`shutdown` waits for in-flight requests
        before answering the stragglers' connections with a
        ``shutting-down`` envelope and closing them.
    """

    def __init__(self, registry: IndexRegistry, *,
                 max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
                 coalesce: bool = True,
                 max_batch: int = 64,
                 metrics: Optional[MetricsRegistry] = None,
                 max_queue_depth: Optional[int] = DEFAULT_MAX_QUEUE_DEPTH,
                 rate_limit: Optional[float] = None,
                 rate_burst: Optional[float] = None,
                 default_deadline_ms: Optional[float] = None,
                 max_deadline_ms: Optional[float] = None,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT) -> None:
        self._registry = registry
        self._max_line_bytes = int(max_line_bytes)
        self._coalesce = bool(coalesce)
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve")
        self._coalescer = RequestCoalescer(self._executor,
                                           max_batch=max_batch,
                                           metrics=self._metrics)
        self._max_queue_depth = (None if max_queue_depth is None
                                 else max(1, int(max_queue_depth)))
        self._rate_limit = (None if rate_limit is None
                            else max(0.001, float(rate_limit)))
        self._rate_burst = (float(rate_burst) if rate_burst is not None
                            else (self._rate_limit * 2
                                  if self._rate_limit else 1.0))
        self._default_deadline_ms = (
            None if default_deadline_ms is None
            else max(0.0, float(default_deadline_ms)))
        self._max_deadline_ms = (None if max_deadline_ms is None
                                 else max(0.0, float(max_deadline_ms)))
        self._drain_timeout = max(0.0, float(drain_timeout))
        self._servers: list = []
        self._unix_paths: list = []
        self._conn_tasks: set = set()
        self._conn_writers: Dict[Any, asyncio.StreamWriter] = {}
        self._draining = False
        self._busy = 0
        self._idle: Optional[asyncio.Event] = None
        self._started = time.time()
        self._requests = 0
        self._errors = 0
        self._connections = 0
        #: plain (metrics-independent) admission bookkeeping
        self._shed_counts = {"queue-full": 0, "rate-limit": 0,
                             "shutting-down": 0}
        self._shed_recent: deque = deque(maxlen=256)
        self._deadline_expired = 0
        #: EWMA of worker-thread execution seconds — the retry_after hint
        self._avg_exec_s = 0.05
        self._register_instruments()

    def _register_instruments(self) -> None:
        m = self._metrics
        # hot-path handles, bound once
        self._m_latency = m.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency (frame receipt to response)")
        self._m_unserializable = m.counter(
            "repro_unserializable_responses_total",
            "Responses that needed the default=str JSON fallback")
        self._m_connections = m.counter(
            "repro_connections_total", "Accepted client connections")
        # admission-control instruments, pre-registered so the metric
        # families exist (at zero) before the first shed — the golden
        # stats-schema test depends on a deterministic family set
        self._m_shed = {
            reason: m.counter(
                "repro_shed_total",
                "Requests shed by admission control, by reason",
                reason=reason)
            for reason in ("queue-full", "rate-limit", "shutting-down")}
        self._m_deadline = m.counter(
            "repro_deadline_expired_total",
            "Requests answered deadline-exceeded without executing")
        m.gauge_fn("repro_health_state",
                   lambda: float(HEALTH_STATES.index(self.health_state())),
                   "Derived health (0=ok, 1=degraded, 2=draining)")
        # live state as callback gauges: zero cost on the request path
        m.gauge_fn("repro_queue_depth",
                   lambda: self._coalescer.queue_depth,
                   "Distinct in-flight specs awaiting execution")
        m.gauge_fn("repro_in_flight_requests", lambda: self._busy,
                   "Requests being handled (including response write)")
        m.gauge_fn("repro_active_connections",
                   lambda: len(self._conn_tasks),
                   "Open client connections")
        m.gauge_fn("repro_uptime_seconds",
                   lambda: time.time() - self._started,
                   "Seconds since the server object was created")
        m.register_collector(self._registry_families)

    def _registry_families(self):
        """Render-time metric families for registry/per-index state."""
        stats = self._registry.stats()
        totals = [
            ("repro_registry_loads_total", "counter",
             "Index loads since start", [({}, stats["loads"])]),
            ("repro_registry_evictions_total", "counter",
             "LRU/memory-budget evictions", [({}, stats["evictions"])]),
            ("repro_registry_reloads_total", "counter",
             "Hot reloads (SIGHUP or reload op)", [({}, stats["reloads"])]),
            ("repro_registry_resident_bytes", "gauge",
             "Resident (non-mmap) index array bytes",
             [({}, stats["resident_bytes"])]),
        ]
        requests_rows: List[Tuple[Dict[str, str], float]] = []
        loaded_rows: List[Tuple[Dict[str, str], float]] = []
        hit_rows: List[Tuple[Dict[str, str], float]] = []
        miss_rows: List[Tuple[Dict[str, str], float]] = []
        rate_rows: List[Tuple[Dict[str, str], float]] = []
        for key, row in stats["indexes"].items():
            labels = {"index": key}
            requests_rows.append((labels, row["requests"]))
            loaded_rows.append((labels, 1.0 if row["loaded"] else 0.0))
            cache = row.get("cache")
            if cache:
                hit_rows.append((labels, cache.get("hits", 0)))
                miss_rows.append((labels, cache.get("misses", 0)))
                rate_rows.append((labels, cache_hit_rate(cache)))
        return totals + [
            ("repro_index_requests_total", "counter",
             "Requests routed per index", requests_rows),
            ("repro_index_loaded", "gauge",
             "Whether the index is resident (1) or manifest-only (0)",
             loaded_rows),
            ("repro_index_cache_hits_total", "counter",
             "Allocation-cache hits per index", hit_rows),
            ("repro_index_cache_misses_total", "counter",
             "Allocation-cache misses per index", miss_rows),
            ("repro_index_cache_hit_rate", "gauge",
             "Allocation-cache hit fraction per index", rate_rows),
        ]

    # ------------------------------------------------------------------
    @property
    def registry(self) -> IndexRegistry:
        return self._registry

    @property
    def coalescer(self) -> RequestCoalescer:
        return self._coalescer

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def max_line_bytes(self) -> int:
        return self._max_line_bytes

    # ------------------------------------------------------------------
    # recording (the one funnel every answered frame goes through)
    # ------------------------------------------------------------------
    def _record_response(self, dialect: str, response: Mapping[str, Any],
                         latency_s: float,
                         trace: Optional[Trace] = None) -> None:
        if not self._metrics.enabled:
            return
        outcome = "ok" if response.get("ok", True) else "error"
        self._metrics.counter(
            "repro_requests_total", "Requests answered, by dialect/outcome",
            dialect=dialect, outcome=outcome).inc()
        self._m_latency.observe(latency_s)
        if trace is not None:
            for name, seconds in trace.spans():
                self._metrics.histogram(
                    "repro_span_seconds", "Per-stage request span timings",
                    stage=name).observe(seconds)

    def encode_response(self, response: Mapping[str, Any]) -> str:
        """Serialize one response frame.

        A well-formed response is plain JSON; if serialization fails the
        event is recorded (``repro_unserializable_responses_total`` + a
        structured warning — this masks a type bug somewhere upstream)
        and the frame falls back to ``default=str`` so the client still
        gets an answer.
        """
        try:
            return json.dumps(response)
        except (TypeError, ValueError):
            self._m_unserializable.inc()
            log_event(_LOG, logging.WARNING, "response-unserializable",
                      "response payload needed default=str serialization",
                      id=response.get("id"), keys=sorted(response))
            return json.dumps(response, default=str)

    # ------------------------------------------------------------------
    # framing / parsing (shared by stdio and the async endpoints)
    # ------------------------------------------------------------------
    def parse_line(self, raw: Union[str, bytes]
                   ) -> Tuple[Optional[Dict[str, Any]],
                              Optional[Dict[str, Any]]]:
        """Parse one frame into ``(request, error_envelope)``.

        At most one of the two is non-``None``; both are ``None`` for
        blank lines (skip).  Never raises.
        """
        if isinstance(raw, bytes):
            if len(raw) > self._max_line_bytes:
                return None, self._oversized_envelope(len(raw))
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                return None, error_response(
                    "malformed-request",
                    f"request line is not valid UTF-8: {error}")
        else:
            text = raw
            # cheap pre-check first: a str frame can only exceed the byte
            # cap if it has at least max/4 characters (UTF-8 is <= 4B/char)
            if len(text) * 4 > self._max_line_bytes:
                encoded_size = len(text.encode("utf-8", errors="replace"))
                if encoded_size > self._max_line_bytes:
                    return None, self._oversized_envelope(encoded_size)
        text = text.strip()
        if not text:
            return None, None
        try:
            request = json.loads(text)
        except json.JSONDecodeError as error:
            return None, error_response("malformed-request",
                                        f"bad JSON: {error}")
        if not isinstance(request, dict):
            return None, error_response(
                "malformed-request",
                f"requests must be JSON objects, got "
                f"{type(request).__name__}")
        return request, None

    def _oversized_envelope(self, size: Optional[int] = None
                            ) -> Dict[str, Any]:
        detail = f"request line is {size} bytes; " if size else \
            "request line "
        return error_response(
            "oversized-request",
            f"{detail}the server caps frames at "
            f"{self._max_line_bytes} bytes")

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------
    def _resolve_versioned(self, request: Mapping[str, Any]
                           ) -> Union[Tuple[str, LoadedService, RunSpec],
                                      Dict[str, Any]]:
        """Route a versioned request to its index, or an error envelope.

        Returns ``(key, loaded, spec)`` so downstream stages can skip
        re-parsing the spec."""
        request_id = request.get("id")
        version = request.get("v")
        if version != PROTOCOL_VERSION:
            return error_response(
                "unsupported-version",
                f"protocol version {version!r} is not supported; "
                f"supported versions: [{PROTOCOL_VERSION}]", request_id)
        spec_dict = request.get("spec")
        if not isinstance(spec_dict, Mapping):
            return error_response(
                "malformed-request",
                "a v1 request needs a 'spec' object: "
                '{"v": 1, "spec": {"algorithm": ..., "workload": ..., '
                '"engine": ...}}', request_id)
        try:
            spec = RunSpec.from_dict(spec_dict)
        except SpecError as error:
            return error_response("invalid-spec", str(error), request_id)
        if spec.algorithm not in SERVABLE_ALGORITHMS:
            return error_response(
                "unsupported-algorithm",
                f"{spec.algorithm} cannot be served from a prebuilt index; "
                f"servable algorithms: {list(SERVABLE_ALGORITHMS)}",
                request_id)
        try:
            key, loaded = self._registry.resolve_spec(spec)
        except ReproError as error:
            return error_response(
                "incompatible-spec",
                f"no hosted index is compatible with the spec: {error}",
                request_id)
        return key, loaded, spec

    def _resolve_and_prepare(self, request: Mapping[str, Any],
                             deadline: Optional[float] = None):
        """Resolve + validate one versioned request (worker thread).

        Returns ``(key, loaded, prepared)`` or an error envelope.  Lives
        on the worker thread so lazy index loads never block the event
        loop.
        """
        resolved = self._resolve_versioned(request)
        if isinstance(resolved, dict):
            return resolved
        key, loaded, spec = resolved
        prepared = prepare_request(loaded.service, request, spec=spec,
                                   deadline=deadline)
        if isinstance(prepared, dict):
            return prepared
        return key, loaded, prepared

    def _legacy_target(self, request: Mapping[str, Any]
                       ) -> Union[Tuple[str, LoadedService],
                                  Dict[str, Any]]:
        """The service a legacy (un-versioned) op runs against.

        A multi-index registry needs the request to name its index
        (``{"op": "query", "index": "nethept-c1", ...}``); with a single
        hosted index the request routes there implicitly, preserving the
        original one-index dialect.
        """
        response: Dict[str, Any] = {}
        if "id" in request:
            response["id"] = request["id"]
        named = request.get("index")
        if named is not None:
            try:
                return str(named), self._registry.get(str(named))
            except ReproError as error:
                response.update(ok=False, error=str(error))
                return response
        key = self._registry.default_key
        if key is None:
            response.update(
                ok=False,
                error=f"the registry hosts "
                      f"{len(self._registry.keys())} indexes; name one "
                      f'with {{"index": ...}} '
                      f"(hosted: {list(self._registry.keys())})")
            return response
        try:
            return key, self._registry.get(key)
        except ReproError as error:
            response.update(ok=False, error=str(error))
            return response

    # ------------------------------------------------------------------
    # stats / reload ops
    # ------------------------------------------------------------------
    def stats_payload(self) -> Dict[str, Any]:
        """Server + registry + coalescer + metrics statistics (the
        ``stats`` op)."""
        payload = {
            "server": {
                "uptime_s": round(time.time() - self._started, 3),
                "requests": self._requests,
                "errors": self._errors,
                "connections": self._connections,
                "active_connections": len(self._conn_tasks),
                "in_flight": self._busy,
                "queue_depth": self._coalescer.queue_depth,
                "max_line_bytes": self._max_line_bytes,
                "coalescing": self._coalesce,
                "draining": self._draining,
                "metrics_enabled": self._metrics.enabled,
                "health": self.health_state(),
                "shed": {
                    "total": sum(self._shed_counts.values()),
                    "by_reason": dict(self._shed_counts),
                },
                "deadline_expired": self._deadline_expired,
                "admission": {
                    "max_queue_depth": self._max_queue_depth,
                    "rate_limit": self._rate_limit,
                    "rate_burst": (self._rate_burst
                                   if self._rate_limit is not None
                                   else None),
                    "default_deadline_ms": self._default_deadline_ms,
                    "max_deadline_ms": self._max_deadline_ms,
                    "drain_timeout_s": self._drain_timeout,
                },
            },
            "coalescer": self._coalescer.counters(),
            "registry": self._registry.stats(),
            "metrics": self._metrics.summary(),
        }
        fault_stats = faults.stats()
        if fault_stats is not None:
            payload["faults"] = fault_stats
        return payload

    def metrics_payload(self) -> Dict[str, Any]:
        """Server + process metric summaries (the ``metrics`` op)."""
        return {
            "server": self._metrics.summary(),
            "process": get_metrics().summary(),
        }

    def _handle_metrics_op(self, request: Mapping[str, Any]
                           ) -> Dict[str, Any]:
        response: Dict[str, Any] = {}
        if "id" in request:
            response["id"] = request["id"]
        response.update(ok=True, metrics=self.metrics_payload())
        return response

    def _handle_stats_op(self, request: Mapping[str, Any]
                         ) -> Dict[str, Any]:
        response: Dict[str, Any] = {}
        if "id" in request:
            response["id"] = request["id"]
        response.update(ok=True, **self.stats_payload())
        # one-index compatibility: surface the flat single-service shape
        # the original `stats` op answered with (without forcing a load)
        key = self._registry.default_key
        if key is not None:
            loaded = self._registry.entry(key).loaded
            if loaded is not None:
                response.setdefault("stats", loaded.service.cache_stats)
                response.setdefault("num_rr_sets",
                                    loaded.service.index.num_sets)
                response.setdefault("num_nodes",
                                    loaded.service.index.num_nodes)
        return response

    def _handle_reload_op(self, request: Mapping[str, Any]
                          ) -> Dict[str, Any]:
        response: Dict[str, Any] = {}
        if "id" in request:
            response["id"] = request["id"]
        try:
            response.update(ok=True, reload=self._registry.reload())
        except ReproError as error:
            response.update(ok=False, error=str(error))
        return response

    def _handle_apply_delta_op(self, request: Mapping[str, Any]
                               ) -> Dict[str, Any]:
        """Repair a hosted index in place (``{"op": "apply-delta"}``).

        Routes like any legacy op (``index`` key, or the single hosted
        index), then delegates to :meth:`IndexRegistry.apply_delta`:
        repair → atomic rewrite → rescan, so the server picks up the
        repaired build without restart while in-flight queries keep
        their (still-mapped) old arrays.
        """
        target = self._legacy_target(request)
        if isinstance(target, dict):
            self._errors += 1
            return target
        key, _loaded = target
        response: Dict[str, Any] = {}
        if "id" in request:
            response["id"] = request["id"]
        started = time.perf_counter()
        try:
            summary = self._registry.apply_delta(
                key, request.get("delta") or {})
            response.update(ok=True, **summary)
        except ReproError as error:
            self._errors += 1
            response.update(ok=False, error=str(error))
        response["latency_ms"] = round(
            (time.perf_counter() - started) * 1e3, 3)
        return response

    def _server_meta(self, key: Optional[str] = None,
                     coalesced: bool = False, batch_size: int = 1,
                     queue_depth: int = 0) -> Dict[str, Any]:
        return {"index": key, "queue_depth": queue_depth,
                "coalesced": coalesced, "batch_size": batch_size,
                "in_flight": self._busy}

    # ------------------------------------------------------------------
    # admission control / deadlines / health
    # ------------------------------------------------------------------
    def _note_shed(self, reason: str) -> None:
        self._errors += 1
        self._shed_counts[reason] = self._shed_counts.get(reason, 0) + 1
        self._shed_recent.append(time.monotonic())
        metric = self._m_shed.get(reason)
        if metric is not None:
            metric.inc()
        log_event(_LOG, logging.WARNING, "request-shed", reason=reason,
                  queue_depth=self._coalescer.queue_depth)

    def _note_deadline_expired(self) -> None:
        self._errors += 1
        self._deadline_expired += 1
        self._m_deadline.inc()

    def _recent_sheds(self) -> int:
        """Sheds within the last :data:`_HEALTH_WINDOW_S` seconds."""
        cutoff = time.monotonic() - _HEALTH_WINDOW_S
        return sum(1 for stamp in self._shed_recent if stamp >= cutoff)

    def _retry_after_ms(self, depth: int) -> int:
        """Backoff hint for a queue-full shed: roughly how long the
        current backlog needs to clear, clamped to [50 ms, 5 s]."""
        eta = depth * max(self._avg_exec_s, 0.005)
        return int(1000.0 * min(5.0, max(0.05, eta)))

    def _admission_shed(self, request_id: Any) -> Optional[Dict[str, Any]]:
        """The ``overloaded`` envelope when the queue is full, else
        ``None`` (admit)."""
        if self._max_queue_depth is None:
            return None
        depth = self._coalescer.queue_depth if self._coalesce else self._busy
        if depth < self._max_queue_depth:
            return None
        self._requests += 1
        self._note_shed("queue-full")
        return error_response(
            "overloaded",
            f"server is at capacity ({depth} in-flight specs); "
            f"retry with backoff", request_id,
            queue_depth=depth,
            retry_after_ms=self._retry_after_ms(depth))

    def _resolve_deadline(self, request: Mapping[str, Any], trace: Trace
                          ) -> Tuple[Optional[float],
                                     Optional[Dict[str, Any]]]:
        """``(absolute deadline, None)`` or ``(None, error envelope)``.

        ``deadline_ms`` counts from frame receipt (the trace's birth), is
        defaulted from ``default_deadline_ms`` and clamped to
        ``max_deadline_ms`` when those are configured.
        """
        raw = request.get("deadline_ms")
        if raw is None:
            ms = self._default_deadline_ms
        elif isinstance(raw, bool) or not isinstance(raw, (int, float)):
            return None, error_response(
                "malformed-request",
                f"'deadline_ms' must be a positive number of "
                f"milliseconds, got {raw!r}", request.get("id"))
        else:
            ms = float(raw)
            if not (ms > 0.0) or ms != ms or ms == float("inf"):
                return None, error_response(
                    "malformed-request",
                    f"'deadline_ms' must be a positive finite number of "
                    f"milliseconds, got {raw!r}", request.get("id"))
        if ms is None:
            return None, None
        if self._max_deadline_ms is not None:
            ms = min(ms, self._max_deadline_ms)
        return trace.started + ms / 1000.0, None

    def health_state(self) -> str:
        """Derived health: ``ok`` | ``degraded`` | ``draining``."""
        if self._draining:
            return "draining"
        if self._max_queue_depth is not None:
            if self._coalescer.queue_depth >= 0.8 * self._max_queue_depth:
                return "degraded"
        if self._recent_sheds() > 0:
            return "degraded"
        return "ok"

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload (state + the signals behind it)."""
        state = self.health_state()
        return {
            "state": state,
            "ok": state == "ok",
            "uptime_s": round(time.time() - self._started, 3),
            "queue_depth": self._coalescer.queue_depth,
            "in_flight": self._busy,
            "recent_sheds": self._recent_sheds(),
            "draining": self._draining,
            "indexes": len(self._registry.keys()),
        }

    # ------------------------------------------------------------------
    # synchronous dispatch (stdio loop)
    # ------------------------------------------------------------------
    def dispatch(self, request: Mapping[str, Any],
                 trace: Optional[Trace] = None) -> Dict[str, Any]:
        """Answer one parsed request synchronously (no coalescing)."""
        self._requests += 1
        if "v" in request:
            started = time.perf_counter()
            if trace is None:
                trace = Trace()
            deadline, envelope = self._resolve_deadline(request, trace)
            if envelope is not None:
                self._errors += 1
                return envelope
            with trace.span("validate"):
                resolved = self._resolve_versioned(request)
                if isinstance(resolved, dict):
                    self._errors += 1
                    return resolved
                key, loaded, spec = resolved
                prepared = prepare_request(loaded.service, request,
                                           spec=spec, deadline=deadline)
            if isinstance(prepared, dict):
                self._errors += 1
                return prepared
            try:
                with trace.span("execute"):
                    payload = execute_prepared(loaded.service, prepared)
            except DeadlineExceeded as error:
                self._note_deadline_expired()
                return error_response("deadline-exceeded", str(error),
                                      prepared.request_id)
            except ReproError as error:
                self._errors += 1
                return error_response("invalid-spec", str(error),
                                      prepared.request_id)
            response = build_response(prepared, payload, started,
                                      trace=trace)
            response["server"] = self._server_meta(key)
            return response
        op = str(request.get("op", "query")).strip().lower()
        if op == "ping":
            response = {}
            if "id" in request:
                response["id"] = request["id"]
            response.update(ok=True, pong=True, latency_ms=0.0)
            return response
        if op == "stats":
            return self._handle_stats_op(request)
        if op == "metrics":
            return self._handle_metrics_op(request)
        if op == "reload":
            return self._handle_reload_op(request)
        if op == "apply-delta":
            return self._handle_apply_delta_op(request)
        target = self._legacy_target(request)
        if isinstance(target, dict):
            self._errors += 1
            return target
        key, loaded = target
        response = loaded.service.handle_request(request)
        if response.get("ok"):
            response["server"] = self._server_meta(key)
        else:
            self._errors += 1
        return response

    def dispatch_line(self, raw: Union[str, bytes]
                      ) -> Optional[Dict[str, Any]]:
        """Parse + dispatch one frame; ``None`` for blank lines."""
        trace = Trace()
        with trace.span("parse"):
            request, envelope = self.parse_line(raw)
        if envelope is not None:
            self._requests += 1
            self._errors += 1
            self._record_resync(envelope)
            self._record_response("invalid", envelope, trace.elapsed())
            return envelope
        if request is None:
            return None
        response = self.dispatch(request, trace=trace)
        dialect = "v1" if "v" in request else "legacy"
        self._record_response(dialect, response, trace.elapsed(),
                              trace=trace)
        return response

    def _record_resync(self, envelope: Mapping[str, Any]) -> None:
        """Count + log one malformed/oversized frame resynchronization."""
        error = envelope.get("error") or {}
        code = str(error.get("code", "")) if isinstance(error, Mapping) \
            else str(error)
        reason = "oversized" if code == "oversized-request" else "malformed"
        if self._metrics.enabled:
            self._metrics.counter(
                "repro_resync_total",
                "Frames discarded to resynchronize the stream",
                reason=reason).inc()
        log_event(_LOG, logging.WARNING, "frame-resync", reason=reason,
                  code=code)

    # ------------------------------------------------------------------
    # async dispatch (TCP / unix endpoints)
    # ------------------------------------------------------------------
    async def handle_async(self, request: Mapping[str, Any],
                           trace: Optional[Trace] = None) -> Dict[str, Any]:
        """Answer one parsed request with coalescing and batching."""
        loop = asyncio.get_running_loop()
        if "v" not in request:
            op = str(request.get("op", "query")).strip().lower()
            if op not in _OPS_EXEMPT:
                shed = self._admission_shed(request.get("id"))
                if shed is not None:
                    return shed
            # legacy ops run whole on the worker thread (they may load an
            # index or run a query; either would block the loop)
            return await loop.run_in_executor(self._executor,
                                              self.dispatch, request)
        shed = self._admission_shed(request.get("id"))
        if shed is not None:
            return shed
        self._requests += 1
        if trace is None:
            trace = Trace()
        deadline, envelope = self._resolve_deadline(request, trace)
        if envelope is not None:
            self._errors += 1
            return envelope
        started = time.perf_counter()
        validate_started = time.perf_counter()
        outcome = await loop.run_in_executor(
            self._executor, self._resolve_and_prepare, request, deadline)
        # includes the executor hop — what the request actually waited
        trace.add("validate", time.perf_counter() - validate_started)
        if isinstance(outcome, dict):
            self._errors += 1
            return outcome
        key, loaded, prepared = outcome
        if not self._coalesce:
            try:
                exec_started = time.perf_counter()
                payload = await loop.run_in_executor(
                    self._executor, execute_prepared, loaded.service,
                    prepared)
                trace.add("execute", time.perf_counter() - exec_started)
            except DeadlineExceeded as error:
                self._note_deadline_expired()
                return error_response("deadline-exceeded", str(error),
                                      prepared.request_id)
            except ReproError as error:
                self._errors += 1
                return error_response("invalid-spec", str(error),
                                      prepared.request_id)
            response = build_response(prepared, payload, started,
                                      trace=trace)
            response["server"] = self._server_meta(key)
            return response
        submit_started = time.perf_counter()
        payload, coalesced, batch_size, depth, exec_s = \
            await self._coalescer.submit(key, loaded.service, prepared)
        waited = time.perf_counter() - submit_started
        # the batch's worker-thread time is shared by its members; the
        # rest of the wait is queueing (tick gather + executor backlog)
        trace.add("queue", max(0.0, waited - exec_s))
        trace.add("execute", exec_s)
        if exec_s > 0.0:
            # EWMA of per-batch worker time — feeds retry_after_ms hints
            self._avg_exec_s += 0.2 * (exec_s - self._avg_exec_s)
        if isinstance(payload, DeadlineExceeded):
            self._note_deadline_expired()
            return error_response("deadline-exceeded", str(payload),
                                  prepared.request_id)
        if isinstance(payload, ReproError):
            self._errors += 1
            return error_response("invalid-spec", str(payload),
                                  prepared.request_id)
        response = build_response(prepared, payload, started, trace=trace)
        response["server"] = self._server_meta(
            key, coalesced=coalesced, batch_size=batch_size,
            queue_depth=depth)
        return response

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _frames(self, reader: asyncio.StreamReader
                      ) -> AsyncIterator[Tuple[bytes, bool]]:
        """Yield ``(frame, oversized)`` pairs from a byte stream.

        Frames are newline-delimited.  An oversized frame is discarded as
        it streams in (bounded memory) and reported once, when its
        terminating newline arrives; a truncated trailing frame (EOF
        without newline) is still yielded.
        """
        buffer = bytearray()
        discarding = False
        while True:
            chunk = await reader.read(_READ_CHUNK)
            if not chunk:
                if buffer and not discarding:
                    yield bytes(buffer), False
                return
            buffer.extend(chunk)
            while True:
                newline = buffer.find(b"\n")
                if newline == -1:
                    if not discarding \
                            and len(buffer) > self._max_line_bytes:
                        discarding = True
                    if discarding:
                        buffer.clear()
                    break
                frame = bytes(buffer[:newline])
                del buffer[:newline + 1]
                if discarding:
                    # this newline terminates the oversized frame
                    discarding = False
                    yield b"", True
                elif len(frame) > self._max_line_bytes:
                    yield b"", True
                else:
                    yield frame, False

    async def _write_frame(self, writer: asyncio.StreamWriter,
                           response: Mapping[str, Any]) -> bool:
        """Write one response frame; ``False`` if the connection was torn
        down by the ``disconnect`` fault site.

        The ``stall-write`` site sleeps (async — the event loop keeps
        serving other connections) before the write; the ``disconnect``
        site writes only a prefix of the frame and aborts the transport,
        so chaos tests see a truncated frame + EOF.
        """
        stall = faults.delay("stall-write")
        if stall > 0.0:
            await asyncio.sleep(stall)
        data = (self.encode_response(response) + "\n").encode("utf-8")
        if faults.fires("disconnect"):
            writer.write(data[:max(1, len(data) // 2)])
            writer.transport.abort()
            return False
        writer.write(data)
        await writer.drain()
        return True

    def _shutting_down_envelope(self, request_id: Any = None
                                ) -> Dict[str, Any]:
        return error_response(
            "shutting-down",
            "server is draining and no longer accepts work; reconnect "
            "and retry elsewhere", request_id)

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        self._m_connections.inc()
        peer = writer.get_extra_info("peername")
        log_event(_LOG, logging.DEBUG, "connection-opened",
                  peer=str(peer) if peer else None)
        frames = 0
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            self._conn_writers[task] = writer
        bucket = (_TokenBucket(self._rate_limit, self._rate_burst)
                  if self._rate_limit is not None else None)
        try:
            async for frame, oversized in self._frames(reader):
                frames += 1
                trace = Trace()  # minted at frame receipt
                if oversized:
                    self._requests += 1
                    self._errors += 1
                    response: Optional[Dict[str, Any]] = \
                        self._oversized_envelope()
                    self._record_resync(response)
                    self._record_response("invalid", response,
                                          trace.elapsed())
                    if not await self._write_frame(writer, response):
                        break
                    continue
                with trace.span("parse"):
                    request, envelope = self.parse_line(frame)
                if envelope is not None:
                    self._requests += 1
                    self._errors += 1
                    self._record_resync(envelope)
                    response = envelope
                elif request is None:
                    continue
                else:
                    if self._draining:
                        # answer, don't abandon: a typed envelope tells
                        # the client to retry against another replica
                        self._requests += 1
                        self._note_shed("shutting-down")
                        response = self._shutting_down_envelope(
                            request.get("id"))
                        self._record_response(
                            "v1" if "v" in request else "legacy",
                            response, trace.elapsed())
                        await self._write_frame(writer, response)
                        break
                    if bucket is not None and not (
                            "v" not in request
                            and str(request.get("op", "query")).strip()
                            .lower() in _OPS_EXEMPT):
                        wait_s = bucket.try_acquire()
                        if wait_s > 0.0:
                            self._requests += 1
                            self._note_shed("rate-limit")
                            response = error_response(
                                "overloaded",
                                f"connection exceeded its "
                                f"{self._rate_limit:g} req/s budget",
                                request.get("id"),
                                queue_depth=self._coalescer.queue_depth,
                                retry_after_ms=int(wait_s * 1000.0) + 1)
                            self._record_response(
                                "v1" if "v" in request else "legacy",
                                response, trace.elapsed())
                            if not await self._write_frame(writer,
                                                           response):
                                break
                            continue
                    # busy covers handling AND the response write, so a
                    # draining shutdown never drops a computed response
                    self._busy += 1
                    if self._idle is not None:
                        self._idle.clear()
                    try:
                        response = await self.handle_async(request,
                                                           trace=trace)
                        with trace.span("respond"):
                            alive = await self._write_frame(writer,
                                                            response)
                        dialect = "v1" if "v" in request else "legacy"
                        self._record_response(dialect, response,
                                              trace.elapsed(), trace=trace)
                    finally:
                        self._busy -= 1
                        if self._busy == 0 and self._idle is not None:
                            self._idle.set()
                    if not alive:
                        break
                    continue
                self._record_response("invalid", response, trace.elapsed())
                if not await self._write_frame(writer, response):
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
                self._conn_writers.pop(task, None)
            log_event(_LOG, logging.DEBUG, "connection-closed",
                      peer=str(peer) if peer else None, frames=frames)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # endpoints / lifecycle
    # ------------------------------------------------------------------
    def _ensure_idle_event(self) -> None:
        if self._idle is None:
            self._idle = asyncio.Event()
            self._idle.set()

    async def start_tcp(self, host: str, port: int) -> Tuple[str, int]:
        """Start the TCP endpoint; returns the bound ``(host, port)``."""
        self._ensure_idle_event()
        server = await asyncio.start_server(
            self._client_connected, host, port, limit=_READ_CHUNK)
        self._servers.append(server)
        bound = server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def start_unix(self, path: Union[str, Path]) -> Path:
        """Start the unix-socket endpoint; returns the socket path."""
        self._ensure_idle_event()
        path = Path(path)
        server = await asyncio.start_unix_server(
            self._client_connected, str(path), limit=_READ_CHUNK)
        self._servers.append(server)
        self._unix_paths.append(path)
        return path

    async def shutdown(self, drain: bool = True,
                       timeout: Optional[float] = None) -> None:
        """Stop accepting, optionally drain in-flight requests, close.

        With ``drain=True`` every request already being processed finishes
        and flushes its response before its connection closes; idle
        connections are then closed.  ``timeout`` bounds the drain
        (default: the server's ``drain_timeout``); connections still busy
        when it expires are answered with a ``shutting-down`` envelope
        before being cancelled — never silently abandoned.
        """
        if timeout is None:
            timeout = self._drain_timeout
        self._draining = True
        for server in self._servers:
            server.close()
        drained = True
        if drain and self._busy and self._idle is not None:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except asyncio.TimeoutError:
                drained = False
            # one tick so drained responses reach their transports
            await asyncio.sleep(0)
        if not drained:
            # the drain budget ran out with requests still in flight:
            # tell each lingering connection before cutting it off
            envelope = self._shutting_down_envelope()
            for task, writer in list(self._conn_writers.items()):
                if task.done():
                    continue
                self._note_shed("shutting-down")
                try:
                    writer.write((self.encode_response(envelope) + "\n")
                                 .encode("utf-8"))
                    await asyncio.wait_for(writer.drain(), 1.0)
                except (ConnectionResetError, BrokenPipeError, OSError,
                        asyncio.TimeoutError):
                    pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - close race
                pass
        self._servers.clear()
        for path in self._unix_paths:
            try:
                path.unlink()
            except OSError:
                pass
        self._unix_paths.clear()
        self._executor.shutdown(wait=True)

    async def serve_forever(self, *, tcp: Optional[Tuple[str, int]] = None,
                            unix: Optional[Union[str, Path]] = None,
                            metrics_tcp: Optional[Tuple[str, int]] = None,
                            ready=None) -> None:
        """Run until SIGINT/SIGTERM; SIGHUP hot-reloads the registry.

        ``metrics_tcp`` starts the Prometheus/healthz HTTP exporter on a
        separate listener (it exposes this server's registry plus the
        process-global build metrics).  ``ready`` (optional callable)
        receives the bound endpoint descriptions once listening — the
        CLI prints them to stderr.
        """
        import signal

        from repro.obs.httpexp import MetricsExporter

        endpoints = []
        exporter: Optional[MetricsExporter] = None
        try:
            if tcp is not None:
                host, port = await self.start_tcp(*tcp)
                endpoints.append(f"tcp://{host}:{port}")
            if unix is not None:
                path = await self.start_unix(unix)
                endpoints.append(f"unix://{path}")
            if metrics_tcp is not None:
                exporter = MetricsExporter(
                    [self._metrics, get_metrics()], health=self.health)
                await exporter.start(*metrics_tcp)
                for host, port in exporter.addresses:
                    endpoints.append(f"http://{host}:{port}/metrics")
            if ready is not None:
                ready(endpoints)
            log_event(_LOG, logging.INFO, "server-started",
                      endpoints=endpoints,
                      indexes=list(self._registry.keys()))
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except (NotImplementedError,
                        RuntimeError):  # pragma: no cover
                    pass
            try:
                loop.add_signal_handler(signal.SIGHUP,
                                        lambda: self._registry.reload())
            except (NotImplementedError, RuntimeError,
                    AttributeError):  # pragma: no cover - non-unix
                pass
            await stop.wait()
        finally:
            # runs on normal stop AND on cancellation/error, so an
            # aborted serve still unlinks its unix socket and closes the
            # exporter instead of leaking them
            if exporter is not None:
                await exporter.close()
            await self.shutdown(drain=True)
            log_event(_LOG, logging.INFO, "server-drained",
                      requests=self._requests, errors=self._errors)


def run_stdio(server: AllocationServer,
              stdin: Optional[TextIO] = None,
              stdout: Optional[TextIO] = None) -> int:
    """The synchronous stdio loop: one request per line on stdin.

    Delegates every frame to the same dispatch core as the concurrent
    endpoints, so the stdio dialect (legacy and versioned) answers
    identically to TCP/unix serving.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        response = server.dispatch_line(line)
        if response is None:
            continue
        print(server.encode_response(response), file=stdout, flush=True)
    return 0


__all__ = [
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_MAX_LINE_BYTES",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "HEALTH_STATES",
    "AllocationServer",
    "run_stdio",
]
