"""In-flight request coalescing and per-index query batching.

Specs are fingerprint-keyed (:meth:`RunSpec.fingerprint` hashes the fully
resolved spec), which makes cross-request sharing *safe*: two requests
with equal fingerprints are guaranteed to produce bit-identical
responses, so N concurrent clients asking about the same workload can —
and should — cost one selection run.  The coalescer exploits that at two
levels:

* **in-flight dedup** — the first request for a fingerprint registers a
  future; every identical request arriving before it completes awaits the
  same future (counted as ``coalesced``) instead of queueing its own
  execution;
* **per-index batching** — distinct fingerprints destined for the same
  index that are pending in the same event-loop tick drain as one batch
  through :func:`repro.api.protocol.execute_prepared_batch` (built on
  :meth:`AllocationService.query_batch`), sharing the LRU and the
  incrementally-extended greedy order in a single executor hop.

Execution happens on a single worker thread (the services' caches and
greedy orders are not thread-safe); the event loop only parses, validates
and routes.  Every counter is exposed per index key via
:meth:`RequestCoalescer.counters` and surfaced by the ``stats`` op.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.api.protocol import PreparedRequest, execute_prepared_batch
from repro.exceptions import ReproError
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry

_LOG = get_logger("repro.serve.coalescer")

#: batch-size histogram buckets (requests per executed batch)
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def _new_counters() -> Dict[str, int]:
    return {"coalesced": 0, "batches": 0, "batched_requests": 0,
            "executed": 0, "max_batch_size": 0}


def _derived(counters: Dict[str, int]) -> Dict[str, Any]:
    """Counters plus the derived totals the ops surface reports.

    ``requests`` is every admission (deduped + executed); ``efficiency``
    is the fraction of admissions answered without their own execution
    slot (coalesced, or sharing a multi-request batch).
    """
    out: Dict[str, Any] = dict(counters)
    requests = counters["coalesced"] + counters["batched_requests"]
    out["requests"] = requests
    saved = requests - counters["batches"]
    out["efficiency"] = round(saved / requests, 4) if requests else 0.0
    return out


class RequestCoalescer:
    """Deduplicate in-flight identical specs and batch per-index queries.

    Parameters
    ----------
    executor:
        The single-thread executor queries run on (owned by the server).
    max_batch:
        Drain a pending batch early once it reaches this many requests.
    """

    def __init__(self, executor: ThreadPoolExecutor,
                 max_batch: int = 64,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._executor = executor
        self._max_batch = max(1, int(max_batch))
        self._metrics = metrics
        #: fingerprint -> future resolving to
        #: (payload-or-ReproError, batch_size, exec_seconds)
        self._inflight: Dict[str, "asyncio.Future"] = {}
        #: index key -> pending (service, prepared, future) triples
        self._pending: Dict[str, List[Tuple[Any, PreparedRequest,
                                            "asyncio.Future"]]] = {}
        self._drain_handles: Dict[str, "asyncio.Handle"] = {}
        self._counters: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Distinct specs admitted but not yet answered."""
        return len(self._inflight)

    def counters(self, key: Optional[str] = None) -> Dict[str, Any]:
        """Coalescing counters, per index key (or all keys).

        Readable from any thread (the ``stats`` op runs on the worker
        thread while the event loop inserts keys): iteration works over
        atomic snapshots, never live dict views.
        """
        if key is not None:
            return _derived(self._counters.setdefault(key, _new_counters()))
        return {k: _derived(v)
                for k, v in sorted(list(self._counters.items()))}

    def _counters_for(self, key: str) -> Dict[str, int]:
        return self._counters.setdefault(key, _new_counters())

    # ------------------------------------------------------------------
    async def submit(self, key: str, service,
                     prepared: PreparedRequest
                     ) -> Tuple[Any, bool, int, int, float]:
        """Admit one prepared request; returns its execution outcome.

        Returns ``(payload_or_error, coalesced, batch_size, queue_depth,
        exec_seconds)`` where ``payload_or_error`` is the service payload
        dict or the :class:`ReproError` the query raised, ``coalesced``
        says whether this request piggybacked on an identical in-flight
        one, ``queue_depth`` is the number of distinct in-flight specs at
        admission time, and ``exec_seconds`` is the worker-thread time of
        the batch that answered it (shared across its members — the queue
        wait is the caller's elapsed time minus this).
        """
        depth = len(self._inflight)
        existing = self._inflight.get(prepared.fingerprint)
        if existing is not None:
            self._counters_for(key)["coalesced"] += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "repro_coalesced_total",
                    "Requests answered by an identical in-flight spec",
                    index=key).inc()
            payload, batch_size, exec_s = await asyncio.shield(existing)
            return payload, True, batch_size, depth, exec_s
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[prepared.fingerprint] = future
        pending = self._pending.setdefault(key, [])
        pending.append((service, prepared, future))
        if len(pending) >= self._max_batch:
            handle = self._drain_handles.pop(key, None)
            if handle is not None:
                handle.cancel()
            self._drain(key)
        elif key not in self._drain_handles:
            # drain on the next loop tick: everything submitted in this
            # tick (e.g. 32 clients whose reads completed together) forms
            # one batch
            self._drain_handles[key] = loop.call_soon(self._drain, key)
        payload, batch_size, exec_s = await asyncio.shield(future)
        return payload, False, batch_size, depth, exec_s

    # ------------------------------------------------------------------
    def _drain(self, key: str) -> None:
        self._drain_handles.pop(key, None)
        pending = self._pending.pop(key, [])
        if not pending:
            return
        # a hot reload can swap the loaded service for a key between two
        # submissions in the same tick; requests must execute against the
        # exact service they validated on, so batch per service identity
        by_service: Dict[int, List[Tuple[Any, PreparedRequest,
                                         "asyncio.Future"]]] = {}
        for triple in pending:
            by_service.setdefault(id(triple[0]), []).append(triple)
        for batch in by_service.values():
            self._execute_batch(key, batch)

    def _execute_batch(self, key: str,
                       batch: List[Tuple[Any, PreparedRequest,
                                         "asyncio.Future"]]) -> None:
        counters = self._counters_for(key)
        counters["batches"] += 1
        counters["batched_requests"] += len(batch)
        counters["max_batch_size"] = max(counters["max_batch_size"],
                                         len(batch))
        if self._metrics is not None:
            self._metrics.counter(
                "repro_batches_total", "Executed coalescer batches",
                index=key).inc()
            self._metrics.histogram(
                "repro_batch_size", "Requests per executed batch",
                buckets=_BATCH_BUCKETS, index=key).observe(len(batch))
        service = batch[0][0]
        prepared_list = [prepared for _, prepared, _ in batch]
        loop = asyncio.get_running_loop()

        def _timed_execute():
            # timed on the worker thread so batch members can split their
            # end-to-end latency into queue wait vs execution
            start = time.perf_counter()
            results = execute_prepared_batch(service, prepared_list)
            return results, time.perf_counter() - start

        task = loop.run_in_executor(self._executor, _timed_execute)

        def _finish(done: "asyncio.Future") -> None:
            for _, prepared, _future in batch:
                self._inflight.pop(prepared.fingerprint, None)
            try:
                results, exec_s = done.result()
            except BaseException as error:  # executor died / shutdown race
                for _, _prepared, future in batch:
                    if not future.done():
                        future.set_exception(error)
                return
            counters["executed"] += sum(
                1 for r in results if not isinstance(r, ReproError))
            if self._metrics is not None:
                self._metrics.histogram(
                    "repro_batch_exec_seconds",
                    "Worker-thread execution time per batch",
                    index=key).observe(exec_s)
            log_event(_LOG, logging.DEBUG, "batch-executed",
                      index=key, batch_size=len(batch),
                      exec_ms=round(exec_s * 1000.0, 3))
            for (_, _prepared, future), result in zip(batch, results):
                if not future.done():
                    future.set_result((result, len(batch), exec_s))

        task.add_done_callback(_finish)


__all__ = ["RequestCoalescer"]
