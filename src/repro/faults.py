"""Deterministic fault injection for the serving stack.

Chaos testing needs failures that are **reproducible**: the same seed and
the same call sequence must fire the same faults, so a failing chaos run
can be replayed.  This module is the single switchboard — production code
calls tiny hook functions at named *sites*, and an armed
:class:`FaultInjector` decides, from a per-site seeded RNG, whether that
call fails, how long it stalls, or whether the connection should be torn
down mid-frame.

Sites wired through the serving stack:

``registry-load``
    :meth:`repro.serve.registry.IndexRegistry.get` raises
    :class:`~repro.exceptions.IndexStoreError` instead of loading — the
    request is answered with a typed envelope, never a crash.
``slow-selection``
    :func:`repro.api.protocol.execute_prepared_batch` sleeps on the
    worker thread before executing, simulating a cold/contended
    selection run.
``stall-write``
    :class:`repro.serve.server.AllocationServer` sleeps (async) before
    writing a response frame, simulating a slow/backpressured client
    link.
``disconnect``
    The server writes only a prefix of the response frame and aborts the
    connection — the client sees a truncated frame + EOF.

Arming
------
The injector is **disarmed by default** and the hooks then cost one
module-global read plus a ``None`` check (measured in
``benchmarks/bench_soak.py``; the warm-path overhead budget is <= 1%).
Arm it explicitly::

    from repro import faults
    faults.configure("registry-load:0.3,slow-selection:0.5:80", seed=7)

or from the environment (``repro serve`` honors both)::

    REPRO_FAULTS="disconnect:0.1,stall-write:0.2:50" \\
    REPRO_FAULT_SEED=7 repro serve --index ... --tcp ...

or via ``repro serve --faults SPEC --fault-seed N``.

The spec is a comma-separated list of ``site:rate[:delay_ms]`` tokens:
``rate`` is the per-call fire probability in ``[0, 1]``, ``delay_ms``
(sites that stall) the injected latency.  Determinism: each site draws
from its own ``random.Random(f"{seed}:{site}")`` stream under a lock, so
per-site fire patterns depend only on the seed and that site's call
count — not on thread interleaving across sites.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Mapping, Optional, Tuple, Union

#: the sites production code hooks; configure() rejects unknown names so
#: a typo'd spec fails fast instead of silently never firing
SITES = ("registry-load", "slow-selection", "stall-write", "disconnect")

#: environment variables `repro serve` (and configure_from_env) honor
ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"


class FaultSpecError(ValueError):
    """Raised for an unparsable or unknown-site fault spec."""


class _SiteRule:
    """One site's fire probability, injected delay, and counters."""

    __slots__ = ("rate", "delay_s", "checked", "fired", "_rng", "_lock")

    def __init__(self, rate: float, delay_s: float, seed: int,
                 site: str) -> None:
        import random

        self.rate = float(rate)
        self.delay_s = float(delay_s)
        self.checked = 0
        self.fired = 0
        self._rng = random.Random(f"{seed}:{site}")
        self._lock = threading.Lock()

    def fires(self) -> bool:
        with self._lock:
            self.checked += 1
            fired = self._rng.random() < self.rate
            if fired:
                self.fired += 1
            return fired


class FaultInjector:
    """A parsed, seeded fault plan over the known :data:`SITES`."""

    def __init__(self, spec: Union[str, Mapping[str, Any]],
                 seed: int = 0) -> None:
        self.seed = int(seed)
        self.spec = spec if isinstance(spec, str) else dict(spec)
        self._rules: Dict[str, _SiteRule] = {}
        for site, (rate, delay_s) in _parse_spec(spec).items():
            self._rules[site] = _SiteRule(rate, delay_s, self.seed, site)
        if not self._rules:
            raise FaultSpecError("fault spec names no sites")

    def fires(self, site: str) -> bool:
        """Whether this call at ``site`` fails (draws the site's RNG)."""
        rule = self._rules.get(site)
        return rule.fires() if rule is not None else False

    def delay(self, site: str) -> float:
        """Injected delay in seconds for ``site`` (0.0 when not firing)."""
        rule = self._rules.get(site)
        if rule is None or not rule.fires():
            return 0.0
        return rule.delay_s

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-site ``{rate, delay_ms, checked, fired}`` counters."""
        return {site: {"rate": rule.rate,
                       "delay_ms": round(rule.delay_s * 1000.0, 3),
                       "checked": rule.checked,
                       "fired": rule.fired}
                for site, rule in sorted(self._rules.items())}


def _parse_spec(spec: Union[str, Mapping[str, Any]]
                ) -> Dict[str, Tuple[float, float]]:
    """``site:rate[:delay_ms]`` tokens -> ``{site: (rate, delay_s)}``."""
    if isinstance(spec, Mapping):
        tokens = [f"{site}:{value}" if not isinstance(value, (tuple, list))
                  else f"{site}:{value[0]}:{value[1]}"
                  for site, value in spec.items()]
    else:
        tokens = [token for token in str(spec).split(",") if token.strip()]
    rules: Dict[str, Tuple[float, float]] = {}
    for token in tokens:
        parts = [part.strip() for part in token.split(":")]
        if len(parts) not in (2, 3):
            raise FaultSpecError(
                f"bad fault token {token!r}: expected site:rate[:delay_ms]")
        site = parts[0]
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; known sites: {list(SITES)}")
        try:
            rate = float(parts[1])
            delay_ms = float(parts[2]) if len(parts) == 3 else 0.0
        except ValueError as error:
            raise FaultSpecError(f"bad fault token {token!r}: {error}") \
                from None
        if not 0.0 <= rate <= 1.0:
            raise FaultSpecError(
                f"fault rate for {site!r} must be in [0, 1], got {rate}")
        if delay_ms < 0:
            raise FaultSpecError(
                f"fault delay for {site!r} must be >= 0, got {delay_ms}")
        rules[site] = (rate, delay_ms / 1000.0)
    return rules


# ----------------------------------------------------------------------
# the process-global switchboard (None == disarmed == near-zero cost)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def configure(spec: Union[str, Mapping[str, Any]],
              seed: int = 0) -> FaultInjector:
    """Arm fault injection process-wide; returns the installed injector."""
    global _ACTIVE
    _ACTIVE = FaultInjector(spec, seed=seed)
    return _ACTIVE


def configure_from_env(environ: Optional[Mapping[str, str]] = None
                       ) -> Optional[FaultInjector]:
    """Arm from ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` when set."""
    env = environ if environ is not None else os.environ
    spec = env.get(ENV_SPEC)
    if not spec:
        return None
    return configure(spec, seed=int(env.get(ENV_SEED, "0")))


def disarm() -> None:
    """Disarm fault injection (hooks return to their no-op fast path)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    """The armed injector, or ``None``."""
    return _ACTIVE


# ----------------------------------------------------------------------
# the hooks production code calls (fast path: one read + one branch)
# ----------------------------------------------------------------------
def fires(site: str) -> bool:
    """Whether an armed injector fails this call at ``site``."""
    injector = _ACTIVE
    if injector is None:
        return False
    return injector.fires(site)


def delay(site: str) -> float:
    """Injected delay in seconds at ``site`` (0.0 when disarmed)."""
    injector = _ACTIVE
    if injector is None:
        return 0.0
    return injector.delay(site)


def stats() -> Optional[Dict[str, Dict[str, Any]]]:
    """Armed injector's per-site counters, or ``None`` when disarmed."""
    injector = _ACTIVE
    return injector.stats() if injector is not None else None


__all__ = [
    "ENV_SEED",
    "ENV_SPEC",
    "SITES",
    "FaultInjector",
    "FaultSpecError",
    "active",
    "configure",
    "configure_from_env",
    "delay",
    "disarm",
    "fires",
    "stats",
]
