"""Allocation heuristics: Round-robin, Snake, degree and random seeding.

Round-robin and Snake are the baselines of the adoption-vs-welfare study
(paper §6.4.3, Table 6): both take the *same* ordered seed pool that
SeqGRD-NM would use (the PRIMA+/IMM greedy order) and differ only in how
the items are mapped onto those seeds:

* ``SeqGRD-NM`` assigns items in contiguous blocks following the item
  utility order: ``s1:i, s2:i, s3:j, s4:j``;
* ``Round-robin`` interleaves the items: ``s1:i, s2:j, s3:i, s4:j``;
* ``Snake`` interleaves but flips the order on every pass
  (boustrophedon): ``s1:i, s2:j, s3:j, s4:i``.

Degree and random seeding are simple sanity-check heuristics used in tests
and examples.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.allocation import Allocation, validate_budgets
from repro.core.prima import prima_plus
from repro.core.results import AllocationResult, degenerate_result
from repro.diffusion.estimators import estimate_welfare
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


def _ordered_items(model: UtilityModel, budgets: Mapping[str, int],
                   rng: RngLike) -> List[str]:
    """Items with positive budget, by decreasing expected truncated utility."""
    items = [item for item, budget in budgets.items() if budget > 0]
    utilities = {item: model.expected_truncated_utility(item, rng=rng)
                 for item in items}
    return sorted(items, key=lambda it: utilities[it], reverse=True)


def _seed_pool(graph: DirectedGraph, budgets: Mapping[str, int],
               fixed_allocation: Allocation, options: Optional[IMMOptions],
               rng: RngLike, pool: Optional[Sequence[int]]) -> List[int]:
    """The shared ordered seed pool (PRIMA+ order unless given explicitly)."""
    total = sum(b for b in budgets.values() if b > 0)
    if pool is not None:
        return list(int(v) for v in pool)[:total]
    result = prima_plus(graph, fixed_allocation.all_seeds(),
                        [b for b in budgets.values() if b > 0], total,
                        options=options, rng=rng)
    return result.seeds


def round_robin(graph: DirectedGraph, model: UtilityModel,
                budgets: Mapping[str, int],
                fixed_allocation: Optional[Allocation] = None,
                seed_pool: Optional[Sequence[int]] = None,
                options: Optional[IMMOptions] = None,
                evaluate_welfare: bool = False,
                n_evaluation_samples: int = 500,
                rng: RngLike = None,
                engine: Optional[str] = None) -> AllocationResult:
    """Round-robin item assignment over the ordered seed pool."""
    return _interleaved(graph, model, budgets, fixed_allocation, seed_pool,
                        options, evaluate_welfare, n_evaluation_samples, rng,
                        snake=False, engine=engine)


def snake(graph: DirectedGraph, model: UtilityModel,
          budgets: Mapping[str, int],
          fixed_allocation: Optional[Allocation] = None,
          seed_pool: Optional[Sequence[int]] = None,
          options: Optional[IMMOptions] = None,
          evaluate_welfare: bool = False,
          n_evaluation_samples: int = 500,
          rng: RngLike = None,
          engine: Optional[str] = None) -> AllocationResult:
    """Snake (boustrophedon) item assignment over the ordered seed pool."""
    return _interleaved(graph, model, budgets, fixed_allocation, seed_pool,
                        options, evaluate_welfare, n_evaluation_samples, rng,
                        snake=True, engine=engine)


def _interleaved(graph: DirectedGraph, model: UtilityModel,
                 budgets: Mapping[str, int],
                 fixed_allocation: Optional[Allocation],
                 seed_pool: Optional[Sequence[int]],
                 options: Optional[IMMOptions],
                 evaluate_welfare: bool, n_evaluation_samples: int,
                 rng: RngLike, snake: bool,
                 engine: Optional[str] = None) -> AllocationResult:
    rng = ensure_rng(rng)
    fixed_allocation = fixed_allocation or Allocation.empty()
    budgets = validate_budgets(budgets, model.catalog)
    items = _ordered_items(model, budgets, rng)
    if not items:
        # all budgets are zero: nothing to assign (consistent with SupGRD
        # and the greedy baselines, which also return an empty allocation)
        return degenerate_result(
            graph, model, fixed_allocation,
            "Snake" if snake else "Round-robin",
            evaluate_welfare, n_evaluation_samples, rng, engine,
            details={"seed_pool": [], "item_order": []})

    start = time.perf_counter()
    pool = _seed_pool(graph, budgets, fixed_allocation, options, rng, seed_pool)
    remaining = {item: budgets[item] for item in items}
    assignment: Dict[str, List[int]] = {item: [] for item in items}
    order = list(items)
    cursor = 0
    pass_index = 0
    while cursor < len(pool) and any(b > 0 for b in remaining.values()):
        sweep = order if (not snake or pass_index % 2 == 0) else list(reversed(order))
        for item in sweep:
            if cursor >= len(pool):
                break
            if remaining[item] <= 0:
                continue
            assignment[item].append(pool[cursor])
            remaining[item] -= 1
            cursor += 1
        pass_index += 1

    allocation = Allocation({item: nodes for item, nodes in assignment.items()
                             if nodes})
    runtime = time.perf_counter() - start
    estimated = None
    if evaluate_welfare:
        estimated = estimate_welfare(graph, model,
                                     allocation.union(fixed_allocation),
                                     n_samples=n_evaluation_samples,
                                     rng=rng, engine=engine).mean
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm="Snake" if snake else "Round-robin",
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details={"seed_pool": pool, "item_order": items},
    )


def degree_allocation(graph: DirectedGraph, model: UtilityModel,
                      budgets: Mapping[str, int],
                      rng: RngLike = None) -> AllocationResult:
    """Allocate the highest out-degree nodes, items in utility order."""
    rng = ensure_rng(rng)
    budgets = validate_budgets(budgets, model.catalog)
    items = _ordered_items(model, budgets, rng)
    start = time.perf_counter()
    order = list(np.argsort(-graph.out_degrees(), kind="stable"))
    assignment: Dict[str, List[int]] = {}
    cursor = 0
    for item in items:
        take = budgets[item]
        assignment[item] = [int(v) for v in order[cursor:cursor + take]]
        cursor += take
    allocation = Allocation({k: v for k, v in assignment.items() if v})
    return AllocationResult(allocation, Allocation.empty(), "HighDegree",
                            runtime_seconds=time.perf_counter() - start)


def random_allocation(graph: DirectedGraph, model: UtilityModel,
                      budgets: Mapping[str, int],
                      rng: RngLike = None) -> AllocationResult:
    """Allocate uniformly random (distinct) seed nodes to each item."""
    rng = ensure_rng(rng)
    budgets = validate_budgets(budgets, model.catalog)
    items = _ordered_items(model, budgets, rng)
    start = time.perf_counter()
    total = sum(budgets[item] for item in items)
    total = min(total, graph.num_nodes)
    chosen = rng.choice(graph.num_nodes, size=total, replace=False)
    assignment: Dict[str, List[int]] = {}
    cursor = 0
    for item in items:
        take = min(budgets[item], total - cursor)
        assignment[item] = [int(v) for v in chosen[cursor:cursor + take]]
        cursor += take
    allocation = Allocation({k: v for k, v in assignment.items() if v})
    return AllocationResult(allocation, Allocation.empty(), "Random",
                            runtime_seconds=time.perf_counter() - start)


from repro.api.registry import RunContext, register_algorithm  # noqa: E402


@register_algorithm("Round-robin", order=7)
def _run_round_robin(ctx: RunContext):
    return round_robin(ctx.graph, ctx.model, ctx.budgets,
                       ctx.fixed_allocation, options=ctx.options,
                       rng=ctx.rng, engine=ctx.engine)


@register_algorithm("Snake", order=8)
def _run_snake(ctx: RunContext):
    return snake(ctx.graph, ctx.model, ctx.budgets, ctx.fixed_allocation,
                 options=ctx.options, rng=ctx.rng, engine=ctx.engine)


__all__ = ["round_robin", "snake", "degree_allocation", "random_allocation"]
