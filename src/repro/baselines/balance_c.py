"""Balance-C baseline — balanced exposure of two competing items.

Balance-C (Garimella et al., NeurIPS 2017) works with exactly two items.
Given an initial seed placement of both items, it chooses the remaining
seeds so that the expected number of nodes that are exposed to *both* items
or to *neither* is maximized (balanced exposure).  It does not optimize
welfare or adoptions, which is why it under-performs on CWelMax, but it is
the closest prior work that does not assume pure competition — hence its
inclusion as a baseline in the paper (§6.1.2, two-item experiments only).

Our re-implementation follows the greedy scheme of the original paper on top
of our IC substrate: candidate seeds are scored by the Monte-Carlo estimate
of the balanced-exposure objective and chosen greedily, alternating between
the two items until the budgets are exhausted.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.allocation import Allocation, validate_budgets
from repro.core.results import AllocationResult
from repro.diffusion.ic import simulate_ic
from repro.diffusion.estimators import estimate_welfare
from repro.diffusion.worlds import LazyEdgeWorld
from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def balanced_exposure(graph: DirectedGraph, seeds_a: Iterable[int],
                      seeds_b: Iterable[int], n_samples: int = 200,
                      rng: RngLike = None) -> float:
    """Expected number of nodes exposed to both items or to neither.

    Exposure is modelled with two independent IC cascades (one per item)
    sharing nothing but the graph, which matches the information-exposure
    view of Balance-C.
    """
    rng = ensure_rng(rng)
    seeds_a = list(int(v) for v in seeds_a)
    seeds_b = list(int(v) for v in seeds_b)
    n = graph.num_nodes
    total = 0.0
    for sample_rng in spawn_rngs(rng, max(1, int(n_samples))):
        exposed_a = simulate_ic(graph, seeds_a, rng=sample_rng) if seeds_a else set()
        exposed_b = simulate_ic(graph, seeds_b, rng=sample_rng) if seeds_b else set()
        both = len(exposed_a & exposed_b)
        neither = n - len(exposed_a | exposed_b)
        total += both + neither
    return total / max(1, int(n_samples))


def balance_c(graph: DirectedGraph, model: UtilityModel,
              budgets: Mapping[str, int],
              fixed_allocation: Optional[Allocation] = None,
              n_objective_samples: int = 100,
              candidate_pool: Optional[Sequence[int]] = None,
              evaluate_welfare: bool = False,
              n_evaluation_samples: int = 500,
              rng: RngLike = None) -> AllocationResult:
    """Greedy Balance-C seed selection for exactly two items.

    Parameters
    ----------
    budgets:
        Budgets for exactly two items (Balance-C is undefined otherwise).
    candidate_pool:
        Candidate seed nodes; defaults to every node.  Restricting the pool
        (e.g. to high-degree nodes) makes the baseline tractable on larger
        graphs, mirroring how the paper could not run it on Orkut.
    """
    rng = ensure_rng(rng)
    fixed_allocation = fixed_allocation or Allocation.empty()
    budgets = validate_budgets(budgets, model.catalog)
    items = [item for item, budget in budgets.items() if budget > 0]
    if len(items) != 2:
        raise AlgorithmError(
            f"Balance-C requires exactly two items with positive budgets, "
            f"got {items}")

    start = time.perf_counter()
    item_a, item_b = items
    seeds: Dict[str, List[int]] = {
        item_a: list(fixed_allocation.seeds_for(item_a)),
        item_b: list(fixed_allocation.seeds_for(item_b)),
    }
    remaining = {item: budgets[item] for item in items}
    if candidate_pool is None:
        pool = list(range(graph.num_nodes))
    else:
        pool = sorted(set(int(v) for v in candidate_pool))

    new_allocation: Dict[str, List[int]] = {item_a: [], item_b: []}
    while any(b > 0 for b in remaining.values()):
        progressed = False
        for item in items:
            if remaining[item] <= 0:
                continue
            other = item_b if item == item_a else item_a
            best_node = None
            best_score = float("-inf")
            for node in pool:
                if node in seeds[item]:
                    continue
                score = balanced_exposure(
                    graph, seeds[item_a] + ([node] if item == item_a else []),
                    seeds[item_b] + ([node] if item == item_b else []),
                    n_samples=n_objective_samples, rng=rng)
                if score > best_score:
                    best_score = score
                    best_node = node
            if best_node is None:
                continue
            seeds[item].append(best_node)
            new_allocation[item].append(best_node)
            remaining[item] -= 1
            progressed = True
        if not progressed:
            break

    allocation = Allocation({item: nodes for item, nodes in
                             new_allocation.items() if nodes})
    runtime = time.perf_counter() - start
    estimated = None
    if evaluate_welfare:
        estimated = estimate_welfare(graph, model,
                                     allocation.union(fixed_allocation),
                                     n_samples=n_evaluation_samples,
                                     rng=rng).mean
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm="Balance-C",
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details={
            "candidate_pool_size": len(pool),
            "restricted_pool": candidate_pool is not None,
        },
    )


from repro.api.registry import RunContext, register_algorithm  # noqa: E402


@register_algorithm("Balance-C", order=6, needs_candidate_pool=True)
def _run_balance_c(ctx: RunContext):
    return balance_c(ctx.graph, ctx.model, ctx.budgets, ctx.fixed_allocation,
                     n_objective_samples=max(10, ctx.marginal_samples // 3),
                     candidate_pool=ctx.candidate_pool, rng=ctx.rng)


__all__ = ["balance_c", "balanced_exposure"]
