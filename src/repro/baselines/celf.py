"""CELF-accelerated greedy welfare maximization.

greedyWM (the paper's strongest quality baseline) re-evaluates the marginal
welfare of *every* candidate (node, item) pair in every iteration, which is
what makes it orders of magnitude slower than the RR-set algorithms.  CELF
(Leskovec et al., "cost-effective lazy forward" selection) exploits the fact
that marginal gains can only shrink for submodular objectives and keeps the
candidates in a lazy priority queue, re-evaluating only the current top.

Social welfare under competition is *not* submodular (Theorem 1), so CELF on
CWelMax is a heuristic rather than an exact reimplementation of the greedy
algorithm — but in practice item blocking is rare for small seed sets (the
same observation the paper uses to explain why SeqGRD-NM works well), and
CELF typically returns the same allocation as greedyWM at a fraction of the
evaluations.  The result records how many marginal evaluations were spent so
the saving can be measured (see ``benchmarks/bench_ablation_marginal_check``
and the tests).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.allocation import Allocation, validate_budgets
from repro.core.results import AllocationResult, degenerate_result
from repro.diffusion.estimators import (
    estimate_marginal_welfare,
    estimate_marginal_welfare_batch,
    estimate_welfare,
)
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


def celf_greedy_wm(graph: DirectedGraph, model: UtilityModel,
                   budgets: Mapping[str, int],
                   fixed_allocation: Optional[Allocation] = None,
                   n_marginal_samples: int = 200,
                   candidate_pool: Optional[Sequence[int]] = None,
                   evaluate_welfare: bool = False,
                   n_evaluation_samples: int = 500,
                   rng: RngLike = None,
                   engine: Optional[str] = None) -> AllocationResult:
    """Greedy (node, item) welfare maximization with CELF lazy evaluation.

    Parameters match :func:`repro.baselines.greedy_wm.greedy_wm`.  The
    initial pass — which must score every (node, item) candidate once — is
    issued as one *batched* estimator call per item
    (:func:`~repro.diffusion.estimators.estimate_marginal_welfare_batch`):
    all candidates of an item share the same possible worlds and the base
    allocation is simulated once per world instead of once per candidate.

    The result reports the saving in
    ``details["marginal_evaluations"]`` — the number of Monte-Carlo
    estimator invocations, which the batched initial pass reduces from
    ``#candidates × #items`` to ``#items`` — while
    ``details["candidate_evaluations"]`` keeps counting individual
    candidate gains (the metric comparable to the exhaustive greedy
    baseline, which needs ``#candidates × #items × #selected`` of them).
    """
    rng = ensure_rng(rng)
    fixed_allocation = fixed_allocation or Allocation.empty()
    budgets = validate_budgets(budgets, model.catalog)
    remaining = {item: budget for item, budget in budgets.items() if budget > 0}
    if not remaining:
        # all budgets are zero: nothing to select (consistent with SupGRD
        # and the heuristics, which also return an empty allocation)
        return degenerate_result(
            graph, model, fixed_allocation, "CELF-greedyWM",
            evaluate_welfare, n_evaluation_samples, rng, engine,
            details={"selections": [], "marginal_evaluations": 0,
                     "candidate_evaluations": 0,
                     "initial_pass_calls": 0,
                     "initial_pass_calls_saved": 0,
                     "candidate_pool_size": 0,
                     "restricted_pool": candidate_pool is not None})

    start = time.perf_counter()
    if candidate_pool is None:
        pool: List[int] = list(range(graph.num_nodes))
    else:
        pool = sorted(set(int(v) for v in candidate_pool))

    allocation = Allocation.empty()
    evaluations = 0
    candidate_evaluations = 0
    selections: List[Tuple[int, str, float]] = []

    def marginal(node: int, item: str) -> float:
        nonlocal evaluations, candidate_evaluations
        evaluations += 1
        candidate_evaluations += 1
        base = allocation.union(fixed_allocation)
        return estimate_marginal_welfare(
            graph, model, base, Allocation.single(node, item),
            n_samples=n_marginal_samples, rng=rng, engine=engine)

    # initial pass: every candidate still gets scored once (the first round
    # of exhaustive greedy), but as ONE batched estimator call per item —
    # shared possible worlds across candidates, base simulated once per
    # world — instead of |pool| x |items| independent calls.
    # heap entries: (-gain, round_evaluated, node, item)
    heap: List[Tuple[float, int, int, str]] = []
    for item in remaining:
        gains = estimate_marginal_welfare_batch(
            graph, model, fixed_allocation,
            [Allocation.single(node, item) for node in pool],
            n_samples=n_marginal_samples, rng=rng, engine=engine)
        evaluations += 1
        candidate_evaluations += len(pool)
        for node, gain in zip(pool, gains):
            heap.append((-float(gain), 0, node, item))
    heapq.heapify(heap)

    selection_round = 0
    taken_nodes: Dict[str, set] = {item: set() for item in remaining}
    while any(b > 0 for b in remaining.values()) and heap:
        negative_gain, evaluated_round, node, item = heapq.heappop(heap)
        if remaining.get(item, 0) <= 0 or node in taken_nodes[item]:
            continue
        if evaluated_round == selection_round:
            # the gain is current: take it
            gain = -negative_gain
            allocation = allocation.adding(node, item)
            taken_nodes[item].add(node)
            remaining[item] -= 1
            selections.append((node, item, gain))
            selection_round += 1
        else:
            # stale estimate: re-evaluate and push back
            heapq.heappush(heap, (-marginal(node, item), selection_round,
                                  node, item))

    runtime = time.perf_counter() - start
    estimated = None
    if evaluate_welfare:
        estimated = estimate_welfare(graph, model,
                                     allocation.union(fixed_allocation),
                                     n_samples=n_evaluation_samples,
                                     rng=rng, engine=engine).mean
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm="CELF-greedyWM",
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details={
            "selections": selections,
            "marginal_evaluations": evaluations,
            "candidate_evaluations": candidate_evaluations,
            "initial_pass_calls": len(remaining),
            "initial_pass_calls_saved":
                len(pool) * len(remaining) - len(remaining),
            "candidate_pool_size": len(pool),
            "restricted_pool": candidate_pool is not None,
        },
    )


__all__ = ["celf_greedy_wm"]
