"""greedyWM baseline — greedy (node, item) selection on marginal welfare.

greedyWM (paper §6.1.2) maximizes the social welfare directly: it repeatedly
adds the (node, item) pair with the largest Monte-Carlo estimate of marginal
welfare until every budget is exhausted.  It produces consistently good
welfare but is extremely slow — each candidate evaluation is a full
Monte-Carlo welfare estimate — which is exactly the behaviour the paper
reports (it cannot finish on Orkut within 6 hours).

To keep the baseline runnable at all, the candidate node pool can be
restricted (``candidate_pool``): by default the pool is the whole node set,
matching the paper; passing e.g. the top-degree nodes gives a faster
approximate variant that is clearly flagged in the result details.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.allocation import Allocation, validate_budgets
from repro.core.results import AllocationResult, degenerate_result
from repro.diffusion.estimators import estimate_marginal_welfare, estimate_welfare
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


def greedy_wm(graph: DirectedGraph, model: UtilityModel,
              budgets: Mapping[str, int],
              fixed_allocation: Optional[Allocation] = None,
              n_marginal_samples: int = 200,
              candidate_pool: Optional[Sequence[int]] = None,
              evaluate_welfare: bool = False,
              n_evaluation_samples: int = 500,
              rng: RngLike = None,
              engine: Optional[str] = None) -> AllocationResult:
    """Greedy welfare maximization over (node, item) pairs.

    Parameters
    ----------
    candidate_pool:
        Nodes considered as seed candidates.  ``None`` means every node in
        the graph (the paper's greedyWM); a smaller pool (e.g. the top-k
        out-degree nodes) makes the baseline tractable on larger graphs.
    n_marginal_samples:
        Monte-Carlo samples per marginal evaluation (paper: 5000).
    """
    rng = ensure_rng(rng)
    fixed_allocation = fixed_allocation or Allocation.empty()
    budgets = validate_budgets(budgets, model.catalog)
    remaining = {item: budget for item, budget in budgets.items() if budget > 0}
    if not remaining:
        # all budgets are zero: nothing to select (consistent with SupGRD
        # and the heuristics, which also return an empty allocation)
        return degenerate_result(
            graph, model, fixed_allocation, "greedyWM",
            evaluate_welfare, n_evaluation_samples, rng, engine,
            details={"selections": [], "candidate_pool_size": 0,
                     "restricted_pool": candidate_pool is not None})

    start = time.perf_counter()
    if candidate_pool is None:
        pool: List[int] = list(range(graph.num_nodes))
    else:
        pool = sorted(set(int(v) for v in candidate_pool))
    used_nodes: Dict[str, set] = {item: set() for item in remaining}

    allocation = Allocation.empty()
    selections: List[Tuple[int, str, float]] = []
    while any(b > 0 for b in remaining.values()):
        base = allocation.union(fixed_allocation)
        best_pair: Optional[Tuple[int, str]] = None
        best_gain = float("-inf")
        for item, budget in remaining.items():
            if budget <= 0:
                continue
            for node in pool:
                if node in used_nodes[item]:
                    continue
                gain = estimate_marginal_welfare(
                    graph, model, base, Allocation.single(node, item),
                    n_samples=n_marginal_samples, rng=rng, engine=engine)
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (node, item)
        if best_pair is None:
            break
        node, item = best_pair
        allocation = allocation.adding(node, item)
        used_nodes[item].add(node)
        remaining[item] -= 1
        selections.append((node, item, best_gain))

    runtime = time.perf_counter() - start
    estimated = None
    if evaluate_welfare:
        estimated = estimate_welfare(graph, model,
                                     allocation.union(fixed_allocation),
                                     n_samples=n_evaluation_samples,
                                     rng=rng, engine=engine).mean
    return AllocationResult(
        allocation=allocation,
        fixed_allocation=fixed_allocation,
        algorithm="greedyWM",
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details={
            "selections": selections,
            "candidate_pool_size": len(pool),
            "restricted_pool": candidate_pool is not None,
        },
    )


from repro.api.registry import RunContext, register_algorithm  # noqa: E402


@register_algorithm("greedyWM", order=4, needs_candidate_pool=True)
def _run_greedy_wm(ctx: RunContext):
    return greedy_wm(ctx.graph, ctx.model, ctx.budgets, ctx.fixed_allocation,
                     n_marginal_samples=ctx.marginal_samples,
                     candidate_pool=ctx.candidate_pool, rng=ctx.rng,
                     engine=ctx.engine)


__all__ = ["greedy_wm"]
