"""TCIM baseline — competitive adoption-count maximization.

TCIM (Lin & Lui, Performance Evaluation 2015) assumes an IC-style model with
pure competition and, given fixed seed sets of the other competing items,
selects seeds for one item so that *that item's* expected adoption count is
maximized.  The paper uses it as a baseline by running it "for multiple
items ... one by one, while keeping the seeds of other items fixed and then
report the allocation that produces the maximum welfare" (§6.1.2).

Our re-implementation mirrors that protocol on top of the shared RR-set
substrate: selecting seeds for item ``i`` given the other items' seeds is a
marginal influence-maximization problem, solved with marginal-RR-set IMM
(the same machinery as PRIMA+), because under pure competition a node adopts
``i`` only if ``i`` reaches it no later than any competing item — which is
exactly what discarding RR sets that hit the competitors' seeds captures.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence

from repro.allocation import Allocation, validate_budgets
from repro.core.results import AllocationResult
from repro.diffusion.estimators import estimate_welfare
from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.imm import IMMOptions, marginal_imm
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


def tcim(graph: DirectedGraph, model: UtilityModel,
         budgets: Mapping[str, int],
         fixed_allocation: Optional[Allocation] = None,
         n_evaluation_samples: int = 300,
         options: Optional[IMMOptions] = None,
         evaluate_welfare: bool = False,
         rng: RngLike = None) -> AllocationResult:
    """Run the TCIM baseline protocol used in the paper's experiments.

    For every item (in round-robin order), seeds are selected to maximize
    that item's own adoption count given the seeds already allocated to the
    other items; each intermediate allocation is scored by Monte-Carlo
    welfare and the best-scoring full allocation is returned.
    """
    rng = ensure_rng(rng)
    options = options or IMMOptions()
    fixed_allocation = fixed_allocation or Allocation.empty()
    budgets = validate_budgets(budgets, model.catalog)
    items = [item for item, budget in budgets.items() if budget > 0]
    if not items:
        raise AlgorithmError("at least one item must have a positive budget")

    start = time.perf_counter()
    allocation = Allocation.empty()
    per_item_details: Dict[str, Dict[str, object]] = {}

    # pass 1: allocate items one by one, each maximizing its own adoptions
    for item in items:
        others = allocation.union(fixed_allocation)
        blocked = set(others.all_seeds())
        result = marginal_imm(graph, budgets[item], blocked,
                              options=options, rng=rng)
        allocation = allocation.union(Allocation({item: result.seeds}))
        per_item_details[item] = {
            "num_rr_sets": result.num_rr_sets,
            "estimated_marginal_spread": result.estimated_value,
        }

    # pass 2 (paper protocol): report the allocation with maximum welfare
    # among the prefixes produced while adding items one by one.
    best_allocation = allocation
    best_welfare = None
    welfare_trace: List[float] = []
    prefix = Allocation.empty()
    for item in items:
        prefix = prefix.union(allocation.restricted_to([item]))
        welfare = estimate_welfare(graph, model,
                                   prefix.union(fixed_allocation),
                                   n_samples=n_evaluation_samples,
                                   rng=rng).mean
        welfare_trace.append(welfare)
        if best_welfare is None or welfare > best_welfare:
            best_welfare = welfare
            best_allocation = prefix

    runtime = time.perf_counter() - start
    estimated = best_welfare if evaluate_welfare else None
    return AllocationResult(
        allocation=best_allocation,
        fixed_allocation=fixed_allocation,
        algorithm="TCIM",
        estimated_welfare=estimated,
        runtime_seconds=runtime,
        details={
            "per_item": per_item_details,
            "welfare_trace": welfare_trace,
            "full_allocation": allocation,
        },
    )


from repro.api.registry import RunContext, register_algorithm  # noqa: E402


@register_algorithm("TCIM", order=5)
def _run_tcim(ctx: RunContext):
    return tcim(ctx.graph, ctx.model, ctx.budgets, ctx.fixed_allocation,
                n_evaluation_samples=max(20, ctx.marginal_samples),
                options=ctx.options, rng=ctx.rng)


__all__ = ["tcim"]
