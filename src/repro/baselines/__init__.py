"""Baseline algorithms the paper compares against."""

from repro.baselines.greedy_wm import greedy_wm
from repro.baselines.celf import celf_greedy_wm
from repro.baselines.tcim import tcim
from repro.baselines.balance_c import balance_c, balanced_exposure
from repro.baselines.heuristics import (
    degree_allocation,
    random_allocation,
    round_robin,
    snake,
)

__all__ = [
    "greedy_wm",
    "celf_greedy_wm",
    "tcim",
    "balance_c",
    "balanced_exposure",
    "round_robin",
    "snake",
    "degree_allocation",
    "random_allocation",
]
