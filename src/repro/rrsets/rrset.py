"""Reverse-reachable (RR) set generation.

An RR set for a root ``v`` is the set of nodes that reach ``v`` in a random
edge world; sampling roots uniformly makes ``n · E[I(S ∩ R ≠ ∅)]`` an
unbiased estimator of the influence spread ``σ(S)`` (Borgs et al.).  The
paper extends plain RR sets in two ways:

* **marginal RR sets** (Algorithm 3): the BFS is run as usual but if the set
  ever touches the fixed seed set ``S_P`` it is discarded (set to ``∅``), so
  covering the surviving sets estimates the *marginal* spread on top of
  ``S_P``;
* **weighted RR sets** (Definition 2, used by SupGRD): the BFS stops as soon
  as a whole BFS level containing a node of ``S_P`` has been explored, and
  the set carries the weight ``U⁺(i_m) − max_{i ∈ I_s, s ∈ S_P ∩ R_v} U⁺(i)``
  — the welfare gained if the root switches from the best fixed item that
  reaches it to the superior item ``i_m``.

All three generators share the same reverse BFS with per-edge coin flips.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.allocation import Allocation
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import RngLike, ensure_rng


def random_rr_set(graph: DirectedGraph, rng: RngLike = None,
                  root: Optional[int] = None) -> np.ndarray:
    """Sample one standard RR set (array of node ids, root included)."""
    rng = ensure_rng(rng)
    n = graph.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if root is None:
        root = int(rng.integers(0, n))
    visited: Set[int] = {root}
    queue: deque = deque([root])
    while queue:
        node = queue.popleft()
        sources, probs = graph.in_neighbors(node)
        if len(sources) == 0:
            continue
        coins = rng.random(len(sources)) < probs
        for source in sources[coins]:
            source = int(source)
            if source not in visited:
                visited.add(source)
                queue.append(source)
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


def marginal_rr_set(graph: DirectedGraph, blocked: Set[int],
                    rng: RngLike = None,
                    root: Optional[int] = None) -> np.ndarray:
    """Sample one marginal RR set w.r.t. the fixed seed set ``blocked``.

    Follows Algorithm 3 of the paper: the RR set is generated as usual but
    whenever it hits a node of ``blocked`` it is discarded (an empty array
    is returned).  The empty sets still count towards the number of
    generated samples, which is what makes coverage estimates *marginal*.
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if root is None:
        root = int(rng.integers(0, n))
    if root in blocked:
        return np.empty(0, dtype=np.int64)
    visited: Set[int] = {root}
    queue: deque = deque([root])
    while queue:
        node = queue.popleft()
        sources, probs = graph.in_neighbors(node)
        if len(sources) == 0:
            continue
        coins = rng.random(len(sources)) < probs
        for source in sources[coins]:
            source = int(source)
            if source in blocked:
                return np.empty(0, dtype=np.int64)
            if source not in visited:
                visited.add(source)
                queue.append(source)
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


@dataclass
class WeightedRRSet:
    """A weighted RR set: its nodes and its welfare weight.

    ``root`` is ``-1`` for the degenerate empty-graph sample (no node to
    root the set at).
    """

    nodes: np.ndarray
    weight: float
    root: int


class WeightedRRSampler:
    """Sampler of weighted RR sets for SupGRD (paper Definition 2).

    Parameters
    ----------
    graph, model:
        The CWelMax instance.
    superior_item:
        The item being allocated (``i_m``); must have the largest truncated
        expected utility for SupGRD's guarantee to hold.
    fixed_allocation:
        The fixed allocation ``S_P`` of the inferior items.
    n_utility_samples:
        Sample count used for the truncated-utility estimates.
    """

    def __init__(self, graph: DirectedGraph, model: UtilityModel,
                 superior_item: str, fixed_allocation: Allocation,
                 n_utility_samples: int = 20_000,
                 rng: RngLike = None) -> None:
        self._graph = graph
        self._model = model
        self._superior_item = superior_item
        self._superior_utility = model.expected_truncated_utility(
            superior_item, n_samples=n_utility_samples, rng=rng)
        # truncated utility of the best fixed item seeded at each node
        self._node_block_utility: Dict[int, float] = {}
        for item in fixed_allocation.items:
            item_utility = model.expected_truncated_utility(
                item, n_samples=n_utility_samples, rng=rng)
            for node in fixed_allocation.seeds_for(item):
                current = self._node_block_utility.get(int(node), 0.0)
                self._node_block_utility[int(node)] = max(current, item_utility)
        self._blocked_nodes: Set[int] = set(self._node_block_utility)

    @classmethod
    def from_state(cls, graph: DirectedGraph,
                   node_block_utility: Dict[int, float],
                   superior_utility: float) -> "WeightedRRSampler":
        """Rebuild a sampler from its precomputed state.

        Used by the sharded parallel builder and the serving layer, where the
        per-node block utilities and ``U⁺(i_m)`` have already been estimated
        (re-estimating them per worker would both waste time and desync the
        utility-sampling RNG streams).
        """
        sampler = object.__new__(cls)
        sampler._graph = graph
        sampler._model = None
        sampler._superior_item = None
        sampler._superior_utility = float(superior_utility)
        sampler._node_block_utility = {int(node): float(value)
                                       for node, value
                                       in node_block_utility.items()}
        sampler._blocked_nodes = set(sampler._node_block_utility)
        return sampler

    @property
    def node_block_utility(self) -> Dict[int, float]:
        """Truncated utility of the best fixed item seeded at each node."""
        return dict(self._node_block_utility)

    @property
    def max_weight(self) -> float:
        """Upper bound ``w_max`` on the weight of any RR set."""
        return self._superior_utility

    @property
    def superior_utility(self) -> float:
        """``U⁺(i_m)`` — the truncated utility of the superior item."""
        return self._superior_utility

    def sample(self, rng: RngLike = None,
               root: Optional[int] = None) -> WeightedRRSet:
        """Sample one weighted RR set.

        The reverse BFS proceeds level by level (so node distances to the
        root are respected) and stops after the first level that contains a
        node of the fixed seed set: those fixed seeds are at distance no
        larger than any node in the set, so seeding any member with the
        superior item guarantees the root adopts it (pure competition).
        """
        rng = ensure_rng(rng)
        graph = self._graph
        n = graph.num_nodes
        if n == 0:
            # degenerate empty graph: nothing to root the BFS at
            return WeightedRRSet(nodes=np.empty(0, dtype=np.int64),
                                 weight=0.0, root=-1)
        if root is None:
            root = int(rng.integers(0, n))
        visited: Set[int] = {root}
        level = [root]
        hit_blocked: List[int] = [root] if root in self._blocked_nodes else []
        while level and not hit_blocked:
            next_level: List[int] = []
            for node in level:
                sources, probs = graph.in_neighbors(node)
                if len(sources) == 0:
                    continue
                coins = rng.random(len(sources)) < probs
                for source in sources[coins]:
                    source = int(source)
                    if source not in visited:
                        visited.add(source)
                        next_level.append(source)
                        if source in self._blocked_nodes:
                            hit_blocked.append(source)
            level = next_level
        block_utility = max((self._node_block_utility[v] for v in hit_blocked),
                            default=0.0)
        weight = max(0.0, self._superior_utility - block_utility)
        nodes = np.fromiter(visited, dtype=np.int64, count=len(visited))
        return WeightedRRSet(nodes=nodes, weight=weight, root=root)

    def sample_batch(self, rng: RngLike = None, count: int = 1,
                     roots: Optional[Sequence[int]] = None
                     ) -> List[WeightedRRSet]:
        """Sample ``count`` weighted RR sets via the vectorized engine.

        Semantically equivalent to ``count`` calls of :meth:`sample` (same
        level-by-level stopping rule and weights) but the reverse BFS of the
        whole batch advances together; on an empty graph every sample is the
        empty set with weight 0.
        """
        rng = ensure_rng(rng)
        count = int(count)
        if count <= 0:
            return []
        if self._graph.num_nodes == 0:
            return [WeightedRRSet(nodes=np.empty(0, dtype=np.int64),
                                  weight=0.0, root=-1)
                    for _ in range(count)]
        from repro.engine.reverse import weighted_rr_sets

        raw = weighted_rr_sets(self._graph, self._node_block_utility,
                               self._superior_utility, count, rng,
                               roots=roots)
        return [WeightedRRSet(nodes=nodes, weight=weight, root=root)
                for nodes, weight, root in raw]

    def sample_pairs(self, rng: RngLike = None, count: int = 1
                     ) -> List[Tuple[np.ndarray, float]]:
        """Sample ``count`` weighted RR sets as bare ``(nodes, weight)``
        pairs.

        The feed format of :meth:`RRCollection.extend
        <repro.rrsets.coverage.RRCollection.extend>` and the IMM engine's
        batch samplers — identical draws to :meth:`sample_batch` without
        materializing the :class:`WeightedRRSet` wrappers.
        """
        rng = ensure_rng(rng)
        count = int(count)
        if count <= 0:
            return []
        if self._graph.num_nodes == 0:
            return [(np.empty(0, dtype=np.int64), 0.0)
                    for _ in range(count)]
        from repro.engine.reverse import weighted_rr_sets

        return [(nodes, weight)
                for nodes, weight, _root in weighted_rr_sets(
                    self._graph, self._node_block_utility,
                    self._superior_utility, count, rng)]


__all__ = [
    "random_rr_set",
    "marginal_rr_set",
    "WeightedRRSet",
    "WeightedRRSampler",
]
