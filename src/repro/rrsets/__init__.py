"""Reverse-reachable set machinery: sampling, coverage, IMM."""

from repro.rrsets.rrset import (
    WeightedRRSampler,
    WeightedRRSet,
    marginal_rr_set,
    random_rr_set,
)
from repro.rrsets.coverage import (
    SELECTION_STRATEGIES,
    PackedCoverage,
    RRCollection,
    SelectionResult,
    node_selection,
    resolve_strategy,
)
from repro.rrsets.bounds import adjusted_ell, lambda_prime, lambda_star, log_binomial
from repro.rrsets.imm import IMMOptions, IMMResult, imm, marginal_imm, run_imm_engine

__all__ = [
    "random_rr_set",
    "marginal_rr_set",
    "WeightedRRSet",
    "WeightedRRSampler",
    "RRCollection",
    "SelectionResult",
    "node_selection",
    "PackedCoverage",
    "SELECTION_STRATEGIES",
    "resolve_strategy",
    "log_binomial",
    "lambda_star",
    "lambda_prime",
    "adjusted_ell",
    "IMMOptions",
    "IMMResult",
    "imm",
    "marginal_imm",
    "run_imm_engine",
]
