"""Reverse-reachable set machinery: sampling, coverage, IMM."""

from repro.rrsets.rrset import (
    WeightedRRSampler,
    WeightedRRSet,
    marginal_rr_set,
    random_rr_set,
)
from repro.rrsets.coverage import RRCollection, SelectionResult, node_selection
from repro.rrsets.bounds import adjusted_ell, lambda_prime, lambda_star, log_binomial
from repro.rrsets.imm import IMMOptions, IMMResult, imm, marginal_imm, run_imm_engine

__all__ = [
    "random_rr_set",
    "marginal_rr_set",
    "WeightedRRSet",
    "WeightedRRSampler",
    "RRCollection",
    "SelectionResult",
    "node_selection",
    "log_binomial",
    "lambda_star",
    "lambda_prime",
    "adjusted_ell",
    "IMMOptions",
    "IMMResult",
    "imm",
    "marginal_imm",
    "run_imm_engine",
]
