"""CSR-native RR-set coverage store and the greedy selection engine.

The node-selection phase of IMM, PRIMA+ and SupGRD is a weighted maximum
coverage problem over the sampled RR sets: pick ``k`` nodes maximizing the
total weight of the RR sets they hit.  This module keeps the whole phase
array-native:

* :class:`RRCollection` stores the sets in growable flat buffers — a
  set-major CSR of member node ids (``offsets``/``members``) plus per-set
  ``weights``, grown by amortized doubling — and derives the node-major
  inverted CSR (node → covering sets) lazily with one stable argsort.
  :meth:`RRCollection.freeze` hands the packed buffers to
  :class:`~repro.index.frozen.FrozenRRIndex` without copying, so the
  growable collection, the frozen index and the sharded builder's merge
  path all share one representation and one accessor protocol
  (:class:`PackedCoverage`).
* :func:`node_selection` (Algorithm 5 in the paper) runs over that packed
  representation with three interchangeable strategies that return
  bit-identical :class:`SelectionResult` s (see
  :data:`SELECTION_STRATEGIES`).

Selection strategies
--------------------
``"lazy"`` (default)
    CELF-style lazy greedy: a max-heap of upper-bounded gains, revalidated
    exactly against the incrementally maintained gains array; committing a
    pick updates gains with one ``np.subtract.at`` over the concatenated
    members of the newly covered sets.  Heap order ``(-gain, node)``
    reproduces the eager tie-breaking (lowest node id on equal gains).
``"eager"``
    The classic exact-update greedy, vectorized: ``argmax`` per pick, the
    same ``np.subtract.at`` commit.
``"reference"``
    The retained pure-Python oracle (the pre-packed-store loop) used by the
    equivalence tests and the selection benchmark baseline.

All three strategies perform the identical sequence of IEEE-754 operations
on gains and totals (same addition/subtraction order), so their seeds,
``prefix_weights`` and ``covered_weight`` agree bit for bit — the property
the persistent-index layer relies on.

Saturation (the stop-or-pad rule)
---------------------------------
Once every remaining candidate has zero marginal gain the greedy is
*saturated*: further picks cannot cover anything.  Saturation is detected
when the picked candidate covers **no new set** — a criterion that is
robust to the ~1-ulp residue incremental float updates can leave on the
gains of fully covered nodes (a ``gain <= 0`` test would miss those).
``on_saturation="pad"`` (the default) keeps selecting zero-gain nodes
until ``k`` seeds are returned — PRIMA+ and SeqGRD rely on always
receiving ``k`` seeds so budgets are exhausted and greedy prefixes keep
serving every smaller budget.  ``on_saturation="stop"`` truncates the
selection at the first zero-gain pick instead.  Either way
:attr:`SelectionResult.saturated_at` records where saturation set in.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AlgorithmError


def _observe_selection(strategy: str, phase: str, seconds: float) -> None:
    """Fold one selection-phase timing into the global metrics registry.

    Imported lazily so this low-level module never drags the obs stack in
    at import time; a disabled registry makes the call a near no-op.
    """
    from repro.obs.metrics import get_metrics

    metrics = get_metrics()
    if metrics.enabled:
        metrics.histogram(
            "repro_selection_seconds",
            "Greedy node-selection time, by strategy and phase",
            strategy=strategy, phase=phase).observe(seconds)

#: CELF-style lazy greedy (the default)
STRATEGY_LAZY = "lazy"
#: vectorized exact-update greedy
STRATEGY_EAGER = "eager"
#: retained pure-Python oracle
STRATEGY_REFERENCE = "reference"
SELECTION_STRATEGIES = (STRATEGY_LAZY, STRATEGY_EAGER, STRATEGY_REFERENCE)

#: environment variable overriding the default selection strategy (housed
#: with the other env-var knobs in :mod:`repro.engine.config`)
from repro.engine.config import SELECTION_ENV_VAR, env_choice  # noqa: E402

#: keep padding zero-gain seeds until ``k`` are selected (the default)
SATURATION_PAD = "pad"
#: truncate the selection at the first zero-gain pick
SATURATION_STOP = "stop"
_SATURATION_MODES = (SATURATION_PAD, SATURATION_STOP)


def default_strategy() -> str:
    """The strategy used when callers pass ``strategy=None``."""
    return env_choice(SELECTION_ENV_VAR, SELECTION_STRATEGIES, STRATEGY_LAZY,
                      what="selection strategy")


def resolve_strategy(strategy: Optional[str] = None) -> str:
    """Normalize a ``strategy=`` argument to one of the known strategies."""
    if strategy is None:
        return default_strategy()
    value = str(strategy).strip().lower()
    if value not in SELECTION_STRATEGIES:
        raise ValueError(
            f"unknown selection strategy {strategy!r}; "
            f"expected one of {list(SELECTION_STRATEGIES)}")
    return value


def min_id_dtype(num_nodes: int) -> np.dtype:
    """Narrowest member dtype that can address ``num_nodes`` node ids.

    ``int32`` holds every id below ``2**31``; graphs at or beyond that
    (not reachable in practice, but the contract matters) fall back to
    ``int64``.  Offsets always stay ``int64`` — member *counts* overflow
    ``int32`` long before node ids do.
    """
    return np.dtype(np.int32 if int(num_nodes) < 2 ** 31 else np.int64)


def min_set_dtype(num_sets: int) -> np.dtype:
    """Narrowest dtype for RR-set indices in the inverted CSR."""
    return np.dtype(np.int32 if int(num_sets) < 2 ** 31 else np.int64)


def build_inverted_csr(offsets: np.ndarray, members: np.ndarray,
                       weights: np.ndarray, num_nodes: int
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Invert a set-major members CSR into a node-major sets CSR.

    Only positive-weight sets are indexed (zero-weight sets can never
    contribute coverage), and each node's posting list comes out in
    ascending set order — exactly the order incremental per-set appends
    would produce, which is what keeps frozen and growable selections
    bit-identical.
    """
    lengths = np.diff(offsets)
    keep = np.repeat(weights > 0.0, lengths)
    member_nodes = members[keep]
    member_sets = np.repeat(
        np.arange(len(weights), dtype=min_set_dtype(len(weights))),
        lengths)[keep]
    order = np.argsort(member_nodes, kind="stable")
    sorted_nodes = member_nodes[order]
    inv_sets = member_sets[order]
    counts = np.bincount(sorted_nodes, minlength=num_nodes)
    inv_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=inv_offsets[1:])
    return inv_offsets, inv_sets


class PackedCoverage:
    """Accessor protocol shared by every packed coverage representation.

    Subclasses (:class:`RRCollection` and
    :class:`~repro.index.frozen.FrozenRRIndex`) expose ``num_nodes``,
    ``num_sets``, ``_packed()`` — the ``(offsets, members, weights)``
    set-major CSR triple — and ``_inverted()`` — the
    ``(inv_offsets, inv_sets)`` node-major CSR pair.  Everything the greedy
    selection and the estimators consume is derived here, once, so both
    representations behave identically down to float addition order.
    """

    # subclasses provide: num_nodes, num_sets, _packed(), _inverted()

    @property
    def id_dtype(self) -> np.dtype:
        """Dtype of the member (node-id) buffer."""
        return self._packed()[1].dtype

    @property
    def set_dtype(self) -> np.dtype:
        """Dtype of the inverted-CSR set-index buffer."""
        return self._inverted()[1].dtype

    def array_nbytes(self) -> int:
        """Total bytes of the packed CSR arrays (plus the inverted CSR and
        cached initial gains, when materialized).

        This is the *logical* array footprint — what the data occupies in
        RAM when fully materialized, and (for the uncompressed v2 index
        format) what it occupies on disk.  Memory-mapped indexes may be
        resident well below this figure.
        """
        offsets, members, weights = self._packed()
        total = offsets.nbytes + members.nbytes + weights.nbytes
        inv = getattr(self, "_inv", None)
        if inv is not None:
            total += inv[0].nbytes + inv[1].nbytes
        gains0 = getattr(self, "_gains0", None)
        if gains0 is not None:
            total += gains0.nbytes
        return int(total)

    def weights(self) -> np.ndarray:
        """Weights of all RR sets (a view of the packed buffer; do not
        mutate)."""
        return self._packed()[2]

    def set_members(self, set_index: int) -> np.ndarray:
        """Node ids of the RR set ``set_index`` (in stored order)."""
        offsets, members, _ = self._packed()
        return members[offsets[set_index]:offsets[set_index + 1]]

    def sets_covered_by(self, node: int) -> np.ndarray:
        """Indices of the positive-weight RR sets containing ``node``."""
        node = int(node)
        if not 0 <= node < self.num_nodes:
            return np.empty(0, dtype=np.int64)
        inv_offsets, inv_sets = self._inverted()
        return inv_sets[inv_offsets[node]:inv_offsets[node + 1]]

    def initial_gains(self) -> np.ndarray:
        """Per-node coverage gain of an empty selection (``M_R({v})``).

        One weighted ``np.bincount`` over the set-major members, so entry
        ``v`` accumulates its posting weights in ascending set order — the
        same sequential left-fold every other implementation of this
        protocol has used, keeping greedy selections bit-identical.

        The result is cached until the collection changes (it is the
        dominant cost of a warm selection) and returned as a copy, since
        the greedy mutates its gains in place.

        Unit-weight collections (every RR set weighing exactly 1.0 — the
        standard IMM case) take a chunked integer-counting path: int64
        counts are exact and associative, so accumulating per chunk is
        bit-identical to the one-shot weighted bincount while keeping the
        working set bounded (no ``num_members``-sized float temporaries).
        """
        cached = getattr(self, "_gains0", None)
        if cached is None:
            offsets, members, weights = self._packed()
            if len(weights) and bool((weights == 1.0).all()):
                counts = np.zeros(self.num_nodes, dtype=np.int64)
                step = 1 << 22
                for start in range(0, len(members), step):
                    counts += np.bincount(members[start:start + step],
                                          minlength=self.num_nodes)
                cached = counts.astype(np.float64)
            else:
                lengths = np.diff(offsets)
                keep = np.repeat(weights > 0.0, lengths)
                cached = np.bincount(
                    members[keep],
                    weights=np.repeat(weights, lengths)[keep],
                    minlength=self.num_nodes)
                cached = cached.astype(np.float64, copy=False)
            self._gains0 = cached
        return cached.copy()

    def covered_weight(self, seeds: Iterable[int]) -> float:
        """Total weight of RR sets hit by ``seeds`` (``M_R(S)``)."""
        weights = self._packed()[2]
        covered = np.zeros(self.num_sets, dtype=bool)
        inv_offsets, inv_sets = self._inverted()
        for node in seeds:
            node = int(node)
            if 0 <= node < self.num_nodes:
                covered[inv_sets[inv_offsets[node]:inv_offsets[node + 1]]] \
                    = True
        return float(weights[covered].sum())

    def coverage_fraction(self, seeds: Iterable[int]) -> float:
        """``F_R(S)``: covered weight divided by the number of RR sets."""
        if self.num_sets == 0:
            return 0.0
        return self.covered_weight(seeds) / self.num_sets


@dataclass
class PackedRRBatch:
    """A batch of RR sets packed as one contiguous set-major CSR triple.

    This is the transport format of the sharded parallel builder: a worker
    packs every RR set of a shard into ``(offsets, nodes, weights)`` and
    ships three buffers — one pickle per shard instead of one per set —
    and the consumer splices them into an :class:`RRCollection` or a
    :class:`~repro.index.stream.StreamingIndexWriter` with a single bulk
    copy.  Iterating a batch yields the classic ``(nodes, weight)`` pairs,
    so any sink written against the pair protocol keeps working.

    Layout invariants (validated on construction): ``offsets`` is int64 of
    shape ``(num_sets + 1,)`` starting at 0 and non-decreasing,
    ``offsets[-1] == len(nodes)``, and ``weights`` is float64 of shape
    ``(num_sets,)``.  ``nodes`` keeps whatever (signed integer) id dtype
    the producer packed — workers narrow to
    :func:`min_id_dtype` to halve transport bytes.
    """

    offsets: np.ndarray
    nodes: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        self.offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        self.nodes = np.ascontiguousarray(self.nodes)
        self.weights = np.ascontiguousarray(self.weights, dtype=np.float64)
        if self.nodes.dtype.kind != "i":
            raise AlgorithmError(
                f"packed RR nodes must be a signed integer array, "
                f"got {self.nodes.dtype}")
        if len(self.offsets) != len(self.weights) + 1:
            raise AlgorithmError(
                f"packed RR offsets must have num_sets + 1 entries "
                f"({len(self.offsets)} offsets for {len(self.weights)} sets)")
        if len(self.offsets) == 0 or self.offsets[0] != 0 \
                or self.offsets[-1] != len(self.nodes) \
                or (len(self.offsets) > 1
                    and bool((np.diff(self.offsets) < 0).any())):
            raise AlgorithmError(
                "packed RR offsets must be non-decreasing, start at 0 and "
                "end at len(nodes)")

    @property
    def num_sets(self) -> int:
        """Number of RR sets in the batch (including empty ones)."""
        return len(self.weights)

    @property
    def num_members(self) -> int:
        """Total member entries across all sets."""
        return len(self.nodes)

    def __len__(self) -> int:
        return self.num_sets

    def __iter__(self):
        """Yield ``(nodes, weight)`` pairs (views into the packed buffers)."""
        offsets = self.offsets
        for index, weight in enumerate(self.weights.tolist()):
            yield self.nodes[offsets[index]:offsets[index + 1]], weight

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, id_dtype=np.int64) -> "PackedRRBatch":
        """A batch with zero sets."""
        return cls(np.zeros(1, dtype=np.int64),
                   np.empty(0, dtype=id_dtype),
                   np.empty(0, dtype=np.float64))

    @classmethod
    def from_arrays(cls, offsets, nodes, weights, *,
                    num_nodes: Optional[int] = None,
                    id_dtype=None) -> "PackedRRBatch":
        """Build a batch, optionally bounds-checking and narrowing ids.

        The bounds check runs at the incoming integer width *before* any
        narrowing to ``id_dtype``, so an out-of-range id can never wrap
        around an int32 cast into a valid-looking one (the same contract as
        ``RRCollection._as_members``).
        """
        nodes = np.asarray(nodes)
        if num_nodes is not None and len(nodes) \
                and (int(nodes.min()) < 0
                     or int(nodes.max()) >= int(num_nodes)):
            raise AlgorithmError(
                f"RR-set members must be node ids in [0, {int(num_nodes)})")
        if id_dtype is not None:
            nodes = nodes.astype(np.dtype(id_dtype), copy=False)
        return cls(np.asarray(offsets), nodes, np.asarray(weights))

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[np.ndarray, float]], *,
                   num_nodes: Optional[int] = None,
                   id_dtype=None) -> "PackedRRBatch":
        """Pack ``(nodes, weight)`` pairs into one contiguous batch."""
        arrays = []
        weights = []
        for nodes, weight in pairs:
            arrays.append(np.asarray(nodes, dtype=np.int64).ravel())
            weights.append(float(weight))
        lengths = np.array([len(nodes) for nodes in arrays], dtype=np.int64)
        offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        nodes = np.concatenate(arrays) if arrays \
            else np.empty(0, dtype=np.int64)
        return cls.from_arrays(offsets, nodes,
                               np.array(weights, dtype=np.float64),
                               num_nodes=num_nodes, id_dtype=id_dtype)

    @classmethod
    def concat(cls, batches: Sequence["PackedRRBatch"]) -> "PackedRRBatch":
        """Concatenate batches in order (shard order → set order)."""
        batches = [batch for batch in batches if batch is not None]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        total_sets = sum(batch.num_sets for batch in batches)
        offsets = np.zeros(total_sets + 1, dtype=np.int64)
        position = 0
        base = 0
        for batch in batches:
            offsets[position + 1:position + 1 + batch.num_sets] = \
                base + batch.offsets[1:]
            position += batch.num_sets
            base += batch.num_members
        nodes = np.concatenate([batch.nodes for batch in batches])
        weights = np.concatenate([batch.weights for batch in batches])
        return cls(offsets, nodes, weights)


#: initial buffer capacities (sets / member entries) before doubling kicks in
_INITIAL_SETS = 16
_INITIAL_MEMBERS = 64


class RRCollection(PackedCoverage):
    """A growable, CSR-packed collection of (possibly weighted) RR sets.

    Members live in flat integer/float64 buffers grown by amortized
    doubling: ``add`` and ``extend`` are O(amortized size of the appended
    sets), and the node → sets inverted index is rebuilt lazily (one stable
    argsort) the first time it is needed after an append.

    The member dtype adapts to the node count (``id_dtype=None`` picks
    :func:`min_id_dtype` — ``int32`` below ``2**31`` nodes) which halves
    the member buffer at every realistic scale; pass ``id_dtype=np.int64``
    to force the historical wide layout.  Offsets and weights stay
    ``int64``/``float64`` regardless.

    Empty RR sets (as produced by marginal sampling when the reverse BFS
    hits the fixed seed set) still count towards :attr:`num_sets` — they can
    never be covered, which is exactly what makes coverage estimates
    marginal.
    """

    def __init__(self, num_nodes: int, id_dtype=None) -> None:
        self._num_nodes = int(num_nodes)
        if id_dtype is None:
            id_dtype = min_id_dtype(self._num_nodes)
        id_dtype = np.dtype(id_dtype)
        if id_dtype.kind != "i":
            raise AlgorithmError(
                f"id_dtype must be a signed integer dtype, got {id_dtype}")
        if self._num_nodes > np.iinfo(id_dtype).max:
            raise AlgorithmError(
                f"id_dtype {id_dtype} cannot address {self._num_nodes} nodes")
        self._id_dtype = id_dtype
        self._num_sets = 0
        self._num_members = 0
        self._offsets = np.zeros(_INITIAL_SETS + 1, dtype=np.int64)
        self._members = np.empty(_INITIAL_MEMBERS, dtype=id_dtype)
        self._weights = np.empty(_INITIAL_SETS, dtype=np.float64)
        self._total_weight = 0.0
        self._inv: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._gains0: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of graph nodes the collection refers to."""
        return self._num_nodes

    @property
    def num_sets(self) -> int:
        """Number of RR sets generated so far (including empty ones)."""
        return self._num_sets

    @property
    def total_weight(self) -> float:
        """Sum of the weights of all (non-empty and empty) RR sets."""
        return self._total_weight

    # ------------------------------------------------------------------
    # the packed-coverage protocol
    # ------------------------------------------------------------------
    def _packed(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (self._offsets[:self._num_sets + 1],
                self._members[:self._num_members],
                self._weights[:self._num_sets])

    def _inverted(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._inv is None:
            offsets, members, weights = self._packed()
            self._inv = build_inverted_csr(offsets, members, weights,
                                           self._num_nodes)
        return self._inv

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def _reserve_sets(self, extra: int) -> None:
        need = self._num_sets + extra
        capacity = len(self._weights)
        if need <= capacity:
            return
        capacity = max(capacity, 1)  # _from_packed may install empty buffers
        while capacity < need:
            capacity *= 2
        offsets = np.zeros(capacity + 1, dtype=np.int64)
        offsets[:self._num_sets + 1] = self._offsets[:self._num_sets + 1]
        self._offsets = offsets
        weights = np.empty(capacity, dtype=np.float64)
        weights[:self._num_sets] = self._weights[:self._num_sets]
        self._weights = weights

    def _reserve_members(self, extra: int) -> None:
        need = self._num_members + extra
        capacity = len(self._members)
        if need <= capacity:
            return
        capacity = max(capacity, 1)  # _from_packed may install empty buffers
        while capacity < need:
            capacity *= 2
        members = np.empty(capacity, dtype=self._id_dtype)
        members[:self._num_members] = self._members[:self._num_members]
        self._members = members

    def _as_members(self, nodes) -> np.ndarray:
        # bounds-check at full width BEFORE narrowing, so an out-of-range
        # id can never wrap around an int32 cast into a valid-looking one
        nodes = np.asarray(nodes, dtype=np.int64).ravel()
        if len(nodes) and (nodes.min() < 0 or nodes.max() >= self._num_nodes):
            raise AlgorithmError(
                f"RR-set members must be node ids in [0, {self._num_nodes})")
        return nodes.astype(self._id_dtype, copy=False)

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def add(self, nodes: np.ndarray, weight: float = 1.0) -> None:
        """Append one RR set with the given weight."""
        nodes = self._as_members(nodes)
        weight = float(weight)
        self._reserve_sets(1)
        self._reserve_members(len(nodes))
        start = self._num_members
        self._members[start:start + len(nodes)] = nodes
        self._num_members += len(nodes)
        self._weights[self._num_sets] = weight
        self._num_sets += 1
        self._offsets[self._num_sets] = self._num_members
        self._total_weight += weight
        if weight > 0.0 and len(nodes):
            # empty/zero-weight sets are never indexed and never gain
            self._inv = None
            self._gains0 = None

    def extend(self, sets: Iterable[Tuple[np.ndarray, float]]) -> None:
        """Append many ``(nodes, weight)`` pairs in one batch.

        Equivalent to calling :meth:`add` per pair but the member buffer is
        filled with one concatenate.  A :class:`PackedRRBatch` takes the
        zero-copy splice of :meth:`extend_packed` — the merge path of the
        sharded parallel builder.
        """
        if isinstance(sets, PackedRRBatch):
            self.extend_packed(sets)
            return
        pairs = [(self._as_members(nodes), float(weight))
                 for nodes, weight in sets]
        if not pairs:
            return
        lengths = np.array([len(nodes) for nodes, _ in pairs],
                           dtype=np.int64)
        width = int(lengths.sum())
        self._reserve_sets(len(pairs))
        self._reserve_members(width)
        start = self._num_members
        if width:
            chunks = [nodes for nodes, _ in pairs if len(nodes)]
            self._members[start:start + width] = np.concatenate(chunks)
        self._offsets[self._num_sets + 1:self._num_sets + 1 + len(pairs)] \
            = start + np.cumsum(lengths)
        new_weights = np.array([weight for _, weight in pairs],
                               dtype=np.float64)
        self._weights[self._num_sets:self._num_sets + len(pairs)] \
            = new_weights
        self._num_sets += len(pairs)
        self._num_members += width
        # sequential accumulation: bit-identical to repeated add() calls
        # (tolist() keeps the running total a Python float, like add does)
        for weight in new_weights.tolist():
            self._total_weight += weight
        if np.any((new_weights > 0.0) & (lengths > 0)):
            self._inv = None
            self._gains0 = None

    def extend_packed(self, batch: PackedRRBatch) -> None:
        """Splice a :class:`PackedRRBatch` with one bulk CSR copy.

        Bit-identical to :meth:`extend` over the batch's ``(nodes,
        weight)`` pairs — offsets, members, weights and the sequentially
        accumulated total land byte for byte the same — but the member
        buffer is written with a single slice assignment and the offsets
        with one shifted copy, no per-set Python loop.
        """
        new_sets = batch.num_sets
        if new_sets == 0:
            return
        nodes = batch.nodes
        # bounds-check at the batch's full width BEFORE narrowing (the
        # same wrap-around guard as _as_members)
        if len(nodes) and (int(nodes.min()) < 0
                           or int(nodes.max()) >= self._num_nodes):
            raise AlgorithmError(
                f"RR-set members must be node ids in [0, {self._num_nodes})")
        nodes = nodes.astype(self._id_dtype, copy=False)
        width = batch.num_members
        self._reserve_sets(new_sets)
        self._reserve_members(width)
        start = self._num_members
        if width:
            self._members[start:start + width] = nodes
        self._offsets[self._num_sets + 1:self._num_sets + 1 + new_sets] \
            = start + batch.offsets[1:]
        self._weights[self._num_sets:self._num_sets + new_sets] \
            = batch.weights
        self._num_sets += new_sets
        self._num_members += width
        # sequential accumulation: bit-identical to repeated add() calls
        for weight in batch.weights.tolist():
            self._total_weight += weight
        if np.any((batch.weights > 0.0) & (np.diff(batch.offsets) > 0)):
            self._inv = None
            self._gains0 = None

    # ------------------------------------------------------------------
    def average_set_size(self) -> float:
        """Mean number of nodes per RR set (empty sets included).

        O(1): the member and set counters are maintained by ``add`` and
        ``extend`` rather than re-scanned per call.
        """
        if self._num_sets == 0:
            return 0.0
        return self._num_members / self._num_sets

    def freeze(self, meta=None, compact: bool = False) -> "FrozenRRIndex":
        """Freeze into an immutable :class:`FrozenRRIndex`, zero-copy.

        The frozen index receives trimmed *views* of the packed buffers
        (and the cached inverted CSR, when built), so freezing costs O(1)
        beyond any pending inverted-index build.  Later appends to this
        collection never mutate existing entries — doubling reallocates and
        in-place appends only write past the frozen views — so the handoff
        is safe.

        The views pin the doubling-grown backing buffers (up to ~2x the
        live data).  Pass ``compact=True`` to copy-trim instead — the
        right call when the collection is discarded after freezing and the
        index is long-lived (the ``build_index`` → ``AllocationService``
        path).
        """
        from repro.index.frozen import FrozenRRIndex

        offsets, members, weights = self._packed()
        if compact:
            offsets, members, weights = (offsets.copy(), members.copy(),
                                         weights.copy())
        frozen = FrozenRRIndex(self._num_nodes, offsets, members, weights,
                               meta=meta, inverted=self._inv)
        if self._gains0 is not None:
            frozen._gains0 = self._gains0  # read-only cache, safe to share
        return frozen

    @classmethod
    def _from_packed(cls, num_nodes: int, offsets: np.ndarray,
                     members: np.ndarray,
                     weights: np.ndarray) -> "RRCollection":
        """Rebuild a growable collection around copies of packed arrays.

        The member dtype of the source arrays is preserved when it is a
        valid id dtype for ``num_nodes`` (so an int64 v1 index round-trips
        as int64); anything else is normalized to :func:`min_id_dtype`.
        """
        members = np.asarray(members)
        id_dtype = members.dtype
        if id_dtype.kind != "i" or \
                int(num_nodes) > np.iinfo(id_dtype).max:
            id_dtype = min_id_dtype(num_nodes)
        collection = cls(int(num_nodes), id_dtype=id_dtype)
        collection._offsets = np.array(offsets, dtype=np.int64)
        collection._members = np.array(members, dtype=id_dtype)
        collection._weights = np.array(weights, dtype=np.float64)
        collection._num_sets = len(collection._weights)
        collection._num_members = len(collection._members)
        total = 0.0
        for weight in collection._weights:
            total += weight
        collection._total_weight = float(total)
        return collection


@dataclass
class SelectionResult:
    """Greedy node-selection outcome.

    ``seeds`` is ordered by selection, so its length-``k'`` prefixes are the
    greedy solutions for every smaller budget — the property PRIMA+'s prefix
    preservation relies on.  ``covered_weight`` is ``M_R(S)`` for the full
    seed list, and ``prefix_weights[i]`` the coverage of the first ``i + 1``
    seeds.

    ``saturated_at`` is the number of seeds that had positive marginal
    gain: ``seeds[saturated_at:]`` (present only under the default
    ``on_saturation="pad"``) cover nothing, and under
    ``on_saturation="stop"`` the selection was truncated there
    (``saturated_at == len(seeds)``).  ``None`` means the selection never
    saturated within its budget.
    """

    seeds: List[int]
    covered_weight: float
    prefix_weights: List[float]
    saturated_at: Optional[int] = None

    def prefix(self, k: int) -> List[int]:
        """First ``k`` selected seeds."""
        return self.seeds[:k]


def node_selection(collection, k: int, strategy: Optional[str] = None,
                   on_saturation: str = SATURATION_PAD) -> SelectionResult:
    """Greedy weighted maximum coverage (Algorithm 5, ``NodeSelection``).

    Selects ``k`` nodes one at a time, each maximizing the additional
    weight of newly covered RR sets, with exact gains throughout.

    Parameters
    ----------
    collection:
        A growable :class:`RRCollection` or a frozen
        :class:`~repro.index.frozen.FrozenRRIndex` — any
        :class:`PackedCoverage` — so selections over a frozen index are
        bit-identical to selections over the collection it was built from.
        Objects implementing only the plain accessor methods
        (``num_nodes``, ``num_sets``, ``weights()``, ``initial_gains()``,
        ``sets_covered_by``, ``set_members``) are served by the reference
        loop regardless of ``strategy``.
    strategy:
        One of :data:`SELECTION_STRATEGIES`; ``None`` resolves to the
        ``REPRO_SELECTION`` environment variable, defaulting to
        ``"lazy"``.  All strategies return bit-identical results — the
        knob trades constant factors only.
    on_saturation:
        The stop-or-pad rule (see the module docstring): ``"pad"`` (the
        default, preserving PRIMA+'s always-``k``-seeds prefix semantics)
        or ``"stop"``.
    """
    if k < 0:
        raise AlgorithmError("k must be >= 0")
    if on_saturation not in _SATURATION_MODES:
        raise AlgorithmError(
            f"unknown on_saturation mode {on_saturation!r}; "
            f"expected one of {list(_SATURATION_MODES)}")
    strategy = resolve_strategy(strategy)
    k = min(int(k), collection.num_nodes)
    started = time.perf_counter()
    if strategy == STRATEGY_REFERENCE or not hasattr(collection, "_packed"):
        result = _select_reference(collection, k, on_saturation)
        _observe_selection(STRATEGY_REFERENCE, "total",
                           time.perf_counter() - started)
        return result
    result = _select_packed(collection, k, on_saturation,
                            lazy=strategy == STRATEGY_LAZY)
    _observe_selection(strategy, "total", time.perf_counter() - started)
    return result


def _select_reference(collection, k: int,
                      on_saturation: str) -> SelectionResult:
    """The retained pure-Python greedy oracle (pre-packed-store loop)."""
    n = collection.num_nodes
    gains = collection.initial_gains()
    weights = collection.weights()
    covered = np.zeros(collection.num_sets, dtype=bool)
    selected: List[int] = []
    prefix_weights: List[float] = []
    total = 0.0
    saturated_at: Optional[int] = None
    chosen = np.zeros(n, dtype=bool)
    for _ in range(k):
        candidate = int(np.argmax(np.where(chosen, -np.inf, gains)))
        if chosen[candidate]:
            break
        chosen[candidate] = True
        covered_new = 0
        for set_index in collection.sets_covered_by(candidate):
            if covered[set_index]:
                continue
            covered[set_index] = True
            covered_new += 1
            weight = weights[set_index]
            total += weight
            for node in collection.set_members(set_index):
                gains[int(node)] -= weight
        if covered_new == 0 and saturated_at is None:
            saturated_at = len(selected)
            if on_saturation == SATURATION_STOP:
                break
        selected.append(candidate)
        prefix_weights.append(total)
    return SelectionResult(seeds=selected, covered_weight=total,
                           prefix_weights=prefix_weights,
                           saturated_at=saturated_at)


def _select_packed(collection, k: int, on_saturation: str,
                   lazy: bool) -> SelectionResult:
    """Vectorized greedy over the packed CSR buffers (eager or lazy).

    Both variants maintain the gains array with the identical sequence of
    IEEE-754 operations as the reference loop (``np.bincount`` /
    ``np.subtract.at`` / per-set total accumulation are all sequential in
    the same set-major order), so seeds, totals and prefix weights agree
    bit for bit across all three strategies.
    """
    strategy = STRATEGY_LAZY if lazy else STRATEGY_EAGER
    setup_started = time.perf_counter()
    n = collection.num_nodes
    offsets, members, weights = collection._packed()
    inv_offsets, inv_sets = collection._inverted()
    gains = collection.initial_gains()
    _observe_selection(strategy, "gains_init",
                       time.perf_counter() - setup_started)
    loop_started = time.perf_counter()
    covered = np.zeros(collection.num_sets, dtype=bool)
    selected: List[int] = []
    prefix_weights: List[float] = []
    total = 0.0
    saturated_at: Optional[int] = None

    def commit(candidate: int) -> int:
        """Cover the candidate's uncovered sets and update gains/total.

        Returns the number of newly covered sets (0 signals saturation).
        """
        nonlocal total
        postings = inv_sets[inv_offsets[candidate]:inv_offsets[candidate + 1]]
        new = postings[~covered[postings]]
        if not len(new):
            return 0
        if len(new) > 1:
            # a duplicated member would duplicate its posting; postings are
            # ascending, so dropping adjacent repeats reproduces the
            # reference loop's skip-already-covered behaviour exactly
            keep = np.ones(len(new), dtype=bool)
            np.not_equal(new[1:], new[:-1], out=keep[1:])
            new = new[keep]
        covered[new] = True
        starts = offsets[new]
        lengths = offsets[new + 1] - starts
        width = int(lengths.sum())
        # gather the concatenated members of the newly covered sets: for
        # each set a contiguous member range, expanded CSR-style
        positions = np.arange(width, dtype=np.int64) \
            + np.repeat(starts - (np.cumsum(lengths) - lengths), lengths)
        np.subtract.at(gains, members[positions],
                       np.repeat(weights[new], lengths))
        # per-set sequential accumulation (np.sum's pairwise reduction
        # would round differently from the reference oracle)
        for weight in weights[new]:
            total += weight
        return len(new)

    if lazy:
        # CELF lazy greedy: heap keys are upper bounds (gains only ever
        # shrink); a popped candidate whose key still equals its exact
        # maintained gain is the argmax — including the lowest-node-id
        # tie-break, because stale keys re-enter at their exact value and
        # the heap orders (-gain, node) lexicographically.  Keys live as
        # Python floats (bitwise the same doubles, far cheaper to compare
        # than boxed np.float64 scalars).
        heap = [(-gain, node) for node, gain in enumerate(gains.tolist())]
        heapq.heapify(heap)
        while len(selected) < k and heap:
            negative_gain, candidate = heapq.heappop(heap)
            current = gains.item(candidate)
            if -negative_gain != current:
                # stale upper bound; but if the exact value still STRICTLY
                # dominates every remaining upper bound the candidate is
                # the unique argmax (no tie-break in play) — select it
                # without bouncing through the heap
                if heap and -current >= heap[0][0]:
                    heapq.heappush(heap, (-current, candidate))
                    continue
            if commit(candidate) == 0 and saturated_at is None:
                saturated_at = len(selected)
                if on_saturation == SATURATION_STOP:
                    break
            selected.append(candidate)
            prefix_weights.append(total)
    else:
        chosen = np.zeros(n, dtype=bool)
        while len(selected) < k:
            candidate = int(np.argmax(np.where(chosen, -np.inf, gains)))
            if chosen[candidate]:
                break
            chosen[candidate] = True
            if commit(candidate) == 0 and saturated_at is None:
                saturated_at = len(selected)
                if on_saturation == SATURATION_STOP:
                    break
            selected.append(candidate)
            prefix_weights.append(total)
    _observe_selection(strategy, "select_loop",
                       time.perf_counter() - loop_started)
    return SelectionResult(seeds=selected, covered_weight=total,
                           prefix_weights=prefix_weights,
                           saturated_at=saturated_at)


__all__ = [
    "SELECTION_STRATEGIES",
    "SELECTION_ENV_VAR",
    "STRATEGY_LAZY",
    "STRATEGY_EAGER",
    "STRATEGY_REFERENCE",
    "SATURATION_PAD",
    "SATURATION_STOP",
    "default_strategy",
    "resolve_strategy",
    "min_id_dtype",
    "min_set_dtype",
    "build_inverted_csr",
    "PackedCoverage",
    "PackedRRBatch",
    "RRCollection",
    "SelectionResult",
    "node_selection",
]
