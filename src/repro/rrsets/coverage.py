"""RR-set collections and greedy (weighted) maximum coverage.

The node-selection phase of IMM, PRIMA+ and SupGRD is a weighted maximum
coverage problem over the sampled RR sets: pick ``k`` nodes maximizing the
total weight of the RR sets they hit.  :class:`RRCollection` stores the sets
together with an inverted node -> set index so the greedy selection
(:func:`node_selection`, Algorithm 5 in the paper) runs in time linear in
the total size of the covered sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AlgorithmError


class RRCollection:
    """A growable collection of (possibly weighted) RR sets.

    Empty RR sets (as produced by marginal sampling when the reverse BFS
    hits the fixed seed set) still count towards :attr:`num_sets` — they can
    never be covered, which is exactly what makes coverage estimates
    marginal.
    """

    def __init__(self, num_nodes: int) -> None:
        self._num_nodes = int(num_nodes)
        self._sets: List[np.ndarray] = []
        self._weights: List[float] = []
        self._inverted: Dict[int, List[int]] = {}
        self._total_weight = 0.0

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of graph nodes the collection refers to."""
        return self._num_nodes

    @property
    def num_sets(self) -> int:
        """Number of RR sets generated so far (including empty ones)."""
        return len(self._sets)

    @property
    def total_weight(self) -> float:
        """Sum of the weights of all (non-empty and empty) RR sets."""
        return self._total_weight

    def add(self, nodes: np.ndarray, weight: float = 1.0) -> None:
        """Append one RR set with the given weight."""
        index = len(self._sets)
        nodes = np.asarray(nodes, dtype=np.int64)
        self._sets.append(nodes)
        self._weights.append(float(weight))
        self._total_weight += float(weight)
        if weight > 0.0:
            for node in nodes:
                self._inverted.setdefault(int(node), []).append(index)

    def extend(self, sets: Iterable[Tuple[np.ndarray, float]]) -> None:
        """Append many ``(nodes, weight)`` pairs in one batch.

        Equivalent to calling :meth:`add` per pair but the inverted index is
        updated in bulk (one argsort over the concatenated nodes instead of a
        Python dict operation per node occurrence) — this is the merge path
        the sharded parallel builder relies on.
        """
        pairs = [(np.asarray(nodes, dtype=np.int64), float(weight))
                 for nodes, weight in sets]
        if not pairs:
            return
        base = len(self._sets)
        for nodes, weight in pairs:
            self._sets.append(nodes)
            self._weights.append(weight)
            self._total_weight += weight
        # bulk inverted-index update: concatenate the nodes of all
        # positive-weight sets (set-major, so per-node posting lists stay in
        # ascending set order, exactly as repeated add() calls would leave
        # them) and group by node with one stable argsort.
        chunks = [nodes for nodes, weight in pairs
                  if weight > 0.0 and len(nodes)]
        set_ids = [np.full(len(nodes), base + offset, dtype=np.int64)
                   for offset, (nodes, weight) in enumerate(pairs)
                   if weight > 0.0 and len(nodes)]
        if not chunks:
            return
        all_nodes = np.concatenate(chunks)
        all_sets = np.concatenate(set_ids)
        order = np.argsort(all_nodes, kind="stable")
        all_nodes = all_nodes[order]
        all_sets = all_sets[order]
        boundaries = np.nonzero(np.diff(all_nodes))[0] + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(all_nodes)]))
        for start, stop in zip(starts, stops):
            node = int(all_nodes[start])
            self._inverted.setdefault(node, []).extend(
                int(s) for s in all_sets[start:stop])

    def weights(self) -> np.ndarray:
        """Weights of all RR sets as an array."""
        return np.asarray(self._weights, dtype=np.float64)

    def sets_covered_by(self, node: int) -> Sequence[int]:
        """Indices of the RR sets containing ``node``."""
        return self._inverted.get(int(node), ())

    def set_members(self, set_index: int) -> np.ndarray:
        """Node ids of the RR set ``set_index`` (in stored order)."""
        return self._sets[set_index]

    def initial_gains(self) -> np.ndarray:
        """Per-node coverage gain of an empty selection (``M_R({v})``).

        Entry ``v`` is the total weight of the RR sets containing ``v`` —
        the starting gains of the greedy :func:`node_selection`.
        """
        gains = np.zeros(self._num_nodes, dtype=np.float64)
        weights = self.weights()
        for node, set_indices in self._inverted.items():
            gains[node] = float(sum(weights[i] for i in set_indices))
        return gains

    def covered_weight(self, seeds: Iterable[int]) -> float:
        """Total weight of RR sets hit by ``seeds`` (``M_R(S)`` in the paper)."""
        covered: set = set()
        for node in seeds:
            covered.update(self._inverted.get(int(node), ()))
        return float(sum(self._weights[i] for i in covered))

    def coverage_fraction(self, seeds: Iterable[int]) -> float:
        """``F_R(S)``: covered weight divided by the number of RR sets."""
        if not self._sets:
            return 0.0
        return self.covered_weight(seeds) / len(self._sets)

    def average_set_size(self) -> float:
        """Mean number of nodes per RR set (empty sets included)."""
        if not self._sets:
            return 0.0
        return float(np.mean([len(s) for s in self._sets]))


@dataclass
class SelectionResult:
    """Greedy node-selection outcome.

    ``seeds`` is ordered by selection, so its length-``k'`` prefixes are the
    greedy solutions for every smaller budget — the property PRIMA+'s prefix
    preservation relies on.  ``covered_weight`` is ``M_R(S)`` for the full
    seed list, and ``prefix_weights[i]`` the coverage of the first ``i + 1``
    seeds.
    """

    seeds: List[int]
    covered_weight: float
    prefix_weights: List[float]

    def prefix(self, k: int) -> List[int]:
        """First ``k`` selected seeds."""
        return self.seeds[:k]


def node_selection(collection, k: int) -> SelectionResult:
    """Greedy weighted maximum coverage (Algorithm 5, ``NodeSelection``).

    Selects ``k`` nodes one at a time, each maximizing the additional weight
    of newly covered RR sets, with exact incremental gain updates.

    ``collection`` may be a growable :class:`RRCollection` or a frozen
    :class:`~repro.index.frozen.FrozenRRIndex` — anything exposing
    ``num_nodes``, ``num_sets``, ``weights()``, ``initial_gains()``,
    ``sets_covered_by(node)`` and ``set_members(set_index)`` with the same
    posting/member ordering, so selections over a frozen index are
    bit-identical to selections over the collection it was built from.
    """
    if k < 0:
        raise AlgorithmError("k must be >= 0")
    n = collection.num_nodes
    k = min(k, n)
    gains = collection.initial_gains()
    weights = collection.weights()
    covered = np.zeros(collection.num_sets, dtype=bool)
    selected: List[int] = []
    prefix_weights: List[float] = []
    total = 0.0
    chosen = np.zeros(n, dtype=bool)
    for _ in range(k):
        candidate = int(np.argmax(np.where(chosen, -np.inf, gains)))
        if chosen[candidate]:
            break
        chosen[candidate] = True
        selected.append(candidate)
        for set_index in collection.sets_covered_by(candidate):
            if covered[set_index]:
                continue
            covered[set_index] = True
            weight = weights[set_index]
            total += weight
            for node in collection.set_members(set_index):
                gains[int(node)] -= weight
        prefix_weights.append(total)
    return SelectionResult(seeds=selected, covered_weight=total,
                           prefix_weights=prefix_weights)


__all__ = ["RRCollection", "SelectionResult", "node_selection"]
