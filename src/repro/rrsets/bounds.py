"""Martingale sampling bounds of IMM (Tang et al.) used by the paper.

The sampling phase of IMM — and of PRIMA+ / SupGRD which extend it — needs
two quantities (paper §5.3, Eqs. 6–8):

* ``λ*`` (Eq. 6): the number of RR sets required, *per unit of OPT*, for the
  final node selection to be a ``(1 - 1/e - ε)``-approximation w.h.p.:
  ``λ* = 2n((1 - 1/e)·α + β)² ε⁻²`` with
  ``α = sqrt(ℓ ln n + ln 2)`` and
  ``β = sqrt((1 - 1/e)(ln C(n, k) + ℓ ln n + ln 2))``.
* ``λ'`` (Eq. 8): the number used during the statistical test that searches
  for a lower bound of OPT:
  ``λ' = (2 + 2/3 ε')(ln C(n, k) + ℓ' ln n + ln log2 n) · n / ε'²``.

Both use ``ln C(n, k)`` computed with log-gamma so huge ``n`` never
overflows.
"""

from __future__ import annotations

import math

from repro.exceptions import AlgorithmError


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` computed stably via log-gamma."""
    if k < 0 or n < 0:
        raise AlgorithmError("n and k must be non-negative")
    if k > n:
        return float("-inf")
    if k == 0 or k == n:
        return 0.0
    return (math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1))


def lambda_star(n: int, k: int, epsilon: float, ell: float) -> float:
    """``λ*`` of Eq. (6): RR sets per unit of OPT for the final selection."""
    if n < 1:
        raise AlgorithmError("n must be >= 1")
    if epsilon <= 0:
        raise AlgorithmError("epsilon must be > 0")
    one_minus_inv_e = 1.0 - 1.0 / math.e
    log_n = math.log(max(n, 2))
    alpha = math.sqrt(ell * log_n + math.log(2.0))
    beta = math.sqrt(one_minus_inv_e
                     * (log_binomial(n, min(k, n)) + ell * log_n + math.log(2.0)))
    return 2.0 * n * (one_minus_inv_e * alpha + beta) ** 2 / (epsilon ** 2)


def lambda_prime(n: int, k: int, epsilon_prime: float, ell_prime: float) -> float:
    """``λ'`` of Eq. (8): RR sets per unit of the guess ``x`` in the search."""
    if n < 1:
        raise AlgorithmError("n must be >= 1")
    if epsilon_prime <= 0:
        raise AlgorithmError("epsilon_prime must be > 0")
    log_n = math.log(max(n, 2))
    log_log = math.log(max(math.log2(max(n, 2)), 2.0))
    return ((2.0 + 2.0 / 3.0 * epsilon_prime)
            * (log_binomial(n, min(k, n)) + ell_prime * log_n + log_log)
            * n / (epsilon_prime ** 2))


def adjusted_ell(n: int, ell: float, num_budgets: int = 1) -> float:
    """``ℓ`` adjusted so a union bound over the search (and over multiple
    budgets in PRIMA+) still yields overall success probability
    ``1 - 1/n^ℓ``: ``ℓ' = log_n(n^ℓ · |b|) = ℓ + ln|b|/ln n`` after the usual
    ``ℓ ← ℓ + ln 2 / ln n`` correction."""
    log_n = math.log(max(n, 2))
    ell = ell + math.log(2.0) / log_n
    if num_budgets > 1:
        ell = ell + math.log(num_budgets) / log_n
    return ell


__all__ = ["log_binomial", "lambda_star", "lambda_prime", "adjusted_ell"]
