"""The IMM algorithm (Tang et al., SIGMOD 2015) and its generic engine.

IMM alternates a *sampling* phase — which searches for a lower bound on the
optimum via a statistical test with exponentially decreasing guesses — and a
*node-selection* phase (greedy maximum coverage over the sampled RR sets).
The paper reuses exactly this skeleton three times:

* plain IMM on standard RR sets (the single-item seed selector used to fix
  the inferior item's seeds in §6.2.3 and inside the TCIM baseline);
* PRIMA+ on *marginal* RR sets (the seed selector inside SeqGRD/MaxGRD);
* SupGRD on *weighted* RR sets (welfare units instead of spread units).

:func:`run_imm_engine` implements the shared skeleton generically over a
sampler callback; :func:`imm` is the classic single-item instantiation.
The engine regenerates a fresh RR collection for the final node selection,
following the fix of Chen (arXiv:1808.09363) cited by the paper.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.config import ENGINE_VECTORIZED, resolve_engine
from repro.exceptions import AlgorithmError
from repro.graphs.graph import DirectedGraph
from repro.rrsets.bounds import adjusted_ell, lambda_prime, lambda_star
from repro.rrsets.coverage import RRCollection, SelectionResult, node_selection
from repro.rrsets.rrset import marginal_rr_set, random_rr_set
from repro.utils.rng import RngLike, derive_seed, ensure_rng

#: A sampler returns one RR set as ``(nodes, weight)``.
Sampler = Callable[[np.random.Generator], Tuple[np.ndarray, float]]

#: A batch sampler returns ``count`` RR sets as ``(nodes, weight)`` pairs.
BatchSampler = Callable[[np.random.Generator, int],
                        Sequence[Tuple[np.ndarray, float]]]

#: A parallel sampler returns ``count`` fresh RR sets; it owns its own
#: deterministic seeding (see :class:`repro.index.builder.ParallelRRSampler`).
ParallelSampler = Callable[[int], Sequence[Tuple[np.ndarray, float]]]


@dataclass
class IMMOptions:
    """Tunable parameters of the IMM engine.

    ``epsilon`` and ``ell`` are the accuracy/confidence parameters of the
    paper (defaults ε = 0.5, ℓ = 1 as in §6.1.3).  ``max_rr_sets`` caps the
    number of sampled RR sets so pure-Python runs stay tractable on large
    inputs; the theoretical guarantees assume the cap is not hit.
    """

    epsilon: float = 0.5
    ell: float = 1.0
    max_rr_sets: int = 200_000
    min_rr_sets: int = 256
    fresh_final_sampling: bool = True


@dataclass
class IMMResult:
    """Result of one IMM-engine run.

    ``seeds`` is in greedy selection order (its prefixes are the greedy
    solutions for smaller budgets).  ``estimated_value`` is
    ``n · M_R(S) / θ`` — an estimate of the objective (spread for plain IMM,
    marginal spread for PRIMA+, marginal welfare for SupGRD).

    ``cap_hit`` records whether sampling was truncated at
    ``IMMOptions.max_rr_sets``: when true the theoretical guarantees do not
    hold and downstream welfare estimates should not be trusted blindly.
    ``collection`` carries the final RR collection when the engine was run
    with ``keep_collection=True`` (used to freeze persistent indexes).
    """

    seeds: List[int]
    estimated_value: float
    prefix_values: List[float]
    num_rr_sets: int
    lower_bound: float
    sampling_rounds: int
    cap_hit: bool = False
    collection: Optional[RRCollection] = field(default=None, repr=False,
                                               compare=False)

    def prefix(self, k: int) -> List[int]:
        """First ``k`` seeds (greedy prefix)."""
        return self.seeds[:k]

    def prefix_value(self, k: int) -> float:
        """Estimated objective value of the first ``k`` seeds."""
        if k <= 0 or not self.prefix_values:
            return 0.0
        return self.prefix_values[min(k, len(self.prefix_values)) - 1]


def run_imm_engine(num_nodes: int, k: int, sampler: Sampler,
                   max_value: float,
                   options: Optional[IMMOptions] = None,
                   num_budgets: int = 1,
                   rng: RngLike = None,
                   batch_sampler: Optional[BatchSampler] = None,
                   parallel_sampler: Optional[ParallelSampler] = None,
                   keep_collection: bool = False,
                   selection_strategy: Optional[str] = None,
                   final_sink=None,
                   final_chunk_sets: int = 65_536) -> IMMResult:
    """Run the IMM sampling + node-selection skeleton.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n`` of the underlying graph.
    k:
        Number of seeds to select (the budget).
    sampler:
        Callable producing one RR set ``(nodes, weight)`` per call.
    max_value:
        Upper bound on the optimum in the objective's units (``n`` for
        spread, ``n · u_max`` for welfare) — the binary search for the lower
        bound starts here.
    options:
        :class:`IMMOptions`; defaults to the paper's ε = 0.5, ℓ = 1.
    num_budgets:
        Number of budgets sharing the confidence budget (PRIMA+ passes the
        length of its budget vector so the union bound still holds).
    batch_sampler:
        Optional callable producing ``count`` RR sets per call; when given,
        the sampling phases request whole batches from it (the vectorized
        engine) instead of calling ``sampler`` once per set.
    parallel_sampler:
        Optional callable producing ``count`` fresh RR sets with its own
        deterministic seeding (the sharded multiprocessing builder); takes
        precedence over ``batch_sampler`` and ``sampler``.  May return a
        sequence of ``(nodes, weight)`` pairs or a packed
        :class:`~repro.rrsets.coverage.PackedRRBatch` — collections and
        streaming sinks splice packed batches without a per-pair loop.
    keep_collection:
        When true, the final RR collection is returned on
        ``IMMResult.collection`` so callers can freeze it into a persistent
        index.
    selection_strategy:
        Greedy-selection strategy for the node-selection phases
        (:data:`repro.rrsets.coverage.SELECTION_STRATEGIES`); all
        strategies return bit-identical selections, so this only trades
        selection speed.
    final_sink:
        Optional streaming sink (an object with ``append(pairs)``, e.g.
        :class:`repro.index.stream.StreamingIndexWriter`) receiving the
        final sampling phase in bounded chunks instead of an in-RAM
        collection.  Requires ``parallel_sampler`` (the sharded sampler's
        SeedSequence layout is what keeps chunked generation bit-identical
        to one-shot generation) and ``fresh_final_sampling``.  The engine
        then performs **no final node selection** — the returned result
        carries empty ``seeds`` and the θ bookkeeping; the caller runs
        selection over the finalized index, which is bit-identical by the
        packed-coverage protocol.
    final_chunk_sets:
        RR sets per streamed chunk; rounded up to a multiple of the
        sampler's shard size by callers so chunk boundaries never change
        the shard layout.
    """
    options = options or IMMOptions()
    rng = ensure_rng(rng)
    if num_nodes <= 0:
        raise AlgorithmError("the graph must contain at least one node")
    k = max(0, min(int(k), num_nodes))
    if k == 0:
        return IMMResult(seeds=[], estimated_value=0.0, prefix_values=[],
                         num_rr_sets=0, lower_bound=0.0, sampling_rounds=0)
    if max_value <= 0:
        raise AlgorithmError("max_value must be > 0")

    epsilon = options.epsilon
    epsilon_prime = math.sqrt(2.0) * epsilon
    ell_adj = adjusted_ell(num_nodes, options.ell, num_budgets)
    lam_prime = lambda_prime(num_nodes, k, epsilon_prime, ell_adj)
    lam_star = lambda_star(num_nodes, k, epsilon, ell_adj)

    collection = RRCollection(num_nodes)
    cap_hit = False

    def ensure_samples(target: float, into: RRCollection) -> None:
        nonlocal cap_hit
        requested = int(math.ceil(target))
        if requested > options.max_rr_sets:
            cap_hit = True
        target = min(requested, options.max_rr_sets)
        if parallel_sampler is not None:
            missing = target - into.num_sets
            if missing > 0:
                into.extend(parallel_sampler(missing))
            return
        if batch_sampler is not None:
            while into.num_sets < target:
                into.extend(batch_sampler(rng, target - into.num_sets))
            return
        while into.num_sets < target:
            nodes, weight = sampler(rng)
            into.add(nodes, weight)

    # --- sampling phase: search for a lower bound on OPT ----------------
    lower_bound = 1.0
    sampling_rounds = 0
    max_rounds = max(1, int(math.ceil(math.log2(max(max_value, 2.0)))) - 1)
    for i in range(1, max_rounds + 1):
        sampling_rounds += 1
        x = max_value / (2.0 ** i)
        if x <= 0:
            break
        ensure_samples(lam_prime / x, collection)
        selection = node_selection(collection, k,
                                   strategy=selection_strategy)
        estimate = (num_nodes * selection.covered_weight
                    / max(collection.num_sets, 1))
        if estimate >= (1.0 + epsilon_prime) * x:
            lower_bound = estimate / (1.0 + epsilon_prime)
            break
        if collection.num_sets >= options.max_rr_sets:
            # the cap was hit: use the best estimate seen so far
            cap_hit = True
            lower_bound = max(lower_bound, estimate)
            break

    # --- final sampling and node selection ------------------------------
    theta = lam_star / max(lower_bound, 1e-12)
    if theta > options.max_rr_sets:
        cap_hit = True
    theta = min(theta, options.max_rr_sets)
    theta = max(theta, options.min_rr_sets)
    if final_sink is not None:
        if parallel_sampler is None:
            raise AlgorithmError(
                "streaming final sampling requires the sharded parallel "
                "sampler (pass workers=)")
        if not options.fresh_final_sampling:
            raise AlgorithmError(
                "streaming final sampling requires fresh_final_sampling")
        # identical to ensure_samples' request arithmetic
        target = min(int(math.ceil(theta)), options.max_rr_sets)
        chunk_sets = max(1, int(final_chunk_sets))
        remaining = target
        while remaining > 0:
            step = min(chunk_sets, remaining)
            final_sink.append(parallel_sampler(step))
            remaining -= step
        if cap_hit:
            warnings.warn(
                f"IMM sampling stopped at the max_rr_sets cap "
                f"({options.max_rr_sets}); the (1 - 1/e - eps) guarantee "
                f"does not hold and the estimated objective may be biased "
                f"— raise IMMOptions.max_rr_sets for trustworthy estimates",
                RuntimeWarning, stacklevel=2)
        return IMMResult(
            seeds=[], estimated_value=0.0, prefix_values=[],
            num_rr_sets=target, lower_bound=lower_bound,
            sampling_rounds=sampling_rounds, cap_hit=cap_hit)
    if options.fresh_final_sampling:
        final_collection = RRCollection(num_nodes)
    else:
        final_collection = collection
    ensure_samples(theta, final_collection)
    selection = node_selection(final_collection, k,
                               strategy=selection_strategy)
    scale = num_nodes / max(final_collection.num_sets, 1)
    if cap_hit:
        warnings.warn(
            f"IMM sampling stopped at the max_rr_sets cap "
            f"({options.max_rr_sets}); the (1 - 1/e - eps) guarantee does "
            f"not hold and the estimated objective may be biased — raise "
            f"IMMOptions.max_rr_sets for trustworthy estimates",
            RuntimeWarning, stacklevel=2)
    return IMMResult(
        seeds=selection.seeds,
        estimated_value=selection.covered_weight * scale,
        prefix_values=[w * scale for w in selection.prefix_weights],
        num_rr_sets=final_collection.num_sets,
        lower_bound=lower_bound,
        sampling_rounds=sampling_rounds,
        cap_hit=cap_hit,
        collection=final_collection if keep_collection else None,
    )


def imm(graph: DirectedGraph, k: int,
        options: Optional[IMMOptions] = None,
        rng: RngLike = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
        keep_collection: bool = False,
        selection_strategy: Optional[str] = None) -> IMMResult:
    """Classic single-item IMM: ``(1 - 1/e - ε)``-approximate IM seeds.

    ``workers`` switches sampling to the deterministic sharded builder
    (``workers`` processes; results are identical for every worker count at
    a fixed seed, but differ from the ``workers=None`` serial stream).
    """
    def sampler(generator: np.random.Generator) -> Tuple[np.ndarray, float]:
        return random_rr_set(graph, generator), 1.0

    batch_sampler: Optional[BatchSampler] = None
    if resolve_engine(engine) == ENGINE_VECTORIZED:
        from repro.engine.reverse import random_rr_sets

        def batch_sampler(generator: np.random.Generator, count: int):
            return [(nodes, 1.0)
                    for nodes in random_rr_sets(graph, count, generator)]

    rng = ensure_rng(rng)
    with _parallel_sampler(graph, "standard", engine, rng,
                           workers) as parallel_sampler:
        return run_imm_engine(graph.num_nodes, k, sampler,
                              max_value=float(graph.num_nodes),
                              options=options, rng=rng,
                              batch_sampler=batch_sampler,
                              parallel_sampler=parallel_sampler,
                              keep_collection=keep_collection,
                              selection_strategy=selection_strategy)


def marginal_imm(graph: DirectedGraph, k: int, fixed_seeds: Set[int],
                 options: Optional[IMMOptions] = None,
                 rng: RngLike = None,
                 engine: Optional[str] = None,
                 workers: Optional[int] = None,
                 keep_collection: bool = False,
                 selection_strategy: Optional[str] = None) -> IMMResult:
    """IMM on *marginal* RR sets: maximizes spread on top of ``fixed_seeds``."""
    blocked = set(int(v) for v in fixed_seeds)

    def sampler(generator: np.random.Generator) -> Tuple[np.ndarray, float]:
        return marginal_rr_set(graph, blocked, generator), 1.0

    batch_sampler: Optional[BatchSampler] = None
    if resolve_engine(engine) == ENGINE_VECTORIZED:
        from repro.engine.reverse import marginal_rr_sets

        def batch_sampler(generator: np.random.Generator, count: int):
            return [(nodes, 1.0)
                    for nodes in marginal_rr_sets(graph, blocked, count,
                                                  generator)]

    rng = ensure_rng(rng)
    with _parallel_sampler(graph, "marginal", engine, rng, workers,
                           blocked=blocked) as parallel_sampler:
        return run_imm_engine(graph.num_nodes, k, sampler,
                              max_value=float(graph.num_nodes),
                              options=options, rng=rng,
                              batch_sampler=batch_sampler,
                              parallel_sampler=parallel_sampler,
                              keep_collection=keep_collection,
                              selection_strategy=selection_strategy)


def _parallel_sampler(graph: DirectedGraph, kind: str, engine: Optional[str],
                      rng: np.random.Generator, workers: Optional[int],
                      **spec_kwargs):
    """Context manager yielding a sharded parallel sampler (or ``None``).

    Imports the index builder lazily so :mod:`repro.rrsets` does not depend
    on :mod:`repro.index` at import time.  Draws one seed from ``rng`` when
    the parallel path is taken, so the derived shard streams are
    reproducible from the caller's seed.
    """
    if workers is None:
        import contextlib
        return contextlib.nullcontext(None)
    from repro.index.builder import ParallelRRSampler, ShardSpec

    spec = ShardSpec(kind=kind, graph=graph,
                     engine=resolve_engine(engine), **spec_kwargs)
    return ParallelRRSampler(spec, seed=derive_seed(rng), workers=workers)


__all__ = ["IMMOptions", "IMMResult", "run_imm_engine", "imm", "marginal_imm",
           "Sampler", "BatchSampler", "ParallelSampler"]
