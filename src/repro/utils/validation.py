"""Input-validation helpers shared across the library.

These helpers raise :class:`ValueError` with descriptive messages; modules
that need library-specific exception types catch and re-raise as needed.
"""

from __future__ import annotations

from typing import Optional


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is non-negative."""
    value = float(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(value: float, name: str = "fraction",
                   allow_zero: bool = False) -> float:
    """Validate that ``value`` is a fraction in (0, 1] (or [0, 1])."""
    value = float(value)
    lower_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (lower_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value}")
    return value


def check_int_in_range(value: int, name: str, low: int,
                       high: Optional[int] = None) -> int:
    """Validate that ``value`` is an integer in ``[low, high]``."""
    if int(value) != value:
        raise ValueError(f"{name} must be an integer, got {value}")
    value = int(value)
    if value < low or (high is not None and value > high):
        upper = "inf" if high is None else str(high)
        raise ValueError(f"{name} must be in [{low}, {upper}], got {value}")
    return value


__all__ = [
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_int_in_range",
]
