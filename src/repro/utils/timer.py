"""Wall-clock timing helpers and the shared quantile implementation.

:class:`Timer` is the accumulating timer the experiment harness wraps
around its phases.  Individual measurements ("laps") are kept in a
:class:`Reservoir` — a *bounded*, deterministically decimated sample —
so a long-lived process (the serving loop measures every request) never
grows without bound, while totals and counts stay exact.

:func:`percentile` / :func:`percentile_from_counts` are the one quantile
implementation shared by the harness and the observability layer: the
fixed-bucket histograms in :mod:`repro.obs.metrics` feed their bucket
bounds and counts through the same nearest-rank rule the reservoir uses,
so a p99 reported by ``repro metrics`` and a p99 computed from a
:class:`Timer` agree on semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence
from contextlib import contextmanager

#: default bound on retained measurements per label
DEFAULT_RESERVOIR = 1024


def percentile_from_counts(values: Sequence[float], counts: Sequence[int],
                           q: float) -> float:
    """Nearest-rank percentile over ``values`` with multiplicities.

    ``values`` must be sorted ascending and ``counts[i]`` is how many
    observations ``values[i]`` stands for (for a histogram: the bucket
    upper bound and its count).  ``q`` is in ``[0, 100]``.  The
    nearest-rank rule returns the smallest value whose cumulative count
    reaches ``ceil(q/100 * N)`` — exact for raw samples, a conservative
    (upper-bound) estimate for bucketed ones.
    """
    if len(values) != len(counts):
        raise ValueError("values and counts must have equal length")
    total = 0
    for count in counts:
        if count < 0:
            raise ValueError("counts must be non-negative")
        total += count
    if total == 0:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    rank = max(1, -(-int(q * total) // 100))  # ceil(q/100 * total), >= 1
    cumulative = 0
    for value, count in zip(values, counts):
        cumulative += count
        if cumulative >= rank:
            return float(value)
    return float(values[-1])


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of raw ``samples`` (order-independent)."""
    ordered = sorted(float(v) for v in samples)
    return percentile_from_counts(ordered, [1] * len(ordered), q)


class Reservoir:
    """A bounded, deterministically decimated sample of a measurement
    stream.

    Appends are O(1) amortized.  When ``capacity`` is reached the retained
    samples are halved by keeping every other one (an evenly spaced
    subsample of the stream so far) and the keep-stride doubles, so the
    reservoir always spans the whole stream with at most ``capacity``
    points.  No randomness is involved: the same stream always retains
    the same samples.
    """

    __slots__ = ("_capacity", "_values", "_stride", "_seen")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR) -> None:
        self._capacity = max(2, int(capacity))
        self._values: List[float] = []
        self._stride = 1
        self._seen = 0

    def add(self, value: float) -> None:
        """Record one measurement (retained only on the current stride)."""
        if self._seen % self._stride == 0:
            if len(self._values) >= self._capacity:
                self._values = self._values[::2]
                self._stride *= 2
                if self._seen % self._stride != 0:
                    self._seen += 1
                    return
            self._values.append(float(value))
        self._seen += 1

    def __len__(self) -> int:
        return len(self._values)

    @property
    def seen(self) -> int:
        """Total measurements offered (retained or not)."""
        return self._seen

    def values(self) -> List[float]:
        """The retained samples, in arrival order."""
        return list(self._values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained samples."""
        return percentile(self._values, q)


@dataclass
class Timer:
    """Accumulating wall-clock timer with bounded per-label laps.

    Totals and counts are exact for every measurement ever recorded;
    per-measurement laps are retained in a bounded deterministic
    :class:`Reservoir` (``reservoir_size`` per label), so percentile
    queries stay available without unbounded memory growth.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("sampling"):
    ...     _ = sum(range(1000))
    >>> timer.total("sampling") >= 0.0
    True
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[str, int] = field(default_factory=dict)
    _laps: Dict[str, Reservoir] = field(default_factory=dict)
    reservoir_size: int = DEFAULT_RESERVOIR

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager measuring the wrapped block under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.add(label, elapsed)

    def add(self, label: str, seconds: float) -> None:
        """Record ``seconds`` of elapsed time under ``label``."""
        self._totals[label] = self._totals.get(label, 0.0) + seconds
        self._counts[label] = self._counts.get(label, 0) + 1
        reservoir = self._laps.get(label)
        if reservoir is None:
            reservoir = self._laps[label] = Reservoir(self.reservoir_size)
        reservoir.add(seconds)

    def total(self, label: Optional[str] = None) -> float:
        """Total seconds recorded for ``label`` (or over all labels)."""
        if label is None:
            return sum(self._totals.values())
        return self._totals.get(label, 0.0)

    def count(self, label: str) -> int:
        """Number of measurements recorded under ``label`` (exact, even
        beyond the reservoir bound)."""
        return self._counts.get(label, 0)

    def laps(self, label: str) -> List[float]:
        """Retained measurements for ``label`` (all of them below the
        reservoir bound; an evenly spaced subsample beyond it)."""
        reservoir = self._laps.get(label)
        return reservoir.values() if reservoir is not None else []

    def percentile(self, label: str, q: float) -> float:
        """Nearest-rank percentile of the retained laps for ``label``."""
        reservoir = self._laps.get(label)
        if reservoir is None or not len(reservoir):
            return float("nan")
        return reservoir.percentile(q)

    def as_dict(self) -> Dict[str, float]:
        """Mapping of label to total seconds."""
        return dict(self._totals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in sorted(self._totals.items()))
        return f"Timer({parts})"


__all__ = ["DEFAULT_RESERVOIR", "percentile", "percentile_from_counts",
           "Reservoir", "Timer"]
