"""Wall-clock timing helper used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional
from contextlib import contextmanager


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("sampling"):
    ...     _ = sum(range(1000))
    >>> timer.total("sampling") >= 0.0
    True
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[str, int] = field(default_factory=dict)
    _laps: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager measuring the wrapped block under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.add(label, elapsed)

    def add(self, label: str, seconds: float) -> None:
        """Record ``seconds`` of elapsed time under ``label``."""
        self._totals[label] = self._totals.get(label, 0.0) + seconds
        self._counts[label] = self._counts.get(label, 0) + 1
        self._laps.setdefault(label, []).append(seconds)

    def total(self, label: Optional[str] = None) -> float:
        """Total seconds recorded for ``label`` (or over all labels)."""
        if label is None:
            return sum(self._totals.values())
        return self._totals.get(label, 0.0)

    def count(self, label: str) -> int:
        """Number of measurements recorded under ``label``."""
        return self._counts.get(label, 0)

    def laps(self, label: str) -> List[float]:
        """Individual measurements recorded under ``label``."""
        return list(self._laps.get(label, []))

    def as_dict(self) -> Dict[str, float]:
        """Mapping of label to total seconds."""
        return dict(self._totals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in sorted(self._totals.items()))
        return f"Timer({parts})"


__all__ = ["Timer"]
