"""Small shared utilities: seeded RNG handling, timers and validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
