"""Random number generator helpers.

Every stochastic component in the library accepts either ``None``, an integer
seed, or a :class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes
those three spellings into a ``Generator`` so downstream code never has to
special-case them, and :func:`spawn_rngs` derives independent child
generators for parallel or repeated experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh unpredictable generator), an ``int`` seed, a
        ``SeedSequence``, or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot build a Generator from {rng!r}")


def spawn_rngs(rng: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``rng``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def derive_seed(rng: RngLike) -> int:
    """Draw a single integer seed from ``rng`` (useful for reproducible
    sub-experiments that are configured with plain integers)."""
    return int(ensure_rng(rng).integers(0, 2**63 - 1))


__all__ = ["ensure_rng", "spawn_rngs", "derive_seed", "RngLike"]
