"""CSR-backed directed probabilistic graphs.

The whole library operates on :class:`DirectedGraph`: a directed graph over
nodes ``0 .. n-1`` where each edge ``(u, v)`` carries an influence
probability ``p_uv`` in ``[0, 1]``.  Both the forward (out-neighbour) and the
reverse (in-neighbour) adjacency are stored in compressed sparse row form so
the UIC forward simulation and the reverse-BFS RR-set sampling are both fast
and allocation-free in their hot loops.

Graphs are immutable once constructed; use :meth:`DirectedGraph.from_edges`
or the generators in :mod:`repro.graphs.generators` to build them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError

Edge = Tuple[int, int, float]


@dataclass(frozen=True)
class _CSR:
    """One adjacency direction in CSR layout."""

    indptr: np.ndarray   # shape (n + 1,), int64
    indices: np.ndarray  # shape (m,), int64 — neighbour node ids
    probs: np.ndarray    # shape (m,), float64 — edge probabilities

    def neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        start, stop = self.indptr[node], self.indptr[node + 1]
        return self.indices[start:stop], self.probs[start:stop]

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])


def _build_csr(n: int, sources: np.ndarray, targets: np.ndarray,
               probs: np.ndarray) -> _CSR:
    """Build a CSR adjacency keyed by ``sources`` (rows) -> ``targets``."""
    order = np.argsort(sources, kind="stable")
    sources = sources[order]
    targets = targets[order]
    probs = probs[order]
    counts = np.bincount(sources, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return _CSR(indptr=indptr, indices=targets.astype(np.int64),
                probs=probs.astype(np.float64))


class DirectedGraph:
    """Immutable directed graph with per-edge influence probabilities.

    Parameters
    ----------
    n:
        Number of nodes; nodes are the integers ``0 .. n-1``.
    sources, targets, probs:
        Parallel arrays describing the edges.  Self loops are rejected and
        duplicate edges are collapsed keeping the *maximum* probability (the
        convention used by weighted-cascade datasets).
    name:
        Optional human readable name (used by the experiment harness).
    """

    def __init__(self, n: int, sources: Sequence[int], targets: Sequence[int],
                 probs: Sequence[float], name: str = "graph") -> None:
        if n < 0:
            raise GraphError(f"number of nodes must be >= 0, got {n}")
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        probs = np.asarray(probs, dtype=np.float64)
        if not (len(sources) == len(targets) == len(probs)):
            raise GraphError("sources, targets and probs must have equal length")
        if len(sources) and (sources.min() < 0 or sources.max() >= n
                             or targets.min() < 0 or targets.max() >= n):
            raise GraphError("edge endpoints must be valid node ids in [0, n)")
        if np.any(sources == targets):
            raise GraphError("self loops are not allowed")
        if len(probs) and (probs.min() < 0.0 or probs.max() > 1.0):
            raise GraphError("edge probabilities must lie in [0, 1]")

        sources, targets, probs = _dedupe_edges(sources, targets, probs, n)

        self._n = int(n)
        self._m = int(len(sources))
        self._name = str(name)
        self._sources = sources
        self._targets = targets
        self._probs = probs
        self._out = _build_csr(n, sources, targets, probs)
        self._in = _build_csr(n, targets, sources, probs)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge],
                   name: str = "graph") -> "DirectedGraph":
        """Build a graph from an iterable of ``(source, target, prob)``."""
        edges = list(edges)
        if edges:
            sources, targets, probs = map(np.asarray, zip(*edges))
        else:
            sources = targets = np.empty(0, dtype=np.int64)
            probs = np.empty(0, dtype=np.float64)
        return cls(n, sources, targets, probs, name=name)

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[Tuple[int, float]]],
                       name: str = "graph") -> "DirectedGraph":
        """Build a graph from ``adjacency[u] = [(v, p_uv), ...]``."""
        edges: List[Edge] = []
        for u, nbrs in enumerate(adjacency):
            for v, p in nbrs:
                edges.append((u, v, p))
        return cls.from_edges(len(adjacency), edges, name=name)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human readable graph name."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of (deduplicated) directed edges ``m``."""
        return self._m

    @property
    def nodes(self) -> np.ndarray:
        """Array of all node ids (``0 .. n-1``)."""
        return np.arange(self._n, dtype=np.int64)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(source, target, prob)`` tuples."""
        for u, v, p in zip(self._sources, self._targets, self._probs):
            yield int(u), int(v), float(p)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the raw ``(sources, targets, probs)`` arrays (copies)."""
        return self._sources.copy(), self._targets.copy(), self._probs.copy()

    def out_neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Out-neighbours of ``node`` and the probabilities of those edges."""
        self._check_node(node)
        return self._out.neighbors(node)

    def in_neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """In-neighbours of ``node`` and the probabilities of those edges."""
        self._check_node(node)
        return self._in.neighbors(node)

    def out_degree(self, node: int) -> int:
        """Number of out-neighbours of ``node``."""
        self._check_node(node)
        return self._out.degree(node)

    def in_degree(self, node: int) -> int:
        """Number of in-neighbours of ``node``."""
        self._check_node(node)
        return self._in.degree(node)

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw forward adjacency ``(indptr, indices, probs)`` (no copies).

        The arrays are the CSR layout used by the vectorized engine: the
        out-edges of node ``u`` occupy positions ``indptr[u]:indptr[u + 1]``
        of ``indices`` (targets) and ``probs``.  Callers must not mutate them.
        """
        return self._out.indptr, self._out.indices, self._out.probs

    def in_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw reverse adjacency ``(indptr, indices, probs)`` (no copies).

        Position ``indptr[v]:indptr[v + 1]`` holds the in-neighbours
        (sources) of node ``v`` and the probabilities of those edges.
        """
        return self._in.indptr, self._in.indices, self._in.probs

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for all nodes."""
        return np.diff(self._out.indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for all nodes."""
        return np.diff(self._in.indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        nbrs, _ = self._out.neighbors(u)
        return bool(np.any(nbrs == v))

    def edge_probability(self, u: int, v: int) -> float:
        """Probability of edge ``(u, v)``; raises if the edge is absent."""
        nbrs, probs = self.out_neighbors(u)
        hit = np.nonzero(nbrs == v)[0]
        if len(hit) == 0:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        return float(probs[hit[0]])

    def average_degree(self) -> float:
        """Average out-degree ``m / n`` (0 for the empty graph)."""
        return self._m / self._n if self._n else 0.0

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def with_probabilities(self, probs: Sequence[float],
                           name: Optional[str] = None) -> "DirectedGraph":
        """Return a copy of this graph with edge probabilities replaced.

        ``probs`` must be aligned with :meth:`edge_arrays` order.
        """
        probs = np.asarray(probs, dtype=np.float64)
        if len(probs) != self._m:
            raise GraphError(
                f"expected {self._m} probabilities, got {len(probs)}")
        return DirectedGraph(self._n, self._sources, self._targets, probs,
                             name=name or self._name)

    def reverse(self, name: Optional[str] = None) -> "DirectedGraph":
        """Return the graph with every edge direction flipped."""
        return DirectedGraph(self._n, self._targets, self._sources,
                             self._probs, name=name or f"{self._name}-rev")

    def subgraph(self, nodes: Sequence[int],
                 name: Optional[str] = None) -> "DirectedGraph":
        """Induced subgraph on ``nodes``, relabelled to ``0..len(nodes)-1``.

        The returned graph's node ``i`` corresponds to ``nodes[i]``.
        """
        nodes = np.asarray(sorted(set(int(v) for v in nodes)), dtype=np.int64)
        for v in nodes:
            self._check_node(int(v))
        relabel = -np.ones(self._n, dtype=np.int64)
        relabel[nodes] = np.arange(len(nodes))
        keep = (relabel[self._sources] >= 0) & (relabel[self._targets] >= 0)
        return DirectedGraph(
            len(nodes),
            relabel[self._sources[keep]],
            relabel[self._targets[keep]],
            self._probs[keep],
            name=name or f"{self._name}-sub{len(nodes)}",
        )

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise GraphError(f"node {node} out of range [0, {self._n})")

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DirectedGraph(name={self._name!r}, nodes={self._n}, "
                f"edges={self._m})")


def _dedupe_edges(sources: np.ndarray, targets: np.ndarray, probs: np.ndarray,
                  n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicate (u, v) edges, keeping the maximum probability."""
    if len(sources) == 0:
        return sources, targets, probs
    keys = sources.astype(np.int64) * n + targets.astype(np.int64)
    order = np.argsort(keys, kind="stable")
    keys, sources, targets, probs = keys[order], sources[order], targets[order], probs[order]
    unique_mask = np.empty(len(keys), dtype=bool)
    unique_mask[0] = True
    unique_mask[1:] = keys[1:] != keys[:-1]
    if unique_mask.all():
        return sources, targets, probs
    group_ids = np.cumsum(unique_mask) - 1
    max_probs = np.zeros(group_ids[-1] + 1, dtype=np.float64)
    np.maximum.at(max_probs, group_ids, probs)
    return sources[unique_mask], targets[unique_mask], max_probs


__all__ = ["DirectedGraph", "Edge"]
