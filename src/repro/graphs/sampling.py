"""Subgraph sampling used by the scalability experiment (Figure 6(d)).

The paper grows the Orkut network with breadth-first search so the subgraph
contains a target percentage of nodes, then measures SeqGRD-NM running time
on the growing prefix.  :func:`bfs_sample` implements exactly that.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import DirectedGraph
from repro.utils.rng import RngLike, ensure_rng


def bfs_sample(graph: DirectedGraph, fraction: float, rng: RngLike = None,
               start: Optional[int] = None) -> DirectedGraph:
    """Induced subgraph on the first ``fraction * n`` nodes reached by BFS.

    BFS follows out-edges ignoring probabilities (structure only).  If the
    BFS frontier is exhausted before the target size is reached (disconnected
    graphs), new unvisited start nodes are drawn at random, matching the
    usual practice for this experiment.
    """
    if not 0 < fraction <= 1.0:
        raise GraphError(f"fraction must be in (0, 1], got {fraction}")
    rng = ensure_rng(rng)
    n = graph.num_nodes
    target = max(1, int(round(fraction * n)))
    if target >= n:
        return graph

    visited = np.zeros(n, dtype=bool)
    order: List[int] = []
    queue: deque = deque()

    def push(node: int) -> None:
        visited[node] = True
        order.append(node)
        queue.append(node)

    push(int(rng.integers(0, n)) if start is None else int(start))
    while len(order) < target:
        if not queue:
            remaining = np.nonzero(~visited)[0]
            push(int(rng.choice(remaining)))
            continue
        u = queue.popleft()
        nbrs, _ = graph.out_neighbors(u)
        for v in nbrs:
            if len(order) >= target:
                break
            if not visited[v]:
                push(int(v))
    return graph.subgraph(order, name=f"{graph.name}-bfs{int(fraction * 100)}")


def random_node_sample(graph: DirectedGraph, fraction: float,
                       rng: RngLike = None) -> DirectedGraph:
    """Induced subgraph on a uniform random ``fraction`` of the nodes."""
    if not 0 < fraction <= 1.0:
        raise GraphError(f"fraction must be in (0, 1], got {fraction}")
    rng = ensure_rng(rng)
    n = graph.num_nodes
    target = max(1, int(round(fraction * n)))
    if target >= n:
        return graph
    nodes = rng.choice(n, size=target, replace=False)
    return graph.subgraph(nodes, name=f"{graph.name}-rand{int(fraction * 100)}")


__all__ = ["bfs_sample", "random_node_sample"]
