"""Reading and writing graphs as edge lists.

The format is the plain whitespace-separated edge list used by SNAP-style
datasets: one ``source target [probability]`` triple per line, ``#`` comment
lines ignored.  If the probability column is missing it defaults to 1.0 so a
weighting scheme can be applied afterwards.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.exceptions import GraphError
from repro.graphs.graph import DirectedGraph, Edge

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, directed: bool = True,
                   num_nodes: Optional[int] = None,
                   name: Optional[str] = None) -> DirectedGraph:
    """Load a graph from an edge-list file.

    Parameters
    ----------
    path:
        File with one ``u v [p]`` per line; lines starting with ``#`` are
        ignored.
    directed:
        When ``False`` every line also contributes the reverse edge, which is
        how the undirected networks in Table 2 (NetHEPT, Orkut) are handled.
    num_nodes:
        Explicit node count; defaults to ``max node id + 1``.
    """
    path = Path(path)
    edges: List[Edge] = []
    max_node = -1
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v [p]', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            p = float(parts[2]) if len(parts) == 3 else 1.0
            edges.append((u, v, p))
            if not directed:
                edges.append((v, u, p))
            max_node = max(max_node, u, v)
    n = num_nodes if num_nodes is not None else max_node + 1
    return DirectedGraph.from_edges(n, edges, name=name or path.stem)


def write_edge_list(graph: DirectedGraph, path: PathLike,
                    include_probabilities: bool = True) -> None:
    """Write ``graph`` as an edge list understood by :func:`read_edge_list`."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_nodes} nodes, "
                     f"{graph.num_edges} edges\n")
        for u, v, p in graph.edges():
            if include_probabilities:
                handle.write(f"{u} {v} {p:.10g}\n")
            else:
                handle.write(f"{u} {v}\n")


__all__ = ["read_edge_list", "write_edge_list"]
