"""Reading and writing graphs as edge lists.

The format is the plain whitespace-separated edge list used by SNAP-style
datasets: one ``source target [probability]`` triple per line, ``#``/``%``
comment lines ignored.  If the probability column is missing it defaults to
1.0 so a weighting scheme can be applied afterwards.

Real published snapshots are messier than the files :func:`write_edge_list`
produces, and :func:`read_edge_list` accepts the whole dialect:

* ``.gz`` paths are decompressed transparently (SNAP distributes most
  datasets gzipped);
* ``#`` and ``%`` comment lines, blank lines and trailing newlines are
  skipped anywhere in the file;
* duplicate edges collapse to one (keeping the maximum probability, the
  :class:`~repro.graphs.graph.DirectedGraph` convention);
* self loops are dropped by default (influence propagation has no use for
  them and :class:`DirectedGraph` rejects them) — pass
  ``skip_self_loops=False`` to surface them as errors instead;
* ``one_based=True`` shifts ids down by one for datasets numbered from 1.

Files with millions of edges parse through a vectorized column path rather
than a Python-level loop; the line-by-line fallback (with precise line
numbers in errors) only runs for files that mix 2- and 3-column rows.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import DirectedGraph

PathLike = Union[str, Path]

#: line prefixes treated as comments (SNAP uses ``#``, KONECT uses ``%``)
_COMMENT_PREFIXES = ("#", "%")


def _open_text(path: Path, mode: str = "rt"):
    """Open ``path`` as text, decompressing ``.gz`` transparently."""
    if path.suffix == ".gz":
        return gzip.open(path, mode, encoding="utf-8")
    return path.open(mode.rstrip("t"), encoding="utf-8")


def _edge_list_name(path: Path) -> str:
    """Default graph name: the file stem with ``.gz``/``.txt`` stripped."""
    name = path.name
    for suffix in (".gz", ".txt", ".tsv", ".csv", ".edges", ".edgelist"):
        if name.endswith(suffix):
            name = name[:-len(suffix)]
    return name or path.stem


def _data_lines(path: Path) -> List[str]:
    """All non-comment, non-blank lines of ``path`` (order preserved)."""
    with _open_text(path) as handle:
        return [stripped for line in handle
                if (stripped := line.strip())
                and not stripped.startswith(_COMMENT_PREFIXES)]


def _parse_columns(lines: List[str], path: Path
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse data lines into ``(sources, targets, probs)`` arrays.

    Fast path: when every line has the same column count the flat token
    stream slices into columns and converts in bulk.  Mixed 2/3-column
    files (legal, if unusual) fall back to a per-line loop that can also
    report exact line numbers for malformed rows.
    """
    if not lines:
        empty_ids = np.empty(0, dtype=np.int64)
        return empty_ids, empty_ids.copy(), np.empty(0, dtype=np.float64)
    tokens = " ".join(lines).split()
    for width in (2, 3):
        if len(tokens) != width * len(lines):
            continue
        columns = np.asarray(tokens, dtype=object).reshape(-1, width)
        try:
            sources = columns[:, 0].astype(np.int64)
            targets = columns[:, 1].astype(np.int64)
            probs = (columns[:, 2].astype(np.float64) if width == 3
                     else np.ones(len(columns), dtype=np.float64))
        except ValueError:
            break  # non-numeric token: re-parse slowly for the line number
        return sources, targets, probs
    source_list: List[int] = []
    target_list: List[int] = []
    prob_list: List[float] = []
    with _open_text(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v [p]', got {stripped!r}")
            try:
                source_list.append(int(parts[0]))
                target_list.append(int(parts[1]))
                prob_list.append(float(parts[2]) if len(parts) == 3 else 1.0)
            except ValueError:
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v [p]', "
                    f"got {stripped!r}") from None
    return (np.asarray(source_list, dtype=np.int64),
            np.asarray(target_list, dtype=np.int64),
            np.asarray(prob_list, dtype=np.float64))


def read_edge_list(path: PathLike, directed: bool = True,
                   num_nodes: Optional[int] = None,
                   name: Optional[str] = None, *,
                   one_based: bool = False,
                   skip_self_loops: bool = True) -> DirectedGraph:
    """Load a graph from a (possibly gzipped) SNAP-style edge-list file.

    Parameters
    ----------
    path:
        File with one ``u v [p]`` per line; ``#``/``%`` comment lines and
        blank lines are ignored, ``.gz`` files are decompressed.
    directed:
        When ``False`` every line also contributes the reverse edge, which is
        how the undirected networks in Table 2 (NetHEPT, Orkut) are handled.
    num_nodes:
        Explicit node count; defaults to ``max node id + 1`` (after the
        ``one_based`` shift).
    one_based:
        Dataset numbers nodes from 1 — every id is shifted down by one.
    skip_self_loops:
        Drop ``u == u`` rows (common in raw snapshots) instead of failing.
    """
    path = Path(path)
    sources, targets, probs = _parse_columns(_data_lines(path), path)
    if one_based:
        if len(sources) and min(sources.min(), targets.min()) < 1:
            raise GraphError(
                f"{path}: one_based=True but the file contains node id 0")
        sources = sources - 1
        targets = targets - 1
    if skip_self_loops:
        keep = sources != targets
        if not keep.all():
            sources, targets, probs = sources[keep], targets[keep], probs[keep]
    if not directed and len(sources):
        sources, targets = (np.concatenate([sources, targets]),
                            np.concatenate([targets, sources]))
        probs = np.concatenate([probs, probs])
    if len(sources) and sources.min() < 0 or len(targets) and targets.min() < 0:
        raise GraphError(f"{path}: negative node ids are not valid")
    max_node = int(max(sources.max(initial=-1), targets.max(initial=-1)))
    n = num_nodes if num_nodes is not None else max_node + 1
    return DirectedGraph(n, sources, targets, probs,
                         name=name or _edge_list_name(path))


def write_edge_list(graph: DirectedGraph, path: PathLike,
                    include_probabilities: bool = True) -> None:
    """Write ``graph`` as an edge list understood by :func:`read_edge_list`.

    A ``.gz`` suffix gzips the output, matching how SNAP snapshots ship.
    """
    path = Path(path)
    with _open_text(path, "wt") as handle:
        handle.write(f"# {graph.name}: {graph.num_nodes} nodes, "
                     f"{graph.num_edges} edges\n")
        for u, v, p in graph.edges():
            if include_probabilities:
                handle.write(f"{u} {v} {p:.10g}\n")
            else:
                handle.write(f"{u} {v}\n")


__all__ = ["read_edge_list", "write_edge_list"]
