"""Probabilistic directed-graph substrate for the CWelMax reproduction."""

from repro.graphs.graph import DirectedGraph, Edge
from repro.graphs import analysis, generators, weighting, datasets, loaders, sampling
from repro.graphs.analysis import extended_statistics
from repro.graphs.datasets import (
    load_edge_list_network,
    load_network,
    network_names,
    network_statistics,
)
from repro.graphs.weighting import weighted_cascade, uniform, trivalency

__all__ = [
    "DirectedGraph",
    "Edge",
    "analysis",
    "extended_statistics",
    "generators",
    "weighting",
    "datasets",
    "loaders",
    "sampling",
    "load_edge_list_network",
    "load_network",
    "network_names",
    "network_statistics",
    "weighted_cascade",
    "uniform",
    "trivalency",
]
