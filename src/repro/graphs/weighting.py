"""Edge-probability weighting schemes.

IM papers (including the reproduced one, §6.1.3) assign influence
probabilities to edges using a handful of standard schemes.  Each function
here takes a :class:`~repro.graphs.graph.DirectedGraph` and returns a *new*
graph with the probabilities replaced.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graphs.graph import DirectedGraph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability


def weighted_cascade(graph: DirectedGraph,
                     name: Optional[str] = None) -> DirectedGraph:
    """Weighted-cascade probabilities ``p(u, v) = 1 / d_in(v)``.

    This is the default setting used throughout the paper's experiments
    ("Following previous works we set probability of edge e = (u, v) to
    1/din(v)").
    """
    sources, targets, _ = graph.edge_arrays()
    in_deg = graph.in_degrees().astype(np.float64)
    probs = 1.0 / np.maximum(in_deg[targets], 1.0)
    return graph.with_probabilities(probs, name=name or graph.name)


def uniform(graph: DirectedGraph, probability: float,
            name: Optional[str] = None) -> DirectedGraph:
    """Constant probability on every edge (e.g. 0.01 in Figure 6(d))."""
    check_probability(probability, "probability")
    probs = np.full(graph.num_edges, probability, dtype=np.float64)
    return graph.with_probabilities(probs, name=name or graph.name)


def trivalency(graph: DirectedGraph, rng: RngLike = None,
               choices: Sequence[float] = (0.1, 0.01, 0.001),
               name: Optional[str] = None) -> DirectedGraph:
    """Trivalency model: each edge gets a probability uniformly from
    ``choices`` (the classic {0.1, 0.01, 0.001})."""
    rng = ensure_rng(rng)
    for c in choices:
        check_probability(c, "choice")
    probs = rng.choice(np.asarray(choices, dtype=np.float64),
                       size=graph.num_edges)
    return graph.with_probabilities(probs, name=name or graph.name)


__all__ = ["weighted_cascade", "uniform", "trivalency"]
