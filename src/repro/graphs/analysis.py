"""Structural analysis helpers for the graph substrate.

These utilities support the experiment harness (extended Table 2 statistics,
sanity checks on the synthetic stand-ins) and are generally useful when
preparing a new network for CWelMax: degree distributions, weak/strong
connectivity, probability summaries, and a cheap single-source reachability
estimate that upper-bounds influence spread.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import DirectedGraph


@dataclass(frozen=True)
class DegreeSummary:
    """Summary statistics of a degree distribution."""

    mean: float
    median: float
    maximum: int
    percentile_90: float
    percentile_99: float
    gini: float

    @classmethod
    def from_degrees(cls, degrees: np.ndarray) -> "DegreeSummary":
        if len(degrees) == 0:
            return cls(0.0, 0.0, 0, 0.0, 0.0, 0.0)
        degrees = np.asarray(degrees, dtype=np.float64)
        return cls(
            mean=float(degrees.mean()),
            median=float(np.median(degrees)),
            maximum=int(degrees.max()),
            percentile_90=float(np.percentile(degrees, 90)),
            percentile_99=float(np.percentile(degrees, 99)),
            gini=gini_coefficient(degrees),
        )


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = uniform).

    Used as a one-number summary of degree skew: social networks such as
    Orkut/Twitter have a far higher degree Gini than Erdős–Rényi graphs.
    """
    values = np.sort(np.asarray(values, dtype=np.float64))
    if len(values) == 0 or values.sum() == 0:
        return 0.0
    n = len(values)
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * values) / (n * values.sum()))
                 - (n + 1.0) / n)


def degree_summaries(graph: DirectedGraph) -> Dict[str, DegreeSummary]:
    """Degree summaries for the out- and in-degree distributions."""
    return {
        "out": DegreeSummary.from_degrees(graph.out_degrees()),
        "in": DegreeSummary.from_degrees(graph.in_degrees()),
    }


def weakly_connected_components(graph: DirectedGraph) -> List[List[int]]:
    """Weakly connected components (edge direction ignored), largest first."""
    n = graph.num_nodes
    seen = np.zeros(n, dtype=bool)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        queue: deque = deque([start])
        seen[start] = True
        component = [start]
        while queue:
            node = queue.popleft()
            out_nbrs, _ = graph.out_neighbors(node)
            in_nbrs, _ = graph.in_neighbors(node)
            for nbr in list(out_nbrs) + list(in_nbrs):
                nbr = int(nbr)
                if not seen[nbr]:
                    seen[nbr] = True
                    component.append(nbr)
                    queue.append(nbr)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component_fraction(graph: DirectedGraph) -> float:
    """Fraction of nodes inside the largest weakly connected component."""
    if graph.num_nodes == 0:
        return 0.0
    components = weakly_connected_components(graph)
    return len(components[0]) / graph.num_nodes


def probability_summary(graph: DirectedGraph) -> Dict[str, float]:
    """Summary of the edge-probability distribution."""
    probs = np.array([p for _, _, p in graph.edges()], dtype=np.float64)
    if len(probs) == 0:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "sum": 0.0}
    return {
        "mean": float(probs.mean()),
        "min": float(probs.min()),
        "max": float(probs.max()),
        "sum": float(probs.sum()),
    }


def reachable_fraction(graph: DirectedGraph, node: int) -> float:
    """Fraction of nodes reachable from ``node`` ignoring probabilities.

    This is a deterministic upper bound on the normalized influence spread
    ``σ({node}) / n`` — useful as a quick sanity check of seed candidates.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    seen = {int(node)}
    queue: deque = deque([int(node)])
    while queue:
        current = queue.popleft()
        targets, _ = graph.out_neighbors(current)
        for target in targets:
            target = int(target)
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return len(seen) / n


def extended_statistics(graph: DirectedGraph) -> Dict[str, object]:
    """Extended Table-2-style statistics used by the experiment harness."""
    degrees = degree_summaries(graph)
    return {
        "name": graph.name,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "avg_degree": round(graph.average_degree(), 2),
        "max_out_degree": degrees["out"].maximum,
        "out_degree_gini": round(degrees["out"].gini, 3),
        "in_degree_gini": round(degrees["in"].gini, 3),
        "largest_wcc_fraction": round(largest_component_fraction(graph), 3),
        "mean_edge_probability": round(probability_summary(graph)["mean"], 4),
    }


__all__ = [
    "DegreeSummary",
    "gini_coefficient",
    "degree_summaries",
    "weakly_connected_components",
    "largest_component_fraction",
    "probability_summary",
    "reachable_fraction",
    "extended_statistics",
]
