"""Synthetic stand-ins for the paper's benchmark networks (Table 2).

The paper evaluates on NetHEPT, Douban-Book, Douban-Movie, Orkut and
Twitter.  These datasets cannot be shipped with the repository and the two
largest ones (3M and 41M nodes) are out of reach for pure-Python RR sampling
anyway, so :func:`load_network` builds synthetic graphs whose node count,
average degree, degree skew and directedness mimic Table 2 — optionally
scaled down by a ``scale`` factor so the full experiment suite runs in
seconds on a laptop.  The default scales are chosen per network and recorded
in :data:`NETWORKS`; pass ``scale=1.0`` to generate a full-size stand-in
(slow for Orkut/Twitter).

This substitution is documented in DESIGN.md: the algorithms only see the
CSR adjacency and edge probabilities, so the qualitative findings of the
paper (who wins, how running time grows with edges and budgets) are
preserved at reduced scale even though absolute numbers differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.exceptions import GraphError
from repro.graphs import generators, weighting
from repro.graphs.graph import DirectedGraph
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class NetworkSpec:
    """Published statistics of one benchmark network (paper Table 2)."""

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    directed: bool
    #: generator family used for the synthetic stand-in
    model: str
    #: default down-scaling factor applied by :func:`load_network`
    default_scale: float


#: Table 2 of the paper, plus the generator/scale used for the stand-in.
NETWORKS: Dict[str, NetworkSpec] = {
    "nethept": NetworkSpec("nethept", 15_200, 31_400, 4.13, False,
                           model="erdos_renyi", default_scale=0.2),
    "douban-book": NetworkSpec("douban-book", 23_300, 141_000, 6.5, True,
                               model="pref_attach", default_scale=0.15),
    "douban-movie": NetworkSpec("douban-movie", 34_900, 274_000, 7.9, True,
                                model="pref_attach", default_scale=0.1),
    "orkut": NetworkSpec("orkut", 3_070_000, 117_000_000, 77.5, False,
                         model="pref_attach", default_scale=0.002),
    "twitter": NetworkSpec("twitter", 41_700_000, 1_470_000_000, 70.5, True,
                           model="power_law", default_scale=0.0002),
}


def network_names() -> list:
    """Names of the available benchmark stand-ins."""
    return list(NETWORKS)


def network_spec(name: str) -> NetworkSpec:
    """Published statistics for network ``name`` (case-insensitive)."""
    key = name.lower()
    if key not in NETWORKS:
        raise GraphError(
            f"unknown network {name!r}; choose from {sorted(NETWORKS)}")
    return NETWORKS[key]


def load_network(name: str, scale: Optional[float] = None,
                 rng: RngLike = None,
                 weighting_scheme: str = "weighted_cascade",
                 uniform_probability: float = 0.01) -> DirectedGraph:
    """Build the synthetic stand-in for benchmark network ``name``.

    Parameters
    ----------
    name:
        One of :func:`network_names` (case-insensitive).
    scale:
        Fraction of the published node count to generate.  Defaults to the
        per-network ``default_scale`` which keeps even Orkut/Twitter
        stand-ins around a few thousand nodes.
    rng:
        Seed or generator for reproducibility.
    weighting_scheme:
        ``"weighted_cascade"`` (paper default, ``p = 1/d_in``), ``"uniform"``
        or ``"none"`` (leave probabilities at 1.0).
    uniform_probability:
        Probability used when ``weighting_scheme == "uniform"``.
    """
    spec = network_spec(name)
    rng = ensure_rng(rng)
    scale = spec.default_scale if scale is None else float(scale)
    if scale <= 0:
        raise GraphError("scale must be > 0")
    n = max(32, int(round(spec.num_nodes * scale)))
    avg_degree = spec.avg_degree

    if spec.model == "erdos_renyi":
        graph = generators.erdos_renyi(
            n, avg_degree, rng=rng, directed=spec.directed, name=spec.name)
    elif spec.model == "pref_attach":
        # every attachment contributes 1 directed edge (directed networks)
        # or 2 (undirected networks stored as both directions), so divide by
        # two only in the undirected case to match the published avg degree
        out_degree = max(1, int(round(avg_degree if spec.directed
                                      else avg_degree / 2)))
        graph = generators.preferential_attachment(
            n, out_degree, rng=rng, directed=spec.directed, name=spec.name)
    elif spec.model == "power_law":
        graph = generators.power_law_configuration(
            n, exponent=2.2, avg_degree=avg_degree, rng=rng, name=spec.name)
    else:  # pragma: no cover - defensive, specs are static
        raise GraphError(f"unknown generator model {spec.model!r}")

    if weighting_scheme == "weighted_cascade":
        graph = weighting.weighted_cascade(graph)
    elif weighting_scheme == "uniform":
        graph = weighting.uniform(graph, uniform_probability)
    elif weighting_scheme != "none":
        raise GraphError(f"unknown weighting scheme {weighting_scheme!r}")
    return graph


def load_edge_list_network(path: Union[str, Path], *,
                           directed: bool = True,
                           one_based: bool = False,
                           num_nodes: Optional[int] = None,
                           name: Optional[str] = None,
                           weighting_scheme: str = "weighted_cascade",
                           uniform_probability: float = 0.01
                           ) -> DirectedGraph:
    """Load a real SNAP-style edge-list snapshot as a benchmark network.

    This is the path the paper's own experiments take: download a published
    snapshot (NetHEPT, Orkut, ...), parse its edge list and apply the
    influence weighting.  :func:`repro.graphs.loaders.read_edge_list` does
    the parsing — gzipped files, ``#``/``%`` comments, duplicate edges,
    self loops and 1-based numbering are all handled — and the requested
    ``weighting_scheme`` is applied afterwards exactly as for the synthetic
    stand-ins.  Unlike the generators this has no node-count ceiling; the
    streamed index build keeps million-node snapshots tractable.

    ``weighting_scheme="none"`` preserves the file's own probability
    column (or the 1.0 default when there is none) instead of reweighting.
    """
    from repro.graphs.loaders import read_edge_list

    graph = read_edge_list(path, directed=directed, num_nodes=num_nodes,
                           name=name, one_based=one_based)
    if weighting_scheme == "weighted_cascade":
        graph = weighting.weighted_cascade(graph)
    elif weighting_scheme == "uniform":
        graph = weighting.uniform(graph, uniform_probability)
    elif weighting_scheme != "none":
        raise GraphError(f"unknown weighting scheme {weighting_scheme!r}")
    return graph


def network_statistics(graph: DirectedGraph) -> Dict[str, object]:
    """Summary statistics in the layout of the paper's Table 2."""
    return {
        "name": graph.name,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "avg_degree": round(graph.average_degree(), 2),
        "max_out_degree": int(graph.out_degrees().max()) if len(graph) else 0,
        "max_in_degree": int(graph.in_degrees().max()) if len(graph) else 0,
    }


__all__ = [
    "NetworkSpec",
    "NETWORKS",
    "network_names",
    "network_spec",
    "load_edge_list_network",
    "load_network",
    "network_statistics",
]
