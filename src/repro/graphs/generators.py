"""Synthetic graph generators.

The paper evaluates on five real social networks (Table 2).  Those datasets
are not redistributable inside this repository, so the experiment harness
builds *synthetic stand-ins* with matching size/degree characteristics using
the generators in this module (see :mod:`repro.graphs.datasets`).  The
generators are also useful on their own for tests and examples.

All generators return a :class:`~repro.graphs.graph.DirectedGraph` whose edge
probabilities are initialised to 1.0; apply a weighting scheme from
:mod:`repro.graphs.weighting` (e.g. weighted cascade) afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import DirectedGraph, Edge
from repro.utils.rng import RngLike, ensure_rng


# ----------------------------------------------------------------------
# deterministic test graphs
# ----------------------------------------------------------------------
def line_graph(n: int, prob: float = 1.0, name: str = "line") -> DirectedGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` with uniform edge probability."""
    edges = [(i, i + 1, prob) for i in range(n - 1)]
    return DirectedGraph.from_edges(n, edges, name=name)


def star_graph(n_leaves: int, prob: float = 1.0,
               name: str = "star") -> DirectedGraph:
    """Star with centre 0 pointing at ``n_leaves`` leaves."""
    edges = [(0, i + 1, prob) for i in range(n_leaves)]
    return DirectedGraph.from_edges(n_leaves + 1, edges, name=name)


def complete_graph(n: int, prob: float = 1.0,
                   name: str = "complete") -> DirectedGraph:
    """Complete directed graph (both directions, no self loops)."""
    edges = [(u, v, prob) for u in range(n) for v in range(n) if u != v]
    return DirectedGraph.from_edges(n, edges, name=name)


def grid_graph(rows: int, cols: int, prob: float = 1.0,
               name: str = "grid") -> DirectedGraph:
    """Bidirectional 4-neighbour grid of ``rows x cols`` nodes."""
    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1), prob))
                edges.append((nid(r, c + 1), nid(r, c), prob))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c), prob))
                edges.append((nid(r + 1, c), nid(r, c), prob))
    return DirectedGraph.from_edges(rows * cols, edges, name=name)


def bipartite_cover_graph(subsets: Sequence[Sequence[int]], n_elements: int,
                          prob: float = 1.0,
                          name: str = "cover") -> DirectedGraph:
    """Bipartite graph used by the SET-COVER hardness gadget (Theorem 2).

    Node ``i`` (``0 <= i < len(subsets)``) is the set node ``s_i`` and node
    ``len(subsets) + j`` is the ground-element node ``g_j``.  There is an edge
    ``s_i -> g_j`` iff ``j in subsets[i]``.
    """
    r = len(subsets)
    edges = []
    for i, subset in enumerate(subsets):
        for j in subset:
            if not 0 <= j < n_elements:
                raise GraphError(f"ground element {j} out of range")
            edges.append((i, r + j, prob))
    return DirectedGraph.from_edges(r + n_elements, edges, name=name)


# ----------------------------------------------------------------------
# random graph models
# ----------------------------------------------------------------------
def erdos_renyi(n: int, avg_degree: float, rng: RngLike = None,
                directed: bool = True,
                name: str = "erdos-renyi") -> DirectedGraph:
    """G(n, m) style Erdős–Rényi graph with expected average out-degree.

    ``avg_degree`` is the expected number of out-edges per node.  When
    ``directed`` is ``False``, each sampled undirected pair contributes edges
    in both directions (mimicking how IM benchmarks treat undirected
    networks such as NetHEPT and Orkut).
    """
    rng = ensure_rng(rng)
    if n <= 1 or avg_degree <= 0:
        return DirectedGraph.from_edges(max(n, 0), [], name=name)
    m = int(round(avg_degree * n)) if directed else int(round(avg_degree * n / 2))
    sources = rng.integers(0, n, size=2 * m)
    targets = rng.integers(0, n, size=2 * m)
    keep = sources != targets
    sources, targets = sources[keep][:m], targets[keep][:m]
    edges = [(int(u), int(v), 1.0) for u, v in zip(sources, targets)]
    if not directed:
        edges.extend((v, u, p) for u, v, p in list(edges))
    return DirectedGraph.from_edges(n, edges, name=name)


def preferential_attachment(n: int, out_degree: int, rng: RngLike = None,
                            directed: bool = True,
                            name: str = "pref-attach") -> DirectedGraph:
    """Barabási–Albert style preferential-attachment graph.

    Each new node attaches ``out_degree`` edges to existing nodes chosen with
    probability proportional to their current degree, producing the heavy
    tailed degree distribution typical of social networks (Orkut, Twitter).
    When ``directed`` is ``True``, each attachment edge points from the
    existing (popular) node to the new node with probability 0.5 and the
    other way otherwise, so both in- and out-degree distributions are skewed.
    """
    rng = ensure_rng(rng)
    if out_degree < 1:
        raise GraphError("out_degree must be >= 1")
    if n <= out_degree:
        return complete_graph(max(n, 0), name=name)

    # repeated-nodes list implements preferential attachment in O(m)
    repeated: List[int] = list(range(out_degree))
    edges: List[Edge] = []
    for new_node in range(out_degree, n):
        chosen = set()
        while len(chosen) < out_degree:
            pick = int(repeated[rng.integers(0, len(repeated))]) \
                if repeated else int(rng.integers(0, new_node))
            chosen.add(pick)
        for old_node in chosen:
            if directed and rng.random() < 0.5:
                edges.append((old_node, new_node, 1.0))
            else:
                edges.append((new_node, old_node, 1.0))
            if not directed:
                edges.append((old_node, new_node, 1.0))
            repeated.append(old_node)
            repeated.append(new_node)
    return DirectedGraph.from_edges(n, edges, name=name)


def watts_strogatz(n: int, k: int, rewire_prob: float, rng: RngLike = None,
                   name: str = "watts-strogatz") -> DirectedGraph:
    """Small-world ring lattice with random rewiring (both edge directions)."""
    rng = ensure_rng(rng)
    if k < 2 or k % 2:
        raise GraphError("k must be an even integer >= 2")
    edges: List[Edge] = []
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < rewire_prob:
                v = int(rng.integers(0, n))
                while v == u:
                    v = int(rng.integers(0, n))
            edges.append((u, v, 1.0))
            edges.append((v, u, 1.0))
    return DirectedGraph.from_edges(n, edges, name=name)


def power_law_configuration(n: int, exponent: float, avg_degree: float,
                            rng: RngLike = None,
                            name: str = "power-law") -> DirectedGraph:
    """Directed configuration-model graph with power-law out-degrees.

    Out-degrees are drawn from a discrete power law with the given exponent,
    rescaled so the mean matches ``avg_degree``; targets are chosen uniformly
    at random.  This mimics the skewed follower distributions of Twitter.
    """
    rng = ensure_rng(rng)
    if n <= 1:
        return DirectedGraph.from_edges(max(n, 0), [], name=name)
    raw = rng.pareto(exponent - 1.0, size=n) + 1.0
    degrees = np.maximum(1, np.round(raw * avg_degree / raw.mean())).astype(int)
    sources = np.repeat(np.arange(n), degrees)
    targets = rng.integers(0, n, size=len(sources))
    keep = sources != targets
    edges = [(int(u), int(v), 1.0) for u, v in zip(sources[keep], targets[keep])]
    return DirectedGraph.from_edges(n, edges, name=name)


def random_dag(n: int, avg_degree: float, rng: RngLike = None,
               name: str = "dag") -> DirectedGraph:
    """Random DAG (edges only from lower to higher node id).

    Useful in tests because influence spread on a DAG can be computed exactly
    by dynamic programming over a topological order.
    """
    rng = ensure_rng(rng)
    edges: List[Edge] = []
    if n > 1:
        p = min(1.0, avg_degree / max(n - 1, 1))
        for u in range(n):
            coins = rng.random(n - u - 1) < p
            for j in np.nonzero(coins)[0]:
                edges.append((u, u + 1 + int(j), 1.0))
    return DirectedGraph.from_edges(n, edges, name=name)


__all__ = [
    "line_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "bipartite_cover_graph",
    "erdos_renyi",
    "preferential_attachment",
    "watts_strogatz",
    "power_law_configuration",
    "random_dag",
]
