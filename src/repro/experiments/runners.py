"""Uniform runners: execute one algorithm on one workload, measure time and
welfare.

Every figure in §6 compares the same set of algorithms under different
utility configurations / budgets / networks.  :func:`run_algorithm` is the
single dispatch point the figure builders use, so all algorithms are timed
and evaluated identically (same welfare estimator, same sample counts, same
seeds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.allocation import Allocation
from repro.baselines import balance_c, greedy_wm, round_robin, snake, tcim
from repro.core import maxgrd, seqgrd, seqgrd_nm, supgrd
from repro.core.results import AllocationResult
from repro.diffusion.estimators import estimate_welfare
from repro.exceptions import AlgorithmError
from repro.experiments.config import ExperimentScale, get_scale
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel
from repro.utils.rng import ensure_rng

#: algorithms available to the experiment harness
ALGORITHMS = (
    "SeqGRD",
    "SeqGRD-NM",
    "MaxGRD",
    "SupGRD",
    "greedyWM",
    "TCIM",
    "Balance-C",
    "Round-robin",
    "Snake",
)


@dataclass
class RunRecord:
    """One (algorithm, workload) measurement."""

    algorithm: str
    network: str
    configuration: str
    budgets: Dict[str, int]
    welfare: float
    runtime_seconds: float
    adoption_counts: Dict[str, float]
    num_adopters: float
    result: AllocationResult

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary row for reporting."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "network": self.network,
            "configuration": self.configuration,
            "budget": max(self.budgets.values()) if self.budgets else 0,
            "welfare": round(self.welfare, 2),
            "runtime_s": round(self.runtime_seconds, 3),
        }
        for item, count in self.adoption_counts.items():
            row[f"adopt[{item}]"] = round(count, 1)
        return row


def _candidate_pool(graph: DirectedGraph, size: int) -> Sequence[int]:
    """Top out-degree nodes, used to keep simulation-heavy baselines feasible."""
    order = np.argsort(-graph.out_degrees(), kind="stable")
    return [int(v) for v in order[:size]]


def run_algorithm(algorithm: str, graph: DirectedGraph, model: UtilityModel,
                  budgets: Mapping[str, int],
                  fixed_allocation: Optional[Allocation] = None,
                  scale: Optional[ExperimentScale] = None,
                  configuration: str = "",
                  superior_item: Optional[str] = None,
                  rng=None,
                  index=None,
                  selection_strategy: Optional[str] = None) -> RunRecord:
    """Run ``algorithm`` on the given workload and measure time and welfare.

    ``index`` is an optional prebuilt
    :class:`~repro.index.frozen.FrozenRRIndex` for the coverage-greedy
    algorithms (SeqGRD/SeqGRD-NM/SupGRD): sampling is skipped and seeds are
    served from the shared index, which is how the figure sweeps reuse one
    sampling pass across every budget point.  ``selection_strategy`` picks
    the greedy node-selection engine for the coverage-greedy algorithms
    (:data:`repro.rrsets.coverage.SELECTION_STRATEGIES`; allocations are
    bit-identical across strategies).
    """
    scale = get_scale(scale)
    rng = ensure_rng(rng if rng is not None else scale.seed)
    fixed_allocation = fixed_allocation or Allocation.empty()
    budgets = dict(budgets)
    options = scale.imm_options
    if index is not None and algorithm not in ("SeqGRD", "SeqGRD-NM",
                                               "SupGRD"):
        raise AlgorithmError(
            f"{algorithm} cannot be served from a prebuilt RR-set index")

    start = time.perf_counter()
    if algorithm == "SeqGRD":
        result = seqgrd(graph, model, budgets, fixed_allocation,
                        marginal_check=True,
                        n_marginal_samples=scale.marginal_samples,
                        options=options, rng=rng, index=index,
                        selection_strategy=selection_strategy)
    elif algorithm == "SeqGRD-NM":
        result = seqgrd_nm(graph, model, budgets, fixed_allocation,
                           options=options, rng=rng, index=index,
                           selection_strategy=selection_strategy)
    elif algorithm == "MaxGRD":
        result = maxgrd(graph, model, budgets, fixed_allocation,
                        n_marginal_samples=scale.marginal_samples,
                        options=options, rng=rng,
                        selection_strategy=selection_strategy)
    elif algorithm == "SupGRD":
        if len(budgets) != 1:
            raise AlgorithmError("SupGRD allocates exactly one item")
        ((item, budget),) = budgets.items()
        result = supgrd(graph, model, budget, fixed_allocation,
                        superior_item=superior_item or item,
                        enforce_preconditions=False,
                        options=options, rng=rng, index=index,
                        selection_strategy=selection_strategy)
    elif algorithm == "greedyWM":
        result = greedy_wm(graph, model, budgets, fixed_allocation,
                           n_marginal_samples=scale.marginal_samples,
                           candidate_pool=_candidate_pool(
                               graph, scale.baseline_pool_size),
                           rng=rng)
    elif algorithm == "TCIM":
        result = tcim(graph, model, budgets, fixed_allocation,
                      n_evaluation_samples=max(20, scale.marginal_samples),
                      options=options, rng=rng)
    elif algorithm == "Balance-C":
        result = balance_c(graph, model, budgets, fixed_allocation,
                           n_objective_samples=max(10, scale.marginal_samples // 3),
                           candidate_pool=_candidate_pool(
                               graph, scale.baseline_pool_size),
                           rng=rng)
    elif algorithm == "Round-robin":
        result = round_robin(graph, model, budgets, fixed_allocation,
                             options=options, rng=rng)
    elif algorithm == "Snake":
        result = snake(graph, model, budgets, fixed_allocation,
                       options=options, rng=rng)
    else:
        raise AlgorithmError(f"unknown algorithm {algorithm!r}; "
                             f"choose from {ALGORITHMS}")
    runtime = time.perf_counter() - start

    welfare = estimate_welfare(graph, model, result.combined_allocation(),
                               n_samples=scale.evaluation_samples, rng=rng)
    return RunRecord(
        algorithm=algorithm,
        network=graph.name,
        configuration=configuration,
        budgets=budgets,
        welfare=welfare.mean,
        runtime_seconds=runtime,
        adoption_counts=welfare.adoption_counts,
        num_adopters=welfare.mean_adopters,
        result=result,
    )


__all__ = ["ALGORITHMS", "RunRecord", "run_algorithm"]
