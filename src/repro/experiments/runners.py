"""Uniform runners: execute one algorithm on one workload, measure time and
welfare.

Every figure in §6 compares the same set of algorithms under different
utility configurations / budgets / networks.  Since the API redesign the
single dispatch point is :func:`repro.api.run` over a typed
:class:`~repro.api.RunSpec`; :func:`run_algorithm` remains as a thin
deprecation shim that builds the spec from its keyword arguments, so all
algorithms are still timed and evaluated identically (same welfare
estimator, same sample counts, same seeds) and existing call sites keep
working.  :data:`ALGORITHMS` is derived from the algorithm registry rather
than hand-maintained.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.allocation import Allocation
from repro.api.registry import experiment_algorithms
from repro.api.runner import RunRecord, run as run_spec
from repro.api.specs import EngineConfig, RunSpec, WorkloadSpec
from repro.experiments.config import ExperimentScale, get_scale
from repro.graphs.graph import DirectedGraph
from repro.utility.model import UtilityModel

#: algorithms available to the experiment harness (registry-derived)
ALGORITHMS = experiment_algorithms()


def spec_for(algorithm: str, scale: Optional[ExperimentScale] = None,
             network: str = "", configuration: str = "",
             budgets: Optional[Mapping[str, int]] = None,
             fixed_allocation: Optional[Allocation] = None,
             superior_item: Optional[str] = None,
             selection_strategy: Optional[str] = None,
             seed: Optional[int] = None) -> RunSpec:
    """Build the :class:`RunSpec` matching a harness-style invocation.

    The engine knobs mirror the :class:`ExperimentScale` preset exactly
    (sample counts, IMM options, candidate-pool size, seed), which is what
    makes spec-driven runs bit-identical to the historical
    ``run_algorithm`` keyword path.
    """
    scale = get_scale(scale)
    fixed = None
    if fixed_allocation is not None and not fixed_allocation.is_empty():
        fixed = {item: tuple(nodes)
                 for item, nodes in fixed_allocation.as_dict().items()}
    return RunSpec(
        algorithm=algorithm,
        workload=WorkloadSpec(
            network=network, configuration=configuration,
            budgets=dict(budgets or {}), fixed_allocation=fixed,
            superior_item=superior_item),
        engine=EngineConfig.from_scale(scale,
                                       selection_strategy=selection_strategy,
                                       seed=seed),
    )


def run_algorithm(algorithm: str, graph: DirectedGraph, model: UtilityModel,
                  budgets: Mapping[str, int],
                  fixed_allocation: Optional[Allocation] = None,
                  scale: Optional[ExperimentScale] = None,
                  configuration: str = "",
                  superior_item: Optional[str] = None,
                  rng=None,
                  index=None,
                  selection_strategy: Optional[str] = None) -> RunRecord:
    """Run ``algorithm`` on the given workload and measure time and welfare.

    .. deprecated::
        This is a compatibility shim over :func:`repro.api.run`; new code
        should build a :class:`repro.api.RunSpec` (see :func:`spec_for`)
        and call :func:`repro.api.run` directly.  Allocations are
        bit-identical between the two paths.

    ``index`` is an optional prebuilt
    :class:`~repro.index.frozen.FrozenRRIndex` for the coverage-greedy
    algorithms (SeqGRD/SeqGRD-NM/SupGRD): sampling is skipped and seeds are
    served from the shared index, which is how the figure sweeps reuse one
    sampling pass across every budget point.  ``selection_strategy`` picks
    the greedy node-selection engine for the coverage-greedy algorithms
    (:data:`repro.rrsets.coverage.SELECTION_STRATEGIES`; allocations are
    bit-identical across strategies).
    """
    scale = get_scale(scale)
    spec = spec_for(algorithm, scale, network=graph.name,
                    configuration=configuration, budgets=budgets,
                    fixed_allocation=fixed_allocation,
                    superior_item=superior_item,
                    selection_strategy=selection_strategy)
    return run_spec(spec, graph=graph, model=model, rng=rng, index=index,
                    options=scale.imm_options)


__all__ = ["ALGORITHMS", "RunRecord", "run_algorithm", "spec_for"]
