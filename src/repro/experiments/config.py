"""Experiment scaling knobs.

The paper's evaluation runs on networks with up to 41M nodes and 1.5G edges
on a 128 GB Xeon server; a pure-Python reproduction cannot match that scale,
so every experiment in :mod:`repro.experiments` is parameterized by an
:class:`ExperimentScale` that controls the synthetic network sizes, the
Monte-Carlo sample counts and the RR-set caps.  Three presets are provided:

* ``smoke`` — seconds; used by the test-suite and CI.
* ``default`` — a few minutes for the full benchmark suite; the scale the
  shipped benchmarks and EXPERIMENTS.md numbers use.
* ``large`` — tens of minutes; closer to the paper's budgets (still far from
  a 3M-node Orkut, but large enough to show the scaling trends).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.rrsets.imm import IMMOptions


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling parameters shared by all experiments."""

    name: str
    #: multiplier applied on top of each network's default down-scale
    network_scale: Dict[str, float] = field(default_factory=dict)
    #: seed budgets standing in for the paper's 10/30/50 sweep
    budget_sweep: Sequence[int] = (5, 10, 15)
    #: budgets standing in for the paper's 10..40 sweep (Figure 7)
    small_budget_sweep: Sequence[int] = (4, 8, 12, 16)
    #: Monte-Carlo samples per welfare evaluation
    evaluation_samples: int = 150
    #: Monte-Carlo samples per marginal check (paper: 5000)
    marginal_samples: int = 60
    #: candidate-pool size for the simulation-heavy baselines
    baseline_pool_size: int = 30
    #: IMM / PRIMA+ options
    imm_options: IMMOptions = field(default_factory=IMMOptions)
    #: master random seed
    seed: int = 2020

    def network_fraction(self, name: str) -> Optional[float]:
        """Scale override for network ``name`` (``None`` = dataset default)."""
        return self.network_scale.get(name)

    def with_seed(self, seed: int) -> "ExperimentScale":
        """Copy of this scale with a different master seed."""
        return replace(self, seed=seed)


SMOKE = ExperimentScale(
    name="smoke",
    network_scale={"nethept": 0.015, "douban-book": 0.01, "douban-movie": 0.008,
                   "orkut": 0.0001, "twitter": 0.00001},
    budget_sweep=(2, 4),
    small_budget_sweep=(2, 4),
    evaluation_samples=40,
    marginal_samples=20,
    baseline_pool_size=15,
    imm_options=IMMOptions(max_rr_sets=20_000),
    seed=7,
)

DEFAULT = ExperimentScale(
    name="default",
    network_scale={"nethept": 0.05, "douban-book": 0.03, "douban-movie": 0.02,
                   "orkut": 0.0004, "twitter": 0.00004},
    budget_sweep=(5, 10, 15),
    small_budget_sweep=(4, 8, 12, 16),
    evaluation_samples=150,
    marginal_samples=60,
    baseline_pool_size=30,
    imm_options=IMMOptions(max_rr_sets=60_000),
    seed=2020,
)

LARGE = ExperimentScale(
    name="large",
    network_scale={"nethept": 0.2, "douban-book": 0.15, "douban-movie": 0.1,
                   "orkut": 0.002, "twitter": 0.0002},
    budget_sweep=(10, 30, 50),
    small_budget_sweep=(10, 20, 30, 40),
    evaluation_samples=500,
    marginal_samples=200,
    baseline_pool_size=60,
    imm_options=IMMOptions(max_rr_sets=200_000),
    seed=2020,
)

PRESETS: Dict[str, ExperimentScale] = {
    "smoke": SMOKE,
    "default": DEFAULT,
    "large": LARGE,
}


def get_scale(name_or_scale) -> ExperimentScale:
    """Resolve a preset name or pass an :class:`ExperimentScale` through."""
    if isinstance(name_or_scale, ExperimentScale):
        return name_or_scale
    if name_or_scale is None:
        return DEFAULT
    key = str(name_or_scale).lower()
    if key not in PRESETS:
        raise KeyError(f"unknown scale preset {name_or_scale!r}; "
                       f"choose from {sorted(PRESETS)}")
    return PRESETS[key]


__all__ = ["ExperimentScale", "SMOKE", "DEFAULT", "LARGE", "PRESETS", "get_scale"]
